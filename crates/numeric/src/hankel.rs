//! The moment (Hankel) system of the paper's eq. (24).
//!
//! Given moments `m₋₁ … m_{2q-2}` of a response, the characteristic
//! polynomial coefficients `a₀ … a_{q-1}` of the order-`q` Padé
//! approximation satisfy
//!
//! ```text
//! ⎡ m₋₁   m₀    …  m_{q-2}  ⎤ ⎡ -a₀     ⎤   ⎡ m_{q-1} ⎤
//! ⎢ m₀    m₁    …  m_{q-1}  ⎥ ⎢ -a₁     ⎥ = ⎢ m_q     ⎥
//! ⎢ …                       ⎥ ⎢ …       ⎥   ⎢ …       ⎥
//! ⎣ m_{q-2} …      m_{2q-3} ⎦ ⎣ -a_{q-1}⎦   ⎣ m_{2q-2}⎦
//! ```
//!
//! with `a_q = 1` normalized. The matrix is Hankel (constant
//! anti-diagonals). We solve it densely via LU — the paper itself endorses
//! `O(q³)` here — and expose the condition estimate that drives the
//! frequency-scaling decision of §3.5.
//!
//! The solve is *equilibrated*: rows and columns are scaled to unit
//! inf-norm by exact powers of two (no rounding introduced) before
//! factoring, and the condition estimate is reported on the scaled
//! system. Frequency scaling (§3.5) removes the τ^k growth of the moment
//! *sequence*; equilibration additionally removes whatever residual
//! row/column imbalance the Hankel arrangement leaves behind, so the
//! condition number measures the intrinsic rank structure of the moment
//! system rather than an artifact of its units.

use crate::error::NumericError;
use crate::lu::Lu;
use crate::matrix::Matrix;
use crate::poly::Polynomial;

/// The nearest power of two below `v`'s magnitude, inverted — the exact
/// scale that brings a row or column of inf-norm `v` to `[1, 2)`.
/// Returns `1.0` for zero or non-finite norms.
fn pow2_scale(v: f64) -> f64 {
    if v > 0.0 && v.is_finite() {
        (-v.log2().floor()).exp2()
    } else {
        1.0
    }
}

/// Row/column equilibration scales for `m`, each an exact power of two:
/// rows first (to unit inf-norm), then columns of the row-scaled matrix.
pub(crate) fn equilibrate(m: &Matrix, rows: usize, cols: usize) -> (Vec<f64>, Vec<f64>) {
    let r: Vec<f64> = (0..rows)
        .map(|i| pow2_scale((0..cols).map(|j| m[(i, j)].abs()).fold(0.0, f64::max)))
        .collect();
    let c: Vec<f64> = (0..cols)
        .map(|j| {
            pow2_scale(
                (0..rows)
                    .map(|i| (r[i] * m[(i, j)]).abs())
                    .fold(0.0, f64::max),
            )
        })
        .collect();
    (r, c)
}

/// Builds the `q×q` moment matrix of eq. (24) from moments indexed
/// `m[0] = m₋₁, m[1] = m₀, …` (i.e. shifted by one so slices are natural).
///
/// # Panics
///
/// Panics if fewer than `2q - 1` moments are supplied.
pub fn moment_matrix(moments: &[f64], q: usize) -> Matrix {
    assert!(
        moments.len() >= 2 * q - 1,
        "need {} moments for order {q}, got {}",
        2 * q - 1,
        moments.len()
    );
    Matrix::from_fn(q, q, |i, j| moments[i + j])
}

/// Result of the moment-matrix solve: the characteristic polynomial in the
/// reciprocal-pole variable, plus a conditioning diagnostic.
#[derive(Clone, Debug)]
pub struct CharPoly {
    /// `a₀ + a₁·x + … + a_{q-1}·x^{q-1} + x^q`, `x = 1/p` (paper eq. (25)).
    pub poly: Polynomial,
    /// 1-norm condition estimate of the moment matrix. Large values signal
    /// the need for frequency scaling (§3.5) or a lower order.
    pub condition: f64,
}

/// Solves eq. (24) for the characteristic polynomial of the order-`q`
/// approximation.
///
/// `moments[k]` is the paper's `m_{k-1}` (so `moments[0] = m₋₁`); at least
/// `2q` entries… precisely `2q - 1 + 1 = 2q` values `m₋₁ … m_{2q-2}` are
/// required.
///
/// # Errors
///
/// * [`NumericError::Degenerate`] if `q == 0` or too few moments are given.
/// * [`NumericError::Singular`] if the moment matrix is exactly singular —
///   the usual cause is an order `q` higher than the true system order, or
///   unscaled stiff moments (§3.5); callers respond by scaling or reducing
///   the order (paper §3.3 "moving to the higher order necessitated" works
///   the other way too).
pub fn solve_char_poly(moments: &[f64], q: usize) -> Result<CharPoly, NumericError> {
    if q == 0 {
        return Err(NumericError::Degenerate("order q must be at least 1"));
    }
    if moments.len() < 2 * q {
        return Err(NumericError::Degenerate(
            "insufficient moments for requested order",
        ));
    }
    let m = moment_matrix(moments, q);
    let rhs: Vec<f64> = moments[q..2 * q].to_vec();
    // Equilibrated solve: factor R·M·C (unit inf-norm rows and columns,
    // power-of-two scales) and report the condition of *that* system.
    let (r, c) = equilibrate(&m, q, q);
    let scaled = Matrix::from_fn(q, q, |i, j| r[i] * m[(i, j)] * c[j]);
    let scaled_rhs: Vec<f64> = rhs.iter().zip(&r).map(|(v, ri)| v * ri).collect();
    let lu = Lu::factor(&scaled)?;
    let y = lu.solve(&scaled_rhs)?;
    let condition = lu.condition_estimate(scaled.norm_one());
    let neg_a: Vec<f64> = y.iter().zip(&c).map(|(v, cj)| v * cj).collect();

    // neg_a[i] = -a_i; assemble a₀ … a_{q-1}, a_q = 1.
    let mut coeffs: Vec<f64> = neg_a.iter().map(|v| -v).collect();
    coeffs.push(1.0);
    Ok(CharPoly {
        poly: Polynomial::new(coeffs),
        condition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roots::roots;

    /// Moments of x(t) = Σ kᵢ e^{pᵢ t}:
    /// m₋₁ = -Σkᵢ (matching the paper's sign convention in eq. (16)),
    /// and generally the paper matches -Σ kᵢ/pᵢʲ⁺¹ = m_j.
    fn exp_moments(ks: &[f64], ps: &[f64], count: usize) -> Vec<f64> {
        (0..count)
            .map(|idx| {
                // idx 0 ↔ m₋₁ (power 0), idx j ↔ m_{j-1} (power j).
                -ks.iter()
                    .zip(ps)
                    .map(|(k, p)| k / p.powi(idx as i32))
                    .sum::<f64>()
            })
            .collect()
    }

    #[test]
    fn recovers_single_pole() {
        // x(t) = 2 e^{-3t}: m₋₁ = -2, m₀ = -2/-3 = 2/3 …
        let m = exp_moments(&[2.0], &[-3.0], 2);
        let cp = solve_char_poly(&m, 1).unwrap();
        // a₀ + x = 0 at x = 1/p → a₀ = -1/p = 1/3.
        let r = roots(&cp.poly).unwrap();
        let pole = r[0].recip();
        assert!((pole.re + 3.0).abs() < 1e-12);
        assert!(pole.im.abs() < 1e-15);
    }

    #[test]
    fn recovers_two_poles_exactly() {
        let ks = [1.0, -0.5];
        let ps = [-1.0, -10.0];
        let m = exp_moments(&ks, &ps, 4);
        let cp = solve_char_poly(&m, 2).unwrap();
        let r = roots(&cp.poly).unwrap();
        let mut poles: Vec<f64> = r.iter().map(|z| z.recip().re).collect();
        poles.sort_by(f64::total_cmp);
        assert!((poles[0] + 10.0).abs() < 1e-9);
        assert!((poles[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn recovers_three_poles() {
        let ks = [1.0, 2.0, -1.5];
        let ps = [-1.0, -4.0, -20.0];
        let m = exp_moments(&ks, &ps, 6);
        let cp = solve_char_poly(&m, 3).unwrap();
        let r = roots(&cp.poly).unwrap();
        let mut poles: Vec<f64> = r.iter().map(|z| z.recip().re).collect();
        poles.sort_by(f64::total_cmp);
        for (got, want) in poles.iter().zip(&[-20.0, -4.0, -1.0]) {
            assert!(((got - want) / want).abs() < 1e-8, "pole {got} vs {want}");
        }
    }

    #[test]
    fn reduced_order_gives_dominant_pole() {
        // Widely separated poles with a dominant slow residue; a 1st-order
        // match lands near the dominant pole — the Elmore-delay behaviour
        // of §IV. (With equal residues the 1st-order pole is the moment
        // ratio m₋₁/m₀, which averages the two; dominance requires the slow
        // pole to carry most of the response, as RC-tree steps do.)
        let ks = [1.0, 0.05];
        let ps = [-1.0, -1000.0];
        let m = exp_moments(&ks, &ps, 2);
        let cp = solve_char_poly(&m, 1).unwrap();
        let pole = roots(&cp.poly).unwrap()[0].recip().re;
        assert!(
            (-1.1..-0.9).contains(&pole),
            "1st-order pole {pole} not near dominant -1"
        );
    }

    #[test]
    fn order_above_system_order_is_singular() {
        // One-pole response, q = 2: moment matrix is rank deficient.
        let m = exp_moments(&[2.0], &[-3.0], 4);
        match solve_char_poly(&m, 2) {
            Err(NumericError::Singular { .. }) => {}
            Ok(cp) => {
                // Rounding may keep it barely nonsingular; condition must
                // then be enormous.
                assert!(cp.condition > 1e12, "condition: {}", cp.condition);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(solve_char_poly(&[1.0, 2.0], 0).is_err());
        assert!(solve_char_poly(&[1.0], 1).is_err());
        assert!(solve_char_poly(&[1.0, 2.0, 3.0], 2).is_err());
    }

    #[test]
    #[should_panic(expected = "need 3 moments")]
    fn moment_matrix_panics_short() {
        let _ = moment_matrix(&[1.0, 2.0], 2);
    }

    #[test]
    fn equilibration_tames_graded_rows() {
        // Moments growing ~τ^k (τ = 1e-3): the raw Hankel rows span six
        // decades each; equilibration must keep the solve exact and report
        // a condition that reflects the rank structure, not the grading.
        let ks = [1.0, -0.4];
        let ps = [-1e3, -8e3];
        let m = exp_moments(&ks, &ps, 4);
        let cp = solve_char_poly(&m, 2).unwrap();
        let r = roots(&cp.poly).unwrap();
        let mut poles: Vec<f64> = r.iter().map(|z| z.recip().re).collect();
        poles.sort_by(f64::total_cmp);
        assert!(((poles[0] + 8e3) / 8e3).abs() < 1e-9, "pole {}", poles[0]);
        assert!(((poles[1] + 1e3) / 1e3).abs() < 1e-9, "pole {}", poles[1]);
        // Raw condition of the unscaled matrix for comparison.
        let raw = moment_matrix(&m, 2);
        let raw_cond = Lu::factor(&raw).unwrap().condition_estimate(raw.norm_one());
        assert!(
            cp.condition < raw_cond,
            "equilibrated {} vs raw {}",
            cp.condition,
            raw_cond
        );
    }

    #[test]
    fn equilibration_scales_are_powers_of_two() {
        let m = moment_matrix(&[3.0, 1e-7, 40.0, 2e5, 0.11], 3);
        let (r, c) = equilibrate(&m, 3, 3);
        for s in r.iter().chain(&c) {
            assert!(s.log2().fract() == 0.0, "scale {s} not a power of two");
        }
        // Scaled matrix has unit-ish inf-norm rows.
        for i in 0..3 {
            let norm = (0..3)
                .map(|j| (r[i] * m[(i, j)] * c[j]).abs())
                .fold(0.0f64, f64::max);
            assert!((0.25..4.0).contains(&norm), "row {i} norm {norm}");
        }
    }

    #[test]
    fn moment_matrix_is_hankel() {
        let m = moment_matrix(&[1.0, 2.0, 3.0, 4.0, 5.0], 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], (i + j + 1) as f64);
            }
        }
    }
}
