//! Minimal JSON: a strict parser for request lines and a compact
//! emitter for responses.
//!
//! The workspace carries no serde (dependency policy: std only), and the
//! existing hand-rolled emitters in `awe-batch` only *write* JSON. The
//! daemon also has to *read* untrusted request lines, so this module
//! supplies the missing half: a small recursive-descent parser over the
//! full JSON grammar (objects, arrays, strings with escapes, numbers,
//! literals) that returns typed errors instead of panicking on any
//! malformed input — the protocol layer's "garbage never kills the
//! daemon" guarantee starts here.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map): the
//! emitter is deterministic, and duplicate keys resolve to the first
//! occurrence on lookup.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives, and out-of-range values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Where and why a parse failed (byte offset into the line).
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

/// Nesting cap: a request line has no business being deeper than this,
/// and the cap keeps adversarial input from overflowing the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid code point"))?);
                            // hex4 advanced pos past the digits already.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            message: format!("bad number `{text}`"),
        })
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) JSON. Numbers use shortest round-trip
    /// formatting; non-finite numbers render as `null` (JSON has no
    /// representation for them).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0u8; 4]))?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("d"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair → one astral scalar.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "truefalse",
            "1 2",
            "\"unterminated",
            "\"bad \u{1} ctl\"",
            "{\"a\":1,}",
            "--5",
            "1e",
            "\"\\q\"",
            "\"\\ud800\"",
            "\u{7f}",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_cap_holds() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err(), "deep nesting rejected, no overflow");
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn round_trips() {
        for text in [
            r#"{"id":1,"verb":"ping"}"#,
            r#"[1,2.5,null,true,"x"]"#,
            r#"{"s":"a\"b\nc"}"#,
            r#"{"nested":{"deep":[{"k":[]}]}}"#,
        ] {
            let v = parse(text).unwrap();
            let emitted = v.to_string();
            assert_eq!(parse(&emitted).unwrap(), v, "{text} round-trips");
        }
    }

    #[test]
    fn accessor_types_are_strict() {
        let v = parse(r#"{"n": 3.5, "i": 7, "neg": -1}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None, "fractional");
        assert_eq!(v.get("i").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("neg").unwrap().as_u64(), None, "negative");
        assert_eq!(v.get("i").unwrap().as_str(), None);
        assert_eq!(v.get("missing"), None);
    }
}
