//! The differential-oracle stack.
//!
//! Each oracle checks the AWE engine (or one of its numeric substrates)
//! against an *independent* computation of the same quantity:
//!
//! * **transient** — the reduced q-pole waveform against a trapezoidal
//!   time-stepping solve of the full MNA system.
//! * **eigen** — full-order AWE poles against the dense eigensolve of
//!   `G⁻¹C` (the paper's "actual poles" columns).
//! * **bounds** — the simulated response against the provable
//!   Penfield–Rubinstein envelope and delay ceilings.
//! * **sparse-lu** — the sparse Gilbert–Peierls factorization against the
//!   dense LU on the case's own MNA matrices.
//! * **moments** — the O(n) tree-walk moments against the LU-based MNA
//!   moment recursion (naive vs. production path).
//! * **reduce** — AWE on the chain-reduced rewrite of the net against
//!   AWE on the full net: the reduction pre-pass claims a documented
//!   moment-defect budget, so the two models must agree to a tolerance
//!   derived from that budget.
//!
//! A verdict is `Pass`, `Fail` (with a human-readable detail) or `Skip`
//! (the oracle's premise does not hold for this case — e.g. bounds on a
//! non-tree, or a full-order Padé too ill-conditioned to be meaningful).
//! Tolerances are *ladders*: a strict base tolerance that is relaxed by
//! documented, case-observable factors (topology class, the model's own
//! error estimate, Padé conditioning) — never silently.

use awe::bounds::StepBounds;
use awe::{AweApproximation, AweEngine, AweError, AweOptions};
use awe_circuit::{Circuit, Element, NodeId};
use awe_mna::{MnaSystem, MomentEngine};
use awe_numeric::{Lu, Matrix, NumericError, SparseLu, SparseMatrix};
use awe_sim::{
    exact_poles, max_abs_vs_sim, relative_l2_vs_sim, simulate, CompareError, TransientOptions,
    TransientResult,
};
use awe_treelink::TreeAnalysis;

use crate::fuzz::{FuzzCase, TopologyClass, WaveKind};
use std::fmt;

/// Identity of one oracle in the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// AWE waveform vs. trapezoidal transient solve.
    Transient,
    /// Full-order AWE poles vs. dense eigensolve.
    Eigen,
    /// Penfield–Rubinstein envelope / delay ceiling vs. simulation.
    Bounds,
    /// Sparse vs. dense LU on the case's MNA matrix.
    SparseLu,
    /// Tree-walk vs. MNA-recursion moments.
    Moments,
    /// AWE on the chain-reduced net vs. AWE on the full net.
    Reduce,
}

impl OracleKind {
    /// Every oracle, in reporting order.
    pub const ALL: [OracleKind; 6] = [
        OracleKind::Transient,
        OracleKind::Eigen,
        OracleKind::Bounds,
        OracleKind::SparseLu,
        OracleKind::Moments,
        OracleKind::Reduce,
    ];

    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            OracleKind::Transient => "transient",
            OracleKind::Eigen => "eigen",
            OracleKind::Bounds => "bounds",
            OracleKind::SparseLu => "sparse-lu",
            OracleKind::Moments => "moments",
            OracleKind::Reduce => "reduce",
        }
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one oracle on one case.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Agreement within tolerance.
    Pass,
    /// Disagreement beyond tolerance; `detail` says what and by how much.
    Fail {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The oracle's premise does not apply to this case.
    Skip {
        /// Why the oracle could not run.
        reason: String,
    },
}

impl Verdict {
    /// Whether this is a failure.
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass => write!(f, "pass"),
            Verdict::Fail { detail } => write!(f, "FAIL: {detail}"),
            Verdict::Skip { reason } => write!(f, "skip: {reason}"),
        }
    }
}

/// One oracle's report on one case.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// Which oracle ran.
    pub oracle: OracleKind,
    /// Its verdict.
    pub verdict: Verdict,
    /// The comparison metric (oracle-specific: waveform error fraction,
    /// pole mismatch, …) when one was computed.
    pub metric: Option<f64>,
    /// The tolerance the metric was held to, when one applies.
    pub tolerance: Option<f64>,
}

/// Everything the oracle stack derives from a case once, shared by all
/// oracles.
pub struct Artifacts {
    /// The netlist under test.
    pub circuit: Circuit,
    /// Observation node.
    pub output: NodeId,
    /// Topology class (drives tolerance ladders).
    pub class: TopologyClass,
    /// Waveform family (gates the step-premise oracles).
    pub wave: WaveKind,
    /// The AWE model at the best available order (`min(states, 6)`), or
    /// the engine's error text.
    pub approx: Result<AweApproximation, AweError>,
    /// Trapezoidal reference solve over `horizon`, or its error text.
    pub sim: Result<TransientResult, String>,
    /// Comparison horizon in seconds.
    pub horizon: f64,
    /// Tolerance handed to the chain-reduction pre-pass by the reduce
    /// oracle (relative moment-defect budget per pass).
    pub reduce_tolerance: f64,
}

/// Largest Padé order requested for the model under test.
const MAX_ORDER: usize = 6;

/// Default reduction tolerance for the reduce oracle — the same default
/// `ReduceOptions` ships, so the oracle patrols the configuration users
/// get by flipping `--reduce` on.
pub const DEFAULT_REDUCE_TOLERANCE: f64 = 0.02;

/// Moment-matrix condition cap for a trustworthy residue solve. Fuzzing
/// shows a sharp cliff, not a slope: models up to cond ≈ 4e10 track the
/// reference to their self-estimate, while cond ≥ 2.7e16 produces poles
/// with positive real parts (seed 0 case 224) or stable poles with garbage
/// residues that overshoot 1400× (case 461). 1e14 splits the observed gap
/// with two decades of margin on either side.
const CONDITION_CAP: f64 = 1e14;

impl Artifacts {
    /// Builds the shared artifacts for a fuzz case.
    pub fn build(case: &FuzzCase) -> Artifacts {
        Artifacts::for_circuit(
            case.circuit.clone(),
            case.output,
            case.params.class,
            case.params.wave,
        )
    }

    /// Builds the shared artifacts for an arbitrary circuit (corpus
    /// replay). `class` and `wave` select the tolerance ladder and the
    /// step-premise oracles.
    pub fn for_circuit(
        circuit: Circuit,
        output: NodeId,
        class: TopologyClass,
        wave: WaveKind,
    ) -> Artifacts {
        // The oracles test AWE's *representation* claim — a q-pole Padé
        // model matches the exact response — through the engine's own
        // automatic order selection, exactly as a timing-analysis caller
        // would get it. The trust policy (stability, the condition cap,
        // the moment-tail check, partial-Padé rescue) lives in
        // `AweEngine::approximate_auto`: the findings that once justified
        // a harness-side order descent here (q = 5 instability on a
        // 16-state RC tree, seed 0 case 224; the cond-6e19 mesh residue
        // breakdown of case 461; the auto-stop blindness to truncated
        // ring modes) were engine bugs and are fixed in the engine — a
        // harness that silently routes around the default path stops
        // testing it. `target = 0` disables the §3.4 early stop, so the
        // harness receives the highest trustworthy order ≤ min(states, 6)
        // — the same model the old descent selected, now via the public
        // API. A circuit with *no* trustworthy order at all surfaces as
        // `AweError::Unstable`, which the oracles classify as a finding.
        let order_cap = circuit.num_states().clamp(1, MAX_ORDER);
        let approx = AweEngine::new(&circuit).and_then(|engine| {
            engine
                .approximate_auto(output, 0.0, order_cap, AweOptions::default())
                .map(|(a, _)| a)
        });
        let horizon = match &approx {
            Ok(a) => a.horizon(),
            // No model to take a horizon from: fall back to a generous
            // multiple of the slowest source breakpoint, or 1 µs.
            Err(_) => last_breakpoint(&circuit).max(1e-12) * 10.0,
        };
        let sim = simulate(&circuit, TransientOptions::new(horizon)).map_err(|e| e.to_string());
        Artifacts {
            circuit,
            output,
            class,
            wave,
            approx,
            sim,
            horizon,
            reduce_tolerance: DEFAULT_REDUCE_TOLERANCE,
        }
    }

    /// Runs the full oracle stack.
    pub fn run_all(&self) -> Vec<OracleReport> {
        OracleKind::ALL.iter().map(|&o| self.run(o)).collect()
    }

    /// Runs one oracle. Under an [`awe_obs`] recording the check gets a
    /// `verify.oracle` span labeled with the oracle's name, and every
    /// `Fail` verdict emits an `oracle_disagreement` health event.
    pub fn run(&self, oracle: OracleKind) -> OracleReport {
        let _span = awe_obs::span_labeled("verify.oracle", oracle.name());
        let report = match oracle {
            OracleKind::Transient => self.transient_oracle(),
            OracleKind::Eigen => self.eigen_oracle(),
            OracleKind::Bounds => self.bounds_oracle(),
            OracleKind::SparseLu => self.sparse_lu_oracle(),
            OracleKind::Moments => self.moments_oracle(),
            OracleKind::Reduce => self.reduce_oracle(),
        };
        if awe_obs::enabled() && matches!(report.verdict, Verdict::Fail { .. }) {
            awe_obs::health(awe_obs::Health::OracleDisagreement {
                oracle: oracle.name(),
            });
        }
        report
    }

    fn report(
        oracle: OracleKind,
        verdict: Verdict,
        metric: Option<f64>,
        tolerance: Option<f64>,
    ) -> OracleReport {
        OracleReport {
            oracle,
            verdict,
            metric,
            tolerance,
        }
    }

    fn skip(oracle: OracleKind, reason: impl Into<String>) -> OracleReport {
        Artifacts::report(
            oracle,
            Verdict::Skip {
                reason: reason.into(),
            },
            None,
            None,
        )
    }

    /// AWE waveform vs. trapezoidal transient, max-abs over the horizon,
    /// normalized by the simulated swing.
    fn transient_oracle(&self) -> OracleReport {
        const O: OracleKind = OracleKind::Transient;
        let approx = match &self.approx {
            Ok(a) => a,
            Err(e) => return engine_error_report(O, e),
        };
        let sim = match &self.sim {
            Ok(s) => s,
            Err(e) => return Artifacts::skip(O, format!("reference sim failed: {e}")),
        };
        // The builder steps down to the best stable, well-conditioned
        // order; only a circuit with *no* trustworthy model at any order
        // lands here untrusted, and that is an engine finding, not a case
        // to wave through (an unstable model evaluates to ±1e299 and would
        // poison every metric below).
        if !approx.stable || approx.condition > CONDITION_CAP {
            return Artifacts::report(
                O,
                Verdict::Fail {
                    detail: format!(
                        "no trustworthy model at any order <= {}: order {} has stable={} \
                         condition={:.3e}",
                        MAX_ORDER, approx.order, approx.stable, approx.condition
                    ),
                },
                None,
                None,
            );
        }
        let swing = sim_swing(sim, self.output);
        if swing < 1e-12 {
            return Artifacts::skip(O, "response swing below measurable floor");
        }
        // Two views of the disagreement: relative L² (the paper's §3.4
        // waveform-error notion — what the model's own estimate tracks)
        // gates pass/fail; max-abs over every sim sample is recorded as
        // the worst-case pointwise error. A low-order model legitimately
        // smooths the first fast transient, so max-abs alone would flag
        // every stiff circuit; L² plus a 50 % delay check captures the
        // paper's actual claim (waveform shape and timing agree).
        let max_abs = max_abs_vs_sim(sim, self.output, |t| approx.eval(t)) / swing;
        let l2 = match relative_l2_vs_sim(sim, self.output, |t| approx.eval(t)) {
            Ok(l2) => l2,
            Err(CompareError::ZeroEnergy) => {
                return Artifacts::skip(O, "zero transition energy in reference");
            }
            // A tagged non-finite comparison is a divergent model (or a
            // blown-up reference) — the failure the old NaN-propagating
            // metric silently waved through. Always a finding.
            Err(CompareError::NonFinite) => {
                return Artifacts::report(
                    O,
                    Verdict::Fail {
                        detail: format!(
                            "waveform comparison is non-finite (order {}, stable={}, \
                             condition={:.3e}): model or reference diverges over the horizon",
                            approx.order, approx.stable, approx.condition
                        ),
                    },
                    None,
                    None,
                );
            }
        };

        // Tolerance ladder, rung by rung:
        //
        // 1. A model that *self-reports* unusable accuracy has already
        //    told the truth — there is no differential claim to check.
        // 0. High-Q escape hatch: if the model's fastest ring completes
        //    hundreds of cycles inside the comparison horizon, the
        //    *reference* is the weak link — trapezoidal integration
        //    preserves amplitude (A-stability) but accumulates per-step
        //    phase error that compounds over thousands of periods, so the
        //    pointwise comparison measures sim drift, not model error.
        //    (Found by fuzzing: a Q ≈ 3400 series RLC rings ~13 000 times
        //    before settling; the full-order 2-pole model is the exact
        //    transfer function, yet "disagreed" with the sim by 14 % L².)
        let max_ring = approx
            .poles()
            .iter()
            .map(|p| p.im.abs())
            .fold(0.0f64, f64::max);
        let ring_cycles = max_ring * self.horizon / (2.0 * std::f64::consts::PI);
        if ring_cycles > 100.0 {
            return Artifacts::skip(
                O,
                format!(
                    "reference sim accumulates phase error over {ring_cycles:.0} ring \
                     cycles (trapezoidal drift dominates the comparison)"
                ),
            );
        }
        let claimed = approx.error_estimate.unwrap_or(0.0);
        if claimed > 0.25 {
            return Artifacts::skip(
                O,
                format!(
                    "model self-reports {:.1}% error (no accuracy claim to check)",
                    claimed * 100.0
                ),
            );
        }
        // 2. Base tolerance per topology class (how hard the class is for
        //    a ≤ 6-pole model), relaxed to triple the model's own estimate
        //    — a self-reported inaccuracy is an explained one.
        let base = match self.class {
            TopologyClass::RcTree => 0.02,
            TopologyClass::RcMesh => 0.03,
            TopologyClass::CoupledLines => 0.05,
            TopologyClass::RlcLadder => 0.08,
        };
        // 3. Truncation allowance: when the model has fewer poles than the
        //    circuit has states, the dropped modes carry error the §3.4
        //    q-vs-(q+1) estimate is structurally blind to (both orders
        //    miss the same modes). The per-class envelopes are empirical
        //    worst cases over seeded campaigns; exceeding them signals a
        //    regression, not expected truncation.
        let truncated = approx.order < self.circuit.num_states();
        let allowance = match (truncated, self.class) {
            (false, _) => 0.0,
            (true, TopologyClass::RcTree) => 0.05,
            (true, TopologyClass::RcMesh) => 0.12,
            (true, TopologyClass::CoupledLines) => 0.12,
            (true, TopologyClass::RlcLadder) => 0.50,
        };
        let tol = (3.0 * claimed).max(base).max(allowance);

        let mut fail = None;
        // `l2` is guaranteed finite here — non-finite comparisons were
        // tagged `CompareError::NonFinite` above and already failed.
        if l2 > tol {
            fail = Some(format!(
                "relative L2 error {:.3}% exceeds {:.3}% (order {} of {} states, \
                 model estimate {:.3}%, max-abs {:.3}% of swing)",
                l2 * 100.0,
                tol * 100.0,
                approx.order,
                self.circuit.num_states(),
                claimed * 100.0,
                max_abs * 100.0
            ));
        }
        // Timing: the 50 % threshold is only meaningful for step-like
        // responses (a pulse or crosstalk blip starts and ends at the same
        // level, so its "50 % crossing" is numeric noise around zero).
        let wave_pts = sim.waveform(self.output);
        let step_like = match (wave_pts.first(), wave_pts.last()) {
            (Some(&(_, vi)), Some(&(_, vf))) => (vf - vi).abs() >= 0.5 * swing,
            _ => false,
        };
        if fail.is_none() && step_like {
            if let (Some(ds), Some(da)) = (sim.delay_50(self.output), approx.delay_50()) {
                let slack = 0.05 * ds.abs() + 1e-3 * self.horizon;
                if (da - ds).abs() > slack {
                    fail = Some(format!(
                        "50% delay disagrees: model {da:.4e}s vs sim {ds:.4e}s \
                         (slack {slack:.1e}s, order {})",
                        approx.order
                    ));
                }
            }
        }
        let verdict = match fail {
            Some(detail) => Verdict::Fail { detail },
            None => Verdict::Pass,
        };
        Artifacts::report(O, verdict, Some(max_abs), Some(tol))
    }

    /// Full-order AWE poles vs. the dense eigensolve. Only meaningful when
    /// a full-order Padé is feasible (few states) and not hopelessly
    /// ill-conditioned; every AWE pole must then sit on an exact natural
    /// frequency (the converse need not hold — modes unobservable at the
    /// output cancel out of the transfer function).
    fn eigen_oracle(&self) -> OracleReport {
        const O: OracleKind = OracleKind::Eigen;
        let states = self.circuit.num_states();
        if states == 0 {
            return Artifacts::skip(O, "no dynamic states");
        }
        if states > MAX_ORDER {
            return Artifacts::skip(O, format!("{states} states exceed full-order limit"));
        }
        let exact = match exact_poles(&self.circuit) {
            Ok(p) => p,
            Err(e) => return Artifacts::skip(O, format!("eigensolve failed: {e}")),
        };
        if exact.is_empty() {
            return Artifacts::skip(O, "no finite poles");
        }
        let engine = match AweEngine::new(&self.circuit) {
            Ok(e) => e,
            Err(e) => return engine_error_report(O, &e),
        };
        // The comparison wants the raw full-order Padé, not a stabilized
        // lower-order repair of it.
        let opts = AweOptions {
            max_escalation: 0,
            ..AweOptions::default()
        };
        let full = match engine.approximate_with(self.output, exact.len().min(states), opts) {
            Ok(a) => a,
            Err(AweError::Unstable { .. }) | Err(AweError::MomentMatrixSingular { .. }) => {
                // Unobservable or numerically degenerate modes make the
                // full-order Hankel system singular/unstable; the transient
                // oracle still covers the case.
                return Artifacts::skip(O, "full-order Padé degenerate at this node");
            }
            Err(e) => return engine_error_report(O, &e),
        };
        if full.condition > 1e10 {
            return Artifacts::skip(
                O,
                format!("moment matrix condition {:.1e} too ill", full.condition),
            );
        }
        // Conditioning ladder: perfectly conditioned systems must match to
        // 1e-6; each decade of conditioning surrenders a decade.
        let tol = (1e-6 * full.condition.max(1.0)).clamp(1e-6, 1e-2);
        let mut worst = 0.0f64;
        for p in full.poles() {
            let nearest = exact
                .iter()
                .map(|q| (p - *q).abs() / q.abs().max(1e-300))
                .fold(f64::INFINITY, f64::min);
            worst = worst.max(nearest);
        }
        let verdict = if worst <= tol {
            Verdict::Pass
        } else {
            Verdict::Fail {
                detail: format!(
                    "full-order pole off the exact spectrum by {worst:.3e} (tol {tol:.1e}, \
                     condition {:.1e})",
                    full.condition
                ),
            }
        };
        Artifacts::report(O, verdict, Some(worst), Some(tol))
    }

    /// Provable Penfield–Rubinstein bounds vs. the simulated response:
    /// the response progress must never fall below `progress_floor`, and
    /// the simulated threshold crossings must respect `delay_ceiling`.
    fn bounds_oracle(&self) -> OracleReport {
        const O: OracleKind = OracleKind::Bounds;
        if !self.wave.is_pure_step() {
            return Artifacts::skip(O, "bounds require pure step stimulus");
        }
        let bounds = match StepBounds::for_node(&self.circuit, self.output) {
            Ok(b) => b,
            Err(e) => return Artifacts::skip(O, format!("not a strict RC tree: {e}")),
        };
        let sim = match &self.sim {
            Ok(s) => s,
            Err(e) => return Artifacts::skip(O, format!("reference sim failed: {e}")),
        };
        // Trapezoidal LTE control holds local error near `tol`; give the
        // provable bounds that much slack plus a safety factor.
        let tol = 1e-4;
        let mut worst = 0.0f64;
        let mut detail = None;

        // (1) Envelope: progress at every sample ≥ the provable floor.
        for i in 0..=100 {
            let t = self.horizon * i as f64 / 100.0;
            let floor = bounds.progress_floor(t);
            if floor <= 0.0 {
                continue;
            }
            let progress = (sim.value_at(self.output, t) - bounds.v0) / bounds.swing;
            let violation = floor - progress;
            if violation > worst {
                worst = violation;
                if violation > tol {
                    detail = Some(format!(
                        "progress {:.6} below provable floor {:.6} at t={:.3e}s",
                        progress, floor, t
                    ));
                }
            }
        }

        // (2) Delay ceilings: the simulated θ-crossing can never come
        // later than the provable ceiling (only θ whose ceiling is inside
        // the simulated window are decidable).
        for theta in [0.1, 0.5, 0.9] {
            let Some(ceiling) = bounds.delay_ceiling(theta) else {
                continue;
            };
            if ceiling > self.horizon {
                continue;
            }
            let level = bounds.v0 + theta * bounds.swing;
            let crossing = sim.threshold_crossing(self.output, level);
            match crossing {
                Some(t) if t <= ceiling * (1.0 + 1e-9) + tol * self.horizon => {}
                Some(t) => {
                    let violation = (t - ceiling) / self.horizon;
                    worst = worst.max(violation);
                    detail = Some(format!(
                        "{:.0}% crossing at {t:.3e}s exceeds provable ceiling {ceiling:.3e}s",
                        theta * 100.0
                    ));
                }
                None => {
                    worst = worst.max(1.0);
                    detail = Some(format!(
                        "{:.0}% level never crossed inside horizon though ceiling is {ceiling:.3e}s",
                        theta * 100.0
                    ));
                }
            }
        }

        let verdict = match detail {
            Some(d) => Verdict::Fail { detail: d },
            None => Verdict::Pass,
        };
        Artifacts::report(O, verdict, Some(worst), Some(tol))
    }

    /// Sparse Gilbert–Peierls LU vs. dense LU on `A = G + s·C` assembled
    /// from this case's own MNA system, at a frequency matched to the
    /// case's dynamics. Both must agree on solvability, and when solvable
    /// produce the same solution.
    fn sparse_lu_oracle(&self) -> OracleReport {
        const O: OracleKind = OracleKind::SparseLu;
        let sys = match MnaSystem::build(&self.circuit) {
            Ok(s) => s,
            Err(e) => return Artifacts::skip(O, format!("MNA build failed: {e}")),
        };
        let n = sys.num_unknowns();
        if n == 0 {
            return Artifacts::skip(O, "no unknowns");
        }
        let s = 3.0 / self.horizon.max(1e-18);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = sys.g[(i, j)] + s * sys.c[(i, j)];
            }
        }
        // Deterministic right-hand side with every entry nonzero.
        let b: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 37 + 11) % 19) as f64).collect();

        let dense = Lu::factor(&a).and_then(|lu| lu.solve(&b));
        let sm = SparseMatrix::from_dense(&a);
        let order = match sm.rcm_ordering() {
            Ok(new_of_old) => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&old| new_of_old[old]);
                Some(order)
            }
            Err(_) => None,
        };
        let sparse = SparseLu::factor(&sm, order.as_deref()).and_then(|lu| lu.solve(&b));

        match (dense, sparse) {
            (Ok(xd), Ok(xs)) => {
                // Compare through the residual scale so conditioning does
                // not produce false alarms: both solutions must solve the
                // same system to the same quality.
                let norm_a = (0..n)
                    .map(|i| (0..n).map(|j| a[(i, j)].abs()).sum::<f64>())
                    .fold(0.0f64, f64::max)
                    .max(1e-300);
                let norm_x = xd.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
                let diff = xd
                    .iter()
                    .zip(&xs)
                    .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
                let ax = sm.mul_vec(&xs);
                let resid = ax
                    .iter()
                    .zip(&b)
                    .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
                let metric = (diff / norm_x).max(resid / (norm_a * norm_x));
                let tol = 1e-7;
                let verdict = if metric <= tol {
                    Verdict::Pass
                } else {
                    Verdict::Fail {
                        detail: format!(
                            "dense and sparse LU disagree: rel diff {:.3e}, rel residual {:.3e}",
                            diff / norm_x,
                            resid / (norm_a * norm_x)
                        ),
                    }
                };
                Artifacts::report(O, verdict, Some(metric), Some(tol))
            }
            (Err(NumericError::Singular { .. }), Err(NumericError::Singular { .. })) => {
                Artifacts::report(O, Verdict::Pass, None, None)
            }
            (d, s) => Artifacts::report(
                O,
                Verdict::Fail {
                    detail: format!(
                        "solvability disagreement: dense {}, sparse {}",
                        solvability(&d),
                        solvability(&s)
                    ),
                },
                None,
                None,
            ),
        }
    }

    /// O(n) tree-walk moments vs. the LU-based MNA moment recursion — the
    /// "naive vs. production" cross-check on the engine's raw inputs.
    /// Applies to strict RC trees under pure step stimulus, where both
    /// algorithms compute the same `m₋₁ … m₂` sequence.
    fn moments_oracle(&self) -> OracleReport {
        const O: OracleKind = OracleKind::Moments;
        if !self.wave.is_pure_step() {
            return Artifacts::skip(O, "moment identity requires pure step stimulus");
        }
        let ta = match TreeAnalysis::new(&self.circuit) {
            Ok(t) if t.is_strict_tree() => t,
            Ok(_) => return Artifacts::skip(O, "not a strict RC tree"),
            Err(e) => return Artifacts::skip(O, format!("not a strict RC tree: {e}")),
        };
        // The MNA side solves `G x = b` by LU once per moment; its forward
        // error grows with κ(G), which for a resistive network is bounded
        // below by the resistor spread. The tree walk is cancellation-free
        // (sums of same-sign products), so past spread ≈ 1e8 even the
        // norm-relative tolerance below only measures the LU path's lost
        // digits, not an algorithmic disagreement. Near-degenerate-R cases
        // (the fuzzer's 1-in-8 `r_lo = 1e-6` knob) remain covered by the
        // transient and sparse-lu oracles.
        let mut r_min = f64::INFINITY;
        let mut r_max = 0.0f64;
        for e in self.circuit.elements() {
            if let Element::Resistor { ohms, .. } = e {
                r_min = r_min.min(ohms.abs());
                r_max = r_max.max(ohms.abs());
            }
        }
        if r_min.is_finite() && r_max / r_min.max(f64::MIN_POSITIVE) > 1e8 {
            return Artifacts::skip(
                O,
                format!(
                    "resistor spread {:.1e} puts kappa(G) beyond the LU moment \
                     path's precision budget",
                    r_max / r_min
                ),
            );
        }
        let mut jumps = Vec::new();
        for e in self.circuit.elements() {
            if let Element::VoltageSource { waveform, .. } = e {
                jumps.push(waveform.final_value() - waveform.initial_value());
            }
        }
        const COUNT: usize = 4;
        let tree = match ta.step_moments(&jumps, COUNT) {
            Ok(m) => m,
            Err(e) => return Artifacts::skip(O, format!("tree walk failed: {e}")),
        };
        let sys = match MnaSystem::build(&self.circuit) {
            Ok(s) => s,
            Err(e) => return Artifacts::skip(O, format!("MNA build failed: {e}")),
        };
        let mna = MomentEngine::new(&sys)
            .and_then(|eng| eng.decompose(COUNT))
            .map_err(|e| e.to_string());
        let decomp = match mna {
            Ok(d) => d,
            Err(e) => return Artifacts::skip(O, format!("MNA moments failed: {e}")),
        };
        let Some(unknown) = sys.unknown_of_node(self.output) else {
            return Artifacts::skip(O, "output is not an MNA unknown");
        };
        // All step pieces fire at t = 0; moments are linear in the
        // sources, so the per-source pieces sum to the tree walk's
        // all-at-once answer. Alongside the output entry, accumulate the
        // inf-norm of each summed moment *vector*: that is the scale the
        // LU solve controls error against.
        let mut summed = [0.0f64; COUNT];
        let mut norms = [0.0f64; COUNT];
        let num_unknowns = decomp
            .pieces
            .first()
            .map_or(0, |p| p.moments.first().map_or(0, Vec::len));
        for piece in &decomp.pieces {
            if piece.at != 0.0 {
                return Artifacts::skip(O, "non-zero-time piece under step stimulus");
            }
            for (j, s) in summed.iter_mut().enumerate() {
                *s += piece.moments[j][unknown];
            }
        }
        for (j, norm) in norms.iter_mut().enumerate() {
            for u in 0..num_unknowns {
                let v: f64 = decomp.pieces.iter().map(|p| p.moments[j][u]).sum();
                *norm = norm.max(v.abs());
            }
        }
        let mut worst = 0.0f64;
        let mut detail = None;
        for j in 0..COUNT {
            let t = tree[j][self.output];
            let m = summed[j];
            // Error is measured against the moment vector's inf-norm, not
            // the output entry: each LU solve is accurate to ~ eps * kappa
            // relative to the whole vector, so a fast node whose moment
            // sits many decades below the norm is *expected* to carry that
            // gap as per-entry error (seed 7 case 5: the output's m2 is
            // 1e-41 against a 1e-24 vector norm — per-entry rel 1.8e-2,
            // rel-to-norm 1.7e-18).
            let scale = norms[j].max(t.abs()).max(m.abs());
            if scale < 1e-300 {
                continue;
            }
            let rel = (t - m).abs() / scale;
            if rel > worst {
                worst = rel;
                detail = Some(format!(
                    "m{} disagrees: tree {t:.12e} vs MNA {m:.12e} \
                     (rel-to-norm {rel:.3e}, vector norm {:.3e})",
                    j as isize - 1,
                    norms[j]
                ));
            }
        }
        // Both paths are exact in exact arithmetic; the slack over machine
        // epsilon covers LU round-off growth through the four-deep moment
        // recursion.
        let tol = 1e-8;
        let verdict = if worst <= tol {
            Verdict::Pass
        } else {
            Verdict::Fail {
                detail: detail.unwrap_or_else(|| "moment mismatch".into()),
            }
        };
        Artifacts::report(O, verdict, Some(worst), Some(tol))
    }

    /// AWE on the chain-reduced rewrite vs. AWE on the full net. The
    /// reduction pre-pass preserves m₀ and m₁ exactly and budgets the m₂
    /// defect at `reduce_tolerance` per pass, so the two independently
    /// built models must agree in waveform shape and 50 % delay to a
    /// tolerance derived from the *measured* per-chain defect the
    /// reduction reports — not from the knob it was asked for.
    fn reduce_oracle(&self) -> OracleReport {
        const O: OracleKind = OracleKind::Reduce;
        let approx = match &self.approx {
            Ok(a) => a,
            Err(_) => return Artifacts::skip(O, "no full-net model to compare against"),
        };
        if !approx.stable || approx.condition > CONDITION_CAP {
            return Artifacts::skip(
                O,
                "full-net model untrusted (the transient oracle owns that finding)",
            );
        }
        let claimed_full = approx.error_estimate.unwrap_or(0.0);
        if claimed_full > 0.25 {
            return Artifacts::skip(
                O,
                format!(
                    "full-net model self-reports {:.1}% error (no shape to hold the \
                     reduced model to)",
                    claimed_full * 100.0
                ),
            );
        }
        let opts = awe_circuit::ReduceOptions {
            enabled: true,
            tolerance: self.reduce_tolerance,
        };
        let reduced = awe_circuit::reduce(&self.circuit, &[self.output], &opts);
        if !reduced.report.changed() {
            return Artifacts::skip(O, "nothing reducible in this topology");
        }
        let Some(red_out) = reduced.map_node(self.output) else {
            return Artifacts::report(
                O,
                Verdict::Fail {
                    detail: "reduction lost the preserved observation node".into(),
                },
                None,
                None,
            );
        };
        let order_cap = reduced.circuit.num_states().clamp(1, MAX_ORDER);
        let red = AweEngine::new(&reduced.circuit).and_then(|engine| {
            engine
                .approximate_auto(red_out, 0.0, order_cap, AweOptions::default())
                .map(|(a, _)| a)
        });
        let red = match red {
            Ok(a) => a,
            Err(e) => {
                return Artifacts::report(
                    O,
                    Verdict::Fail {
                        detail: format!("reduced-net AWE failed where the full net succeeded: {e}"),
                    },
                    None,
                    None,
                )
            }
        };
        if !red.stable || red.condition > CONDITION_CAP {
            return Artifacts::report(
                O,
                Verdict::Fail {
                    detail: format!(
                        "reduced-net model untrusted where the full net's was fine: order {} \
                         stable={} condition={:.3e}",
                        red.order, red.stable, red.condition
                    ),
                },
                None,
                None,
            );
        }

        // Sampled relative L² between the two analytic models over the
        // comparison horizon, normalized by the full model's transition
        // energy (no simulator in the loop — this isolates the reduction
        // from integration error).
        const SAMPLES: usize = 256;
        let f0 = approx.eval(0.0);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for i in 0..=SAMPLES {
            let t = self.horizon * i as f64 / SAMPLES as f64;
            let f = approx.eval(t);
            let g = red.eval(t);
            if !f.is_finite() || !g.is_finite() {
                return Artifacts::report(
                    O,
                    Verdict::Fail {
                        detail: format!(
                            "non-finite waveform comparison at t={t:.3e}s (full order {}, \
                             reduced order {})",
                            approx.order, red.order
                        ),
                    },
                    None,
                    None,
                );
            }
            num += (f - g) * (f - g);
            den += (f - f0) * (f - f0);
            lo = lo.min(f);
            hi = hi.max(f);
        }
        let swing = hi - lo;
        if den.sqrt() < 1e-12 || swing < 1e-12 {
            return Artifacts::skip(O, "zero transition energy in the full-net model");
        }
        let l2 = (num / den).sqrt();

        // Tolerance ladder: the class base covers how differently two
        // independent ≤ 6-pole auto selections may truncate the same
        // dynamics; the measured per-chain m₂ defect (`report.bound()`,
        // a fraction of the chain time constant per pass) scales the
        // allowance when the reduction actually spent its budget; and a
        // self-reported model error is an explained one on either side.
        let measured = reduced.report.bound() * reduced.report.passes.max(1) as f64;
        let claimed = claimed_full + red.error_estimate.unwrap_or(0.0);
        let base: f64 = match self.class {
            TopologyClass::RcTree => 0.05,
            TopologyClass::RcMesh => 0.06,
            TopologyClass::CoupledLines => 0.08,
            TopologyClass::RlcLadder => 0.10,
        };
        let tol = base.max(10.0 * measured).max(3.0 * claimed);

        let mut fail = None;
        if l2 > tol {
            fail = Some(format!(
                "reduced vs full relative L2 error {:.3}% exceeds {:.3}% \
                 (removed {} nodes over {} passes, measured defect bound {:.3e}, \
                 full order {}, reduced order {})",
                l2 * 100.0,
                tol * 100.0,
                reduced.report.nodes_removed,
                reduced.report.passes,
                measured,
                approx.order,
                red.order
            ));
        }
        // Timing claim, step-like responses only (a pulse's 50 % crossing
        // is numeric noise around its resting level).
        let step_like = (approx.final_value() - approx.initial_value()).abs() >= 0.5 * swing;
        if fail.is_none() && step_like {
            if let (Some(df), Some(dr)) = (approx.delay_50(), red.delay_50()) {
                let slack = tol.max(0.05) * df.abs() + 1e-3 * self.horizon;
                if (dr - df).abs() > slack {
                    fail = Some(format!(
                        "50% delay disagrees: reduced {dr:.4e}s vs full {df:.4e}s \
                         (slack {slack:.1e}s, {} nodes removed)",
                        reduced.report.nodes_removed
                    ));
                }
            }
        }
        let verdict = match fail {
            Some(detail) => Verdict::Fail { detail },
            None => Verdict::Pass,
        };
        Artifacts::report(O, verdict, Some(l2), Some(tol))
    }
}

/// Classifies an engine error: benign unmodelable cases are skips, the
/// rest are findings.
fn engine_error_report(oracle: OracleKind, e: &AweError) -> OracleReport {
    match e {
        AweError::ZeroResponse => Artifacts::skip(oracle, "node sees no response"),
        other => OracleReport {
            oracle,
            verdict: Verdict::Fail {
                detail: format!("AWE engine failed: {other}"),
            },
            metric: None,
            tolerance: None,
        },
    }
}

fn solvability(r: &Result<Vec<f64>, NumericError>) -> &'static str {
    match r {
        Ok(_) => "solved",
        Err(NumericError::Singular { .. }) => "singular",
        Err(_) => "error",
    }
}

fn sim_swing(sim: &TransientResult, node: NodeId) -> f64 {
    let wave = sim.waveform(node);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, v) in &wave {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo.is_finite() && hi.is_finite() {
        hi - lo
    } else {
        0.0
    }
}

fn last_breakpoint(circuit: &Circuit) -> f64 {
    let mut t = 0.0f64;
    for e in circuit.elements() {
        let w = match e {
            Element::VoltageSource { waveform, .. } | Element::CurrentSource { waveform, .. } => {
                waveform
            }
            _ => continue,
        };
        if let Some(&(last, _)) = w.points().last() {
            t = t.max(last);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::CaseParams;

    fn stack_for(class: TopologyClass, index: u64) -> Vec<OracleReport> {
        let case = CaseParams::generate(class, 0, index).build();
        Artifacts::build(&case).run_all()
    }

    #[test]
    fn rc_tree_case_passes_all_applicable_oracles() {
        let reports = stack_for(TopologyClass::RcTree, 0);
        assert_eq!(reports.len(), OracleKind::ALL.len());
        for r in &reports {
            assert!(!r.verdict.is_fail(), "{}: {:?}", r.oracle, r.verdict);
        }
    }

    #[test]
    fn step_rc_tree_runs_the_step_premise_oracles() {
        // Hand-build a step-driven RC line so bounds and moments must
        // actually engage (not skip).
        use awe_circuit::generators::rc_line;
        use awe_circuit::Waveform;
        let g = rc_line(5, 100.0, 1e-12, Waveform::step(0.0, 5.0));
        let art =
            Artifacts::for_circuit(g.circuit, g.output, TopologyClass::RcTree, WaveKind::Step);
        for oracle in [
            OracleKind::Bounds,
            OracleKind::Moments,
            OracleKind::Transient,
        ] {
            let r = art.run(oracle);
            assert!(
                matches!(r.verdict, Verdict::Pass),
                "{oracle}: {:?}",
                r.verdict
            );
        }
    }

    #[test]
    fn eigen_oracle_engages_on_small_circuits() {
        use awe_circuit::generators::rc_line;
        use awe_circuit::Waveform;
        let g = rc_line(3, 50.0, 2e-13, Waveform::step(0.0, 1.0));
        let art =
            Artifacts::for_circuit(g.circuit, g.output, TopologyClass::RcTree, WaveKind::Step);
        let r = art.run(OracleKind::Eigen);
        assert!(
            matches!(r.verdict, Verdict::Pass),
            "eigen should engage and pass on a 3-state line: {:?}",
            r.verdict
        );
    }

    #[test]
    fn reduce_oracle_engages_and_passes_on_a_long_chain() {
        use awe_circuit::generators::rc_line;
        use awe_circuit::Waveform;
        let g = rc_line(64, 100.0, 1e-12, Waveform::step(0.0, 1.0));
        let art =
            Artifacts::for_circuit(g.circuit, g.output, TopologyClass::RcTree, WaveKind::Step);
        let r = art.run(OracleKind::Reduce);
        assert!(
            matches!(r.verdict, Verdict::Pass),
            "reduce oracle must engage and pass on a 64-stage chain: {:?}",
            r.verdict
        );
        let metric = r.metric.expect("comparison ran");
        assert!(metric.is_finite() && metric >= 0.0);
        assert!(r.tolerance.is_some());
    }

    #[test]
    fn reduce_oracle_skips_when_nothing_collapses() {
        use awe_circuit::generators::rc_mesh;
        use awe_circuit::Waveform;
        // At a tight tolerance even the mesh's degree-2 corners stay
        // (their defect/tau is 1/4): the rewrite is a no-op and the
        // oracle must say so instead of comparing a net to itself.
        let g = rc_mesh(5, 5, 100.0, 1e-12, Waveform::step(0.0, 1.0));
        let mut art =
            Artifacts::for_circuit(g.circuit, g.output, TopologyClass::RcMesh, WaveKind::Step);
        art.reduce_tolerance = 0.01;
        let r = art.run(OracleKind::Reduce);
        assert!(
            matches!(r.verdict, Verdict::Skip { .. }),
            "untouched topology: {:?}",
            r.verdict
        );
    }

    #[test]
    fn every_class_produces_verdicts_without_panicking() {
        for class in TopologyClass::ALL {
            for index in 0..4 {
                let reports = stack_for(class, index);
                assert_eq!(reports.len(), OracleKind::ALL.len());
            }
        }
    }
}
