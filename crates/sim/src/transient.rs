//! Reference transient simulation.
//!
//! This is the workspace's substitute for the paper's SPICE2 comparator
//! (DESIGN.md §4): for *linear* circuits, trapezoidal integration of the
//! MNA descriptor system is exactly the algorithm SPICE applies, so a
//! tight-tolerance run here is a faithful "exact" waveform. Adaptive step
//! doubling controls the local truncation error; the implicit system
//! matrix `G + (2/h)·C` is LU-factored once per step size and reused.

use awe_circuit::{Circuit, NodeId};
use awe_mna::{MnaSystem, MomentEngine};
use awe_numeric::Lu;

use crate::error::SimError;

/// Integration method.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Method {
    /// Trapezoidal rule (A-stable, second order) — SPICE2's default.
    #[default]
    Trapezoidal,
    /// Backward Euler (L-stable, first order) — useful to damp
    /// trapezoidal ringing on ideal discontinuities.
    BackwardEuler,
}

/// Options for a transient run.
#[derive(Clone, Copy, Debug)]
pub struct TransientOptions {
    /// End time of the simulation (start is always `t = 0`).
    pub t_stop: f64,
    /// Relative local-truncation-error tolerance per step.
    pub tol: f64,
    /// Integration method.
    pub method: Method,
    /// Maximum number of accepted steps (safety valve).
    pub max_steps: usize,
}

impl TransientOptions {
    /// Tight-tolerance defaults for a given stop time.
    pub fn new(t_stop: f64) -> Self {
        TransientOptions {
            t_stop,
            tol: 1e-6,
            method: Method::Trapezoidal,
            max_steps: 2_000_000,
        }
    }
}

/// Result of a transient run: time points and all node voltages.
#[derive(Clone, Debug)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `values[k][node]` = voltage of `node` at `times[k]` (ground
    /// included, always 0).
    values: Vec<Vec<f64>>,
}

impl TransientResult {
    /// The accepted time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of accepted steps.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Waveform of one node as `(t, v)` samples.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn waveform(&self, node: NodeId) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .zip(&self.values)
            .map(|(&t, row)| (t, row[node]))
            .collect()
    }

    /// Linearly interpolated voltage of `node` at time `t` (clamped to
    /// the simulated range).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the result is empty.
    pub fn value_at(&self, node: NodeId, t: f64) -> f64 {
        assert!(!self.times.is_empty(), "empty transient result");
        if t <= self.times[0] {
            return self.values[0][node];
        }
        if t >= *self.times.last().expect("non-empty") {
            return self.values.last().expect("non-empty")[node];
        }
        // Binary search for the bracketing interval.
        let mut lo = 0usize;
        let mut hi = self.times.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.times[mid] <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (t0, t1) = (self.times[lo], self.times[hi]);
        let (v0, v1) = (self.values[lo][node], self.values[hi][node]);
        if t1 == t0 {
            v1
        } else {
            v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        }
    }

    /// First time the node's waveform crosses `level` (linear
    /// interpolation between samples), or `None`.
    pub fn threshold_crossing(&self, node: NodeId, level: f64) -> Option<f64> {
        let mut prev: Option<(f64, f64)> = None;
        for (&t, row) in self.times.iter().zip(&self.values) {
            let v = row[node];
            if let Some((tp, vp)) = prev {
                if (vp - level) == 0.0 {
                    return Some(tp);
                }
                if (vp - level).signum() != (v - level).signum() {
                    let frac = (level - vp) / (v - vp);
                    return Some(tp + frac * (t - tp));
                }
            }
            prev = Some((t, v));
        }
        None
    }

    /// Measured 50 % delay of the node: first crossing of the midpoint
    /// between the initial and final simulated values.
    pub fn delay_50(&self, node: NodeId) -> Option<f64> {
        let v0 = self.values.first()?[node];
        let vf = self.values.last()?[node];
        if vf == v0 {
            return None;
        }
        self.threshold_crossing(node, v0 + 0.5 * (vf - v0))
    }
}

/// Runs a transient simulation of the circuit from `t = 0` (initial
/// conditions and the sources' `t = 0⁺` values applied) to
/// `options.t_stop`.
///
/// # Errors
///
/// * [`SimError::Mna`] for assembly/DC failures (no DC solution, …).
/// * [`SimError::StepLimit`] if the step budget is exhausted.
/// * [`SimError::StepUnderflow`] if LTE control drives the step below
///   `~1e-18·t_stop` (a pathological circuit).
pub fn simulate(circuit: &Circuit, options: TransientOptions) -> Result<TransientResult, SimError> {
    let sys = MnaSystem::build(circuit)?;
    let engine = MomentEngine::new(&sys)?;
    let state = engine.initial_state()?;
    let u0 = sys.source_values_at(0.0);
    let mut x = engine.instantaneous(&state, &u0)?;
    let n = sys.num_unknowns();

    // Breakpoints of all source waveforms inside (0, t_stop): steps must
    // land on them exactly.
    let mut breakpoints: Vec<f64> = sys
        .sources
        .iter()
        .flat_map(|s| s.waveform.points().iter().map(|p| p.0))
        .filter(|&t| t > 0.0 && t < options.t_stop)
        .collect();
    // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN waveform point
    // must not panic the sort (it sorts last and is clamped away by the
    // stepper). Dedup with a relative epsilon on the horizon scale —
    // breakpoints closer than ~1e-12·t_stop produce a zero-width step
    // whose trapezoidal weights degenerate to `inf × 0` NaN samples.
    breakpoints.sort_by(f64::total_cmp);
    breakpoints.dedup_by(|a, b| (*a - *b).abs() <= 1e-12 * options.t_stop);
    breakpoints.push(options.t_stop);

    let mut times = vec![0.0];
    let node_count = circuit.num_nodes();
    let extract = |x: &[f64]| -> Vec<f64> {
        (0..node_count)
            .map(|node| sys.unknown_of_node(node).map_or(0.0, |i| x[i]))
            .collect()
    };
    let mut values = vec![extract(&x)];

    let mut t = 0.0f64;
    let mut h = options.t_stop / 1e4;
    let h_min = options.t_stop * 1e-18;
    let mut steps = 0usize;
    let mut cache: StepCache = StepCache::new();

    let mut bp_iter = breakpoints.into_iter();
    let mut next_bp = bp_iter.next().unwrap_or(options.t_stop);

    while t < options.t_stop {
        if steps >= options.max_steps {
            return Err(SimError::StepLimit {
                steps: options.max_steps,
            });
        }
        steps += 1;
        // Clamp to the next breakpoint.
        let h_eff = h.min(next_bp - t).max(h_min);

        // One full step vs two half steps for LTE estimation.
        let x_full = step(&sys, &mut cache, options.method, &x, t, h_eff)?;
        let x_half = step(&sys, &mut cache, options.method, &x, t, h_eff / 2.0)?;
        let x_two = step(
            &sys,
            &mut cache,
            options.method,
            &x_half,
            t + h_eff / 2.0,
            h_eff / 2.0,
        )?;

        // LTE estimate: difference between the two solutions.
        let mut err = 0.0f64;
        let mut scale = 1e-9f64;
        for i in 0..n {
            err = err.max((x_full[i] - x_two[i]).abs());
            scale = scale.max(x_two[i].abs());
        }
        let rel = err / scale;

        if rel > options.tol && h_eff > h_min * 2.0 {
            // Reject and retry with half the step.
            h = (h_eff / 2.0).max(h_min);
            if h <= h_min {
                return Err(SimError::StepUnderflow { at: t });
            }
            continue;
        }

        // Accept (use the more accurate two-half-steps solution).
        t += h_eff;
        x = x_two;
        times.push(t);
        values.push(extract(&x));
        if (t - next_bp).abs() <= f64::EPSILON * options.t_stop {
            t = next_bp;
            next_bp = bp_iter.next().unwrap_or(options.t_stop);
        }
        // Grow the step when comfortably under tolerance.
        if rel < options.tol / 4.0 {
            h = (h_eff * 2.0).min(options.t_stop / 100.0);
        } else {
            h = h_eff;
        }
    }

    Ok(TransientResult { times, values })
}

/// Cached implicit-matrix factorizations keyed by step size.
struct StepCache {
    entries: Vec<(f64, Method, Lu)>,
}

impl StepCache {
    fn new() -> Self {
        StepCache {
            entries: Vec::new(),
        }
    }

    fn factor(&mut self, sys: &MnaSystem, method: Method, h: f64) -> Result<&Lu, SimError> {
        if let Some(pos) = self
            .entries
            .iter()
            .position(|(hh, mm, _)| *hh == h && *mm == method)
        {
            return Ok(&self.entries[pos].2);
        }
        let k = match method {
            Method::Trapezoidal => 2.0 / h,
            Method::BackwardEuler => 1.0 / h,
        };
        let a = &sys.g + &sys.c.scaled(k);
        let lu = Lu::factor(&a).map_err(awe_mna::MnaError::from)?;
        if self.entries.len() >= 8 {
            self.entries.remove(0);
        }
        self.entries.push((h, method, lu));
        Ok(&self.entries.last().expect("just pushed").2)
    }
}

/// One implicit integration step from `(t, x)` over `h`.
fn step(
    sys: &MnaSystem,
    cache: &mut StepCache,
    method: Method,
    x: &[f64],
    t: f64,
    h: f64,
) -> Result<Vec<f64>, SimError> {
    let u_next = sys.source_values_at(t + h);
    let mut rhs = sys.b_times(&u_next);
    match method {
        Method::Trapezoidal => {
            // (G + 2C/h)x₊ = B u₊ + (2/h)C x + (B u − G x).
            let cx = sys.c_times(x);
            let u_now = sys.source_values_at(t);
            let bu = sys.b_times(&u_now);
            let gx = sys.g.mul_vec(x);
            for i in 0..rhs.len() {
                rhs[i] += 2.0 / h * cx[i] + bu[i] - gx[i];
            }
        }
        Method::BackwardEuler => {
            // (G + C/h)x₊ = B u₊ + (1/h)C x.
            let cx = sys.c_times(x);
            for i in 0..rhs.len() {
                rhs[i] += cx[i] / h;
            }
        }
    }
    let lu = cache.factor(sys, method, h)?;
    Ok(lu.solve(&rhs).map_err(awe_mna::MnaError::from)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::{Waveform, GROUND};

    fn rc_circuit(r: f64, c: f64, wf: Waveform) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, wf).unwrap();
        ckt.add_resistor("R1", n_in, n1, r).unwrap();
        ckt.add_capacitor("C1", n1, GROUND, c).unwrap();
        (ckt, n1)
    }

    #[test]
    fn rc_step_matches_analytic() {
        let tau = 1e-6;
        let (ckt, n1) = rc_circuit(1e3, 1e-9, Waveform::step(0.0, 5.0));
        // 12τ window so the final sample is settled and the measured 50 %
        // level is the true midpoint.
        let res = simulate(&ckt, TransientOptions::new(12.0 * tau)).unwrap();
        for &t in &[0.2e-6, 1e-6, 3e-6] {
            let exact = 5.0 * (1.0 - (-t / tau).exp());
            let got = res.value_at(n1, t);
            assert!((got - exact).abs() < 5e-4 * 5.0, "t={t}: {got} vs {exact}");
        }
        let d = res.delay_50(n1).unwrap();
        assert!((d - tau * 2.0f64.ln()).abs() < 2e-9, "d = {d}");
    }

    #[test]
    fn backward_euler_also_converges() {
        let tau = 1e-6;
        let (ckt, n1) = rc_circuit(1e3, 1e-9, Waveform::step(0.0, 5.0));
        let mut opts = TransientOptions::new(5.0 * tau);
        opts.method = Method::BackwardEuler;
        opts.tol = 1e-5;
        let res = simulate(&ckt, opts).unwrap();
        let exact = 5.0 * (1.0 - (-1.0f64).exp());
        assert!((res.value_at(n1, tau) - exact).abs() < 0.02);
    }

    #[test]
    fn ramp_input_tracks_breakpoints() {
        let (ckt, n1) = rc_circuit(1e3, 1e-9, Waveform::rising_step(0.0, 5.0, 1e-6));
        let res = simulate(&ckt, TransientOptions::new(10e-6)).unwrap();
        // A breakpoint sample exists at exactly t = 1 µs.
        assert!(res.times().iter().any(|&t| (t - 1e-6).abs() < 1e-18));
        // Analytic ramp response: v = s(t - τ + τ e^{-t/τ}) during ramp.
        let (tau, s): (f64, f64) = (1e-6, 5e6);
        let t = 0.7e-6;
        let exact = s * (t - tau + tau * (-t / tau).exp());
        assert!((res.value_at(n1, t) - exact).abs() < 5e-3);
        // Settles at 5 V (9 τ after the ramp ends).
        assert!((res.value_at(n1, 10e-6) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn initial_condition_decay() {
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::dc(0.0))
            .unwrap();
        ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
        ckt.add_capacitor_ic("C1", n1, GROUND, 1e-9, Some(3.0))
            .unwrap();
        let res = simulate(&ckt, TransientOptions::new(5e-6)).unwrap();
        assert!((res.value_at(n1, 0.0) - 3.0).abs() < 1e-9);
        let exact = 3.0 * (-1.0f64).exp();
        assert!((res.value_at(n1, 1e-6) - exact).abs() < 2e-3);
    }

    #[test]
    fn rlc_ringing_conserves_shape() {
        // Series RLC, underdamped: check frequency and decay of ringing.
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let na = ckt.node("na");
        let n1 = ckt.node("n1");
        let (r, l, c) = (1.0, 1e-9, 1e-12);
        ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        ckt.add_resistor("R1", n_in, na, r).unwrap();
        ckt.add_inductor("L1", na, n1, l).unwrap();
        ckt.add_capacitor("C1", n1, GROUND, c).unwrap();
        let w0 = 1.0 / (l * c).sqrt();
        let res = simulate(
            &ckt,
            TransientOptions::new(20.0 / w0 * std::f64::consts::TAU),
        )
        .unwrap();
        // Analytic: v = 1 - e^{-αt}(cos ωd t + α/ωd sin ωd t).
        let alpha = r / (2.0 * l);
        let wd = (w0 * w0 - alpha * alpha).sqrt();
        for &t in &[0.5e-10, 2e-10, 1e-9] {
            let exact = 1.0 - (-alpha * t).exp() * ((wd * t).cos() + alpha / wd * (wd * t).sin());
            let got = res.value_at(n1, t);
            assert!((got - exact).abs() < 5e-3, "t={t}: {got} vs {exact}");
        }
    }

    #[test]
    fn stiff_circuit_completes() {
        // Widely separated time constants (the Fig. 16 regime).
        use awe_circuit::papers::fig16;
        let p = fig16(Waveform::rising_step(0.0, 5.0, 1e-9), None);
        let res = simulate(&p.circuit, TransientOptions::new(5e-9)).unwrap();
        assert!((res.value_at(p.output, 5e-9) - 5.0).abs() < 0.05);
        assert!(res.len() > 100);
    }

    #[test]
    fn interpolation_and_clamping() {
        let (ckt, n1) = rc_circuit(1e3, 1e-9, Waveform::step(0.0, 1.0));
        let res = simulate(&ckt, TransientOptions::new(1e-6)).unwrap();
        // Clamps outside the range.
        assert_eq!(res.value_at(n1, -1.0), res.value_at(n1, 0.0));
        let last = res.value_at(n1, 1e-6);
        assert_eq!(res.value_at(n1, 1.0), last);
        assert!(!res.is_empty());
        assert!(res.waveform(n1).len() == res.len());
    }

    #[test]
    fn step_limit_enforced() {
        let (ckt, _) = rc_circuit(1e3, 1e-9, Waveform::step(0.0, 1.0));
        let mut opts = TransientOptions::new(1e-6);
        opts.max_steps = 3;
        assert!(matches!(
            simulate(&ckt, opts),
            Err(SimError::StepLimit { steps: 3 })
        ));
    }
}
