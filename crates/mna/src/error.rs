//! Error type for MNA assembly and analysis.

use std::error::Error;
use std::fmt;

use awe_numeric::NumericError;

/// Errors from MNA system construction and moment generation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum MnaError {
    /// The circuit has no unique DC solution (the paper's §3.1 requirement
    /// that the A-matrix be nonsingular — e.g. a node connected only
    /// through capacitors).
    NoDcSolution,
    /// A numeric routine failed.
    Numeric(NumericError),
    /// A controlled source references a voltage source with no MNA branch
    /// (should be prevented by circuit validation, but double-checked
    /// here).
    MissingControlBranch(String),
    /// The circuit contains no independent sources and no initial
    /// conditions — there is nothing to analyze.
    NoExcitation,
    /// A requested node is not part of the system (e.g. ground).
    UnknownNode(usize),
}

impl fmt::Display for MnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnaError::NoDcSolution => {
                write!(
                    f,
                    "circuit has no unique dc solution (singular conductance matrix)"
                )
            }
            MnaError::Numeric(e) => write!(f, "numeric failure: {e}"),
            MnaError::MissingControlBranch(name) => {
                write!(f, "controlling source {name} has no branch current")
            }
            MnaError::NoExcitation => {
                write!(f, "circuit has no sources and no initial conditions")
            }
            MnaError::UnknownNode(n) => write!(f, "node {n} is not an unknown of the system"),
        }
    }
}

impl Error for MnaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MnaError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for MnaError {
    fn from(e: NumericError) -> Self {
        match e {
            NumericError::Singular { .. } => MnaError::NoDcSolution,
            other => MnaError::Numeric(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MnaError::from(NumericError::Singular { pivot: 2 });
        assert_eq!(e, MnaError::NoDcSolution);
        let e2 = MnaError::from(NumericError::NoConvergence { iterations: 5 });
        assert!(e2.to_string().contains("numeric failure"));
        use std::error::Error;
        assert!(e2.source().is_some());
        assert!(MnaError::NoDcSolution.source().is_none());
        assert!(MnaError::UnknownNode(3).to_string().contains("node 3"));
    }
}
