//! A miniature timing analyzer over a synthetic clock-tree net (paper §II:
//! the intended application).
//!
//! Generates a random RC tree (a clock net with many sinks), then reports
//! per-sink delays three ways:
//!
//! * the classical Elmore bound (one `O(n)` tree walk for *all* sinks),
//! * first-order AWE (identical to Elmore's single-exponential, §IV),
//! * auto-order AWE, escalating until the §3.4 error estimate drops below
//!   1 % (the paper's "increase the order until an acceptable error term
//!   exists", §4.4).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example timing_report
//! ```

use awesim::circuit::generators::random_rc_tree;
use awesim::circuit::Waveform;
use awesim::core::elmore::elmore_delays;
use awesim::core::{AweEngine, AweOptions};
use awesim::sim::{simulate, TransientOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    let g = random_rc_tree(
        n,
        (20.0, 400.0),
        (0.05e-12, 0.8e-12),
        7,
        Waveform::step(0.0, 1.0),
    );
    println!("random RC tree: {n} capacitive nodes (seed 7)\n");

    // Elmore for every node in one walk.
    let t_d = elmore_delays(&g.circuit)?;
    let engine = AweEngine::new(&g.circuit)?;

    // Reference simulation once, for the whole net.
    let worst_td = g.nodes.iter().map(|&nd| t_d[nd]).fold(0.0f64, f64::max);
    let sim = simulate(&g.circuit, TransientOptions::new(12.0 * worst_td))?;

    println!("  sink   T_D [ps]   AWE-auto q   delay [ps]   est.err [%]   sim delay [ps]");
    let mut worst: Option<(String, f64)> = None;
    for &node in g.nodes.iter().rev().take(8) {
        let name = g.circuit.node_name(node).to_owned();
        let (approx, _trail) = engine.approximate_auto(node, 0.01, 6, AweOptions::default())?;
        let delay = approx.delay_50().expect("rising response");
        let d_sim = sim.delay_50(node).expect("rising waveform");
        println!(
            "  {name:>5}   {:8.1}   {:10}   {:10.1}   {:11.3}   {:14.1}",
            t_d[node] * 1e12,
            approx.order,
            delay * 1e12,
            approx.error_estimate.unwrap_or(f64::NAN) * 100.0,
            d_sim * 1e12,
        );
        if worst.as_ref().is_none_or(|(_, d)| delay > *d) {
            worst = Some((name, delay));
        }
    }

    if let Some((name, delay)) = worst {
        println!("\ncritical sink: {name} at {:.1} ps", delay * 1e12);
    }
    println!(
        "\nElmore's T_D bounds the 50% delay from above on monotone RC-tree\n\
         responses; auto-order AWE refines each sink to the requested accuracy\n\
         with a handful of extra tree walks."
    );
    Ok(())
}
