//! Typed ECO (engineering change order) edit operations.
//!
//! Each op names the net it touches and maps onto one `awe-circuit` edit
//! entry point; the session layer decides afterwards whether the edit was
//! value-only (the cached symbolic pattern survives) or topological (the
//! structure group changes).

use std::fmt;

use awe_circuit::{parse_card_into, parse_source_spec, Circuit, CircuitError};

/// One edit operation against a named net of a session's design.
#[derive(Clone, Debug)]
pub enum EcoOp {
    /// Add an element: `card` is one deck card (`"C9 n5 0 2p"`).
    Add {
        /// Target net name.
        net: String,
        /// The element card, deck syntax.
        card: String,
    },
    /// Remove the element named `element`.
    Remove {
        /// Target net name.
        net: String,
        /// Element to remove.
        element: String,
    },
    /// Change the principal value of an existing element (ohms, farads,
    /// henries, or a controlled-source gain) — a value-only edit.
    Resize {
        /// Target net name.
        net: String,
        /// Element to resize.
        element: String,
        /// New value (positivity rules follow the element kind).
        value: f64,
    },
    /// Replace an independent source's waveform (`"STEP 0 3.3"`,
    /// `"DC 5"`, `"PWL(0 0 1n 5)"`) — a value-only edit.
    SetSource {
        /// Target net name.
        net: String,
        /// Source element to rewire.
        element: String,
        /// Waveform spec, deck syntax.
        source: String,
    },
}

impl EcoOp {
    /// The net this op edits.
    pub fn net(&self) -> &str {
        match self {
            EcoOp::Add { net, .. }
            | EcoOp::Remove { net, .. }
            | EcoOp::Resize { net, .. }
            | EcoOp::SetSource { net, .. } => net,
        }
    }

    /// Applies the edit to a circuit (the session hands in a *clone* so a
    /// failing op sequence leaves the design untouched).
    pub fn apply(&self, circuit: &mut Circuit) -> Result<(), CircuitError> {
        match self {
            EcoOp::Add { card, .. } => parse_card_into(circuit, card),
            EcoOp::Remove { element, .. } => circuit.remove_element(element).map(|_| ()),
            EcoOp::Resize { element, value, .. } => circuit.set_value(element, *value),
            EcoOp::SetSource {
                element, source, ..
            } => {
                let waveform = parse_source_spec(source)?;
                circuit.set_source(element, waveform)
            }
        }
    }
}

impl fmt::Display for EcoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoOp::Add { net, card } => write!(f, "add `{card}` to {net}"),
            EcoOp::Remove { net, element } => write!(f, "remove {element} from {net}"),
            EcoOp::Resize {
                net,
                element,
                value,
            } => write!(f, "resize {element} in {net} to {value}"),
            EcoOp::SetSource { net, element, .. } => write!(f, "set source {element} in {net}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::parse_deck;

    fn rc() -> Circuit {
        parse_deck("V1 in 0 STEP 0 5\nR1 in out 1k\nC1 out 0 1p").unwrap()
    }

    #[test]
    fn ops_apply_and_fail_typed() {
        let mut c = rc();
        EcoOp::Add {
            net: "n".into(),
            card: "C2 out 0 0.5p".into(),
        }
        .apply(&mut c)
        .unwrap();
        EcoOp::Resize {
            net: "n".into(),
            element: "R1".into(),
            value: 2e3,
        }
        .apply(&mut c)
        .unwrap();
        EcoOp::SetSource {
            net: "n".into(),
            element: "V1".into(),
            source: "STEP 0 3.3".into(),
        }
        .apply(&mut c)
        .unwrap();
        EcoOp::Remove {
            net: "n".into(),
            element: "C2".into(),
        }
        .apply(&mut c)
        .unwrap();
        assert_eq!(c.elements().len(), 3);

        let err = EcoOp::Remove {
            net: "n".into(),
            element: "C9".into(),
        }
        .apply(&mut c)
        .unwrap_err();
        assert!(matches!(err, CircuitError::NoSuchElement(_)), "{err:?}");
        let err = EcoOp::Resize {
            net: "n".into(),
            element: "R1".into(),
            value: -1.0,
        }
        .apply(&mut c)
        .unwrap_err();
        assert!(
            matches!(err, CircuitError::NonPositiveValue { .. }),
            "{err:?}"
        );
    }
}
