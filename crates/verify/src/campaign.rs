//! Campaign driver: runs many fuzz cases through the oracle stack in
//! parallel (on `awe_batch`'s work-stealing pool), minimizes failures, and
//! renders a census as text or JSON.
//!
//! Determinism contract: the set of cases — and therefore every verdict —
//! is a pure function of `(master_seed, count, class filter)`. Thread
//! count only changes wall time. A failure is replayed with
//! `awesim verify --seed <master> --count <i+1> [--class <c>]` (the
//! failing index is printed) or, once minimized and committed, by running
//! the corpus deck.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use awe_batch::pool::run_indexed;
use awe_circuit::parse_deck;

use crate::fuzz::{CaseParams, TopologyClass, WaveKind};
use crate::minimize::{corpus_deck, minimize};
use crate::oracle::{Artifacts, OracleKind, OracleReport, Verdict};

/// What to run.
#[derive(Clone, Copy, Debug)]
pub struct CampaignOptions {
    /// Master seed: case `i` derives from `(master_seed, i)`.
    pub master_seed: u64,
    /// Number of cases.
    pub count: usize,
    /// Restrict to one topology class (`None` cycles through all four).
    pub class: Option<TopologyClass>,
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    /// Shrink failing cases (costs extra oracle runs per failure).
    pub minimize_failures: bool,
    /// Tolerance handed to the reduce oracle's chain-reduction pre-pass.
    pub reduce_tolerance: f64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            master_seed: 0,
            count: 100,
            class: None,
            threads: 0,
            minimize_failures: true,
            reduce_tolerance: crate::oracle::DEFAULT_REDUCE_TOLERANCE,
        }
    }
}

impl CampaignOptions {
    /// The topology class of case `index` under these options.
    pub fn class_of(&self, index: u64) -> TopologyClass {
        self.class
            .unwrap_or(TopologyClass::ALL[(index % TopologyClass::ALL.len() as u64) as usize])
    }
}

/// All verdicts for one case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Case index within the campaign.
    pub index: u64,
    /// The regenerable parameters.
    pub params: CaseParams,
    /// One report per oracle, in [`OracleKind::ALL`] order.
    pub reports: Vec<OracleReport>,
}

impl CaseOutcome {
    /// Whether any oracle failed.
    pub fn failed(&self) -> bool {
        self.reports.iter().any(|r| r.verdict.is_fail())
    }
}

/// A failing case, minimized and rendered as a corpus deck.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// Index of the original failing case.
    pub index: u64,
    /// Oracle that failed.
    pub oracle: OracleKind,
    /// Failure detail on the *original* case.
    pub detail: String,
    /// Shrunk parameters (`None` when minimization was disabled).
    pub minimized: Option<CaseParams>,
    /// Ready-to-commit corpus deck for the smallest failing circuit.
    pub deck: String,
}

/// Pass/fail/skip counts for one oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tally {
    /// Cases that passed.
    pub pass: usize,
    /// Cases that failed.
    pub fail: usize,
    /// Cases where the oracle's premise did not apply.
    pub skip: usize,
}

/// The campaign result: every outcome, the failure records, and timing.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The options that produced this result.
    pub options: CampaignOptions,
    /// Per-case outcomes, in index order.
    pub outcomes: Vec<CaseOutcome>,
    /// Minimized failures (empty on a clean run).
    pub failures: Vec<FailureRecord>,
    /// Wall time for the whole campaign.
    pub wall: Duration,
}

impl CampaignResult {
    /// Per-oracle tallies, in [`OracleKind::ALL`] order.
    pub fn tallies(&self) -> Vec<(OracleKind, Tally)> {
        OracleKind::ALL
            .iter()
            .map(|&oracle| {
                let mut t = Tally::default();
                for o in &self.outcomes {
                    for r in &o.reports {
                        if r.oracle != oracle {
                            continue;
                        }
                        match r.verdict {
                            Verdict::Pass => t.pass += 1,
                            Verdict::Fail { .. } => t.fail += 1,
                            Verdict::Skip { .. } => t.skip += 1,
                        }
                    }
                }
                (oracle, t)
            })
            .collect()
    }

    /// Worst transient waveform error (fraction of swing) across passing
    /// and failing cases, with the index it occurred at.
    pub fn worst_waveform_error(&self) -> Option<(f64, u64)> {
        let mut worst: Option<(f64, u64)> = None;
        for o in &self.outcomes {
            for r in &o.reports {
                if r.oracle != OracleKind::Transient {
                    continue;
                }
                if let Some(m) = r.metric {
                    if worst.is_none_or(|(w, _)| m > w) {
                        worst = Some((m, o.index));
                    }
                }
            }
        }
        worst
    }

    /// Total failing cases.
    pub fn failed_cases(&self) -> usize {
        self.outcomes.iter().filter(|o| o.failed()).count()
    }
}

/// Runs a campaign.
pub fn run_campaign(options: &CampaignOptions) -> CampaignResult {
    let start = Instant::now();
    let (outcomes, _pool) = run_indexed(options.count, options.threads, |i, _worker| {
        let index = i as u64;
        let params = CaseParams::generate(options.class_of(index), options.master_seed, index);
        let case = params.build();
        let mut artifacts = Artifacts::build(&case);
        artifacts.reduce_tolerance = options.reduce_tolerance;
        let reports = artifacts.run_all();
        CaseOutcome {
            index,
            params,
            reports,
        }
    });

    // Minimization is rare and recursive; run it after the pool drains.
    let mut failures = Vec::new();
    for o in &outcomes {
        for r in &o.reports {
            let Verdict::Fail { detail } = &r.verdict else {
                continue;
            };
            let record = if options.minimize_failures {
                let m = minimize(&o.params, r.oracle, options.reduce_tolerance);
                let case = m.params.build();
                FailureRecord {
                    index: o.index,
                    oracle: r.oracle,
                    detail: detail.clone(),
                    minimized: Some(m.params),
                    deck: corpus_deck(&m, &case),
                }
            } else {
                let m = crate::minimize::Minimized {
                    params: o.params,
                    oracle: r.oracle,
                    detail: detail.clone(),
                    steps: 0,
                    reduce_tolerance: options.reduce_tolerance,
                };
                let case = o.params.build();
                FailureRecord {
                    index: o.index,
                    oracle: r.oracle,
                    detail: detail.clone(),
                    minimized: None,
                    deck: corpus_deck(&m, &case),
                }
            };
            failures.push(record);
        }
    }

    CampaignResult {
        options: *options,
        outcomes,
        failures,
        wall: start.elapsed(),
    }
}

/// Replays a committed corpus deck: parses the netlist and the metadata
/// header written by [`corpus_deck`](crate::minimize::corpus_deck), then
/// re-runs the recorded oracle. Returns the oracle's report.
///
/// # Errors
///
/// Returns a message when the deck does not parse or the metadata header
/// is missing/invalid.
pub fn replay_deck(text: &str) -> Result<OracleReport, String> {
    let mut oracle = None;
    let mut class = TopologyClass::RcTree;
    let mut wave = WaveKind::Step;
    let mut reduce_tolerance = crate::oracle::DEFAULT_REDUCE_TOLERANCE;
    let mut output_name = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("* oracle=") {
            // "* oracle=<o> class=<c> wave=<w> rtol=<t>"
            for field in rest.split_whitespace() {
                if let Some(v) = field.strip_prefix("class=") {
                    class = v.parse()?;
                } else if let Some(v) = field.strip_prefix("wave=") {
                    wave = parse_wave_tag(v)?;
                } else if let Some(v) = field.strip_prefix("rtol=") {
                    reduce_tolerance = v
                        .parse()
                        .map_err(|_| format!("bad rtol field `{v}` in corpus header"))?;
                } else {
                    oracle = Some(parse_oracle_name(field)?);
                }
            }
        } else if let Some(rest) = line.strip_prefix("* output ") {
            output_name = Some(rest.trim().to_owned());
        }
    }
    let oracle = oracle.ok_or("corpus deck is missing the `* oracle=` header")?;
    let output_name = output_name.ok_or("corpus deck is missing the `* output` header")?;
    let circuit = parse_deck(text).map_err(|e| e.to_string())?;
    let output = circuit
        .find_node(&output_name)
        .ok_or_else(|| format!("output node `{output_name}` not in deck"))?;
    let mut artifacts = Artifacts::for_circuit(circuit, output, class, wave);
    artifacts.reduce_tolerance = reduce_tolerance;
    Ok(artifacts.run(oracle))
}

fn parse_oracle_name(s: &str) -> Result<OracleKind, String> {
    OracleKind::ALL
        .into_iter()
        .find(|o| o.name() == s)
        .ok_or_else(|| format!("unknown oracle `{s}`"))
}

fn parse_wave_tag(s: &str) -> Result<WaveKind, String> {
    match s {
        "step" => Ok(WaveKind::Step),
        "falling-step" => Ok(WaveKind::FallingStep),
        // The ratio knobs only matter for generation; replay works off the
        // concrete waveform already in the deck.
        "ramp" => Ok(WaveKind::Ramp { rise_ratio: 1.0 }),
        "pulse" => Ok(WaveKind::Pulse { width_ratio: 1.0 }),
        other => Err(format!("unknown wave tag `{other}`")),
    }
}

/// Renders the campaign census as a human-readable report. Failure lines
/// include the exact replay recipe.
pub fn text_report(result: &CampaignResult) -> String {
    let mut out = String::new();
    let o = &result.options;
    let _ = writeln!(
        out,
        "verify campaign: seed {} count {} class {}",
        o.master_seed,
        o.count,
        o.class.map_or("all".into(), |c| c.to_string())
    );
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>6} {:>6}",
        "oracle", "pass", "fail", "skip"
    );
    for (oracle, t) in result.tallies() {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>6} {:>6}",
            oracle.name(),
            t.pass,
            t.fail,
            t.skip
        );
    }
    if let Some((err, index)) = result.worst_waveform_error() {
        let _ = writeln!(
            out,
            "worst waveform error {:.4}% of swing (case {index})",
            err * 100.0
        );
    }
    let _ = writeln!(
        out,
        "cases {}  failed {}  wall {:.3}s",
        result.outcomes.len(),
        result.failed_cases(),
        result.wall.as_secs_f64()
    );
    for f in &result.failures {
        let _ = writeln!(
            out,
            "FAIL case {} [{}] {} — replay: awesim verify --seed {} --count {}{}",
            f.index,
            f.oracle,
            f.detail,
            o.master_seed,
            f.index + 1,
            o.class.map_or(String::new(), |c| format!(" --class {c}"))
        );
    }
    out
}

/// Renders the campaign census as JSON (hand-rolled; the workspace has no
/// serde).
pub fn json_report(result: &CampaignResult) -> String {
    let o = &result.options;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"seed\": {},", o.master_seed);
    let _ = writeln!(out, "  \"count\": {},", o.count);
    let _ = writeln!(
        out,
        "  \"class\": \"{}\",",
        o.class.map_or("all".into(), |c| c.to_string())
    );
    let _ = writeln!(out, "  \"failed_cases\": {},", result.failed_cases());
    match result.worst_waveform_error() {
        Some((err, index)) => {
            let _ = writeln!(out, "  \"worst_waveform_error\": {err:e},");
            let _ = writeln!(out, "  \"worst_waveform_case\": {index},");
        }
        None => {
            let _ = writeln!(out, "  \"worst_waveform_error\": null,");
        }
    }
    out.push_str("  \"oracles\": {\n");
    let tallies = result.tallies();
    for (i, (oracle, t)) in tallies.iter().enumerate() {
        let comma = if i + 1 < tallies.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"pass\": {}, \"fail\": {}, \"skip\": {}}}{comma}",
            oracle.name(),
            t.pass,
            t.fail,
            t.skip
        );
    }
    out.push_str("  },\n");
    out.push_str("  \"failures\": [\n");
    for (i, f) in result.failures.iter().enumerate() {
        let comma = if i + 1 < result.failures.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"case\": {}, \"oracle\": \"{}\", \"detail\": \"{}\"}}{comma}",
            f.index,
            f.oracle,
            escape(&f.detail)
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"wall_seconds\": {:.6}", result.wall.as_secs_f64());
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignOptions {
        CampaignOptions {
            master_seed: 0,
            count: 12,
            threads: 1,
            minimize_failures: false,
            ..CampaignOptions::default()
        }
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let r1 = run_campaign(&small());
        let r2 = run_campaign(&CampaignOptions {
            threads: 4,
            ..small()
        });
        assert_eq!(text_census(&r1), text_census(&r2));
    }

    fn text_census(r: &CampaignResult) -> Vec<(usize, usize, usize)> {
        r.tallies()
            .into_iter()
            .map(|(_, t)| (t.pass, t.fail, t.skip))
            .collect()
    }

    #[test]
    fn class_filter_restricts_classes() {
        let r = run_campaign(&CampaignOptions {
            class: Some(TopologyClass::RlcLadder),
            count: 6,
            ..small()
        });
        for o in &r.outcomes {
            assert_eq!(o.params.class, TopologyClass::RlcLadder);
        }
    }

    #[test]
    fn reports_render() {
        let r = run_campaign(&small());
        let text = text_report(&r);
        assert!(text.contains("verify campaign: seed 0 count 12"));
        let json = json_report(&r);
        assert!(json.contains("\"oracles\""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn corpus_round_trip_replays_the_recorded_oracle() {
        // Fabricate a failure record for a healthy case: the deck must
        // parse and the recorded oracle must run (to a Pass here).
        let p = CaseParams::generate(TopologyClass::RcTree, 0, 0);
        let case = p.build();
        let m = crate::minimize::Minimized {
            params: p,
            oracle: OracleKind::Transient,
            detail: "fabricated".into(),
            steps: 0,
            reduce_tolerance: crate::oracle::DEFAULT_REDUCE_TOLERANCE,
        };
        let deck = crate::minimize::corpus_deck(&m, &case);
        let report = replay_deck(&deck).expect("replay");
        assert_eq!(report.oracle, OracleKind::Transient);
        assert!(
            matches!(report.verdict, Verdict::Pass),
            "{:?}",
            report.verdict
        );
    }
}
