//! The AWE driver: circuit in, reduced response waveform out.
//!
//! [`AweEngine`] ties the pipeline together: MNA assembly → excitation
//! decomposition and moment generation (§3.2, §4.3) → moment matching for
//! poles (§III, eq. (24)) → residues (eq. (20)/(29)) → assembled
//! [`AweApproximation`] with the §3.4 error estimate and the §3.3
//! stability/order-escalation policy.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use awe_circuit::{Circuit, NodeId};
use awe_circuit::{ReduceOptions, Reduced};
use awe_mna::{Decomposition, MnaSystem, MomentEngine, MomentWorkspace, Piece};
use awe_numeric::SharedSymbolic;
use awe_obs::Health;

use crate::error::AweError;
use crate::pade::{match_poles, PadeOptions};
use crate::residues::{match_residues, match_residues_with_slope, term_moment};
use crate::response::{AweApproximation, ResponsePiece};
use crate::terms::{ExpSum, ExpTerm};

/// Moment-matrix condition above which a delivered model's residues can
/// no longer be trusted. Mirrors the verify harness's `CONDITION_CAP`
/// (1e14, documented there from seed-0 fuzz evidence); a solve whose
/// final condition exceeds it emits a `condition_warning` health event.
/// [`AweEngine::approximate_auto`] refuses to deliver a model above it.
pub(crate) const CONDITION_WARN: f64 = 1e14;

/// Partial-Padé spurious-pole gate: a pole this many times faster than
/// the slowest stable pole of the same piece is rounding debris from a
/// near-singular Hankel solve, not a circuit mode — the exact moment
/// recursion cannot resolve time constants eight decades under the
/// dominant one in f64.
const SPURIOUS_POLE_RATIO: f64 = 1e8;

/// Moment-tail trust gate for [`AweEngine::approximate_auto`]: if the
/// delivered model's *predicted* unmatched moments (entries `2q`, `2q+1`
/// of the sequence) disagree with the actual recursion output by more
/// than this relative amount, a mode the truncation cannot represent is
/// still live (the high-Q ring case), and the §3.4 early stop must not
/// fire even when the q-vs-(q+1) estimate looks converged.
pub(crate) const TAIL_TOL: f64 = 0.1;

/// Moment-matrix condition estimates observed per reduction.
static CONDITION_HIST: awe_obs::Histogram = awe_obs::Histogram::new("engine.condition");

/// Options controlling an AWE run.
#[derive(Clone, Copy, Debug)]
pub struct AweOptions {
    /// Apply §3.5 frequency scaling (default on; the ablation bench turns
    /// it off).
    pub frequency_scaling: bool,
    /// Compute the §3.4 error estimate against the `(q+1)`-order model
    /// (default on; costs two extra moments and one extra reduction).
    pub error_estimate: bool,
    /// §3.3 stability policy: how many extra orders to escalate through
    /// when a right-half-plane pole appears (default 3; `0` accepts the
    /// requested order unconditionally).
    pub max_escalation: usize,
    /// §3.3 no-solution policy: when the moment matrix of a piece is
    /// singular at the requested order (e.g. `m₋₁ = 0`, so no `q`-pole
    /// model can match), bump that piece's order until it solves (default
    /// on). Turned off, the failure propagates as
    /// [`AweError::MomentMatrixSingular`] — useful to demonstrate the
    /// paper's low-order breakdown cases verbatim.
    pub allow_order_bump: bool,
    /// §4.3's `m₋₂` matching (default off): for ramp pieces, trade the
    /// highest moment condition for the initial *slope* `ẋ_h(0)`, which
    /// removes the wrong-signed start the paper notes on its Fig. 14 and
    /// guarantees the approximate waveform leaves `t = 0` in the correct
    /// direction. Ignored for pieces without a finite slope seed (ideal
    /// steps, initial conditions) and for repeated approximating poles.
    pub match_initial_slope: bool,
}

impl Default for AweOptions {
    fn default() -> Self {
        AweOptions {
            frequency_scaling: true,
            error_estimate: true,
            max_escalation: 3,
            allow_order_bump: true,
            match_initial_slope: false,
        }
    }
}

/// High-level AWE analyzer for one circuit.
///
/// # Examples
///
/// First-order AWE of an RC stage is the Elmore/Penfield–Rubinstein
/// single-exponential model (§IV):
///
/// ```
/// use awe::AweEngine;
/// use awe_circuit::{Circuit, Waveform, GROUND};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ckt = Circuit::new();
/// let n_in = ckt.node("in");
/// let n1 = ckt.node("n1");
/// ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 5.0))?;
/// ckt.add_resistor("R1", n_in, n1, 1e3)?;
/// ckt.add_capacitor("C1", n1, GROUND, 1e-9)?;
///
/// let engine = AweEngine::new(&ckt)?;
/// let approx = engine.approximate(n1, 1)?;
/// let tau = 1e3 * 1e-9;
/// let delay = approx.delay_50().expect("rising response");
/// assert!((delay - tau * 2.0f64.ln()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub struct AweEngine {
    system: MnaSystem,
    assembly: Duration,
    /// Symbolic LU pattern shared across solves: the first sparse factor
    /// records it, later solves (and sibling engines seeded via
    /// [`AweEngine::set_factor_pattern`]) refactor against it.
    pattern: Mutex<Option<SharedSymbolic>>,
    /// Recycled moment-recursion buffers: after the first solve the
    /// recursion runs without per-moment heap allocation.
    workspace: Mutex<MomentWorkspace>,
}

/// Wall time spent in each stage of one AWE solve, for profiling and the
/// batch subsystem's run metrics.
///
/// `mna` is the MNA assembly time of the engine that produced the solve
/// (recorded once at [`AweEngine::new`] and reported with every solve);
/// the other stages are accumulated across every reduction the solve
/// performed, including §3.3 order escalations and the §3.4 `(q+1)`
/// error-reference model.
///
/// This struct is now a compatibility shim over the `awe-obs` spans the
/// same regions emit: `factor`/`refactor` mirror the `lu.factor` /
/// `lu.refactor` / `lu.dense_factor` spans, `moments` mirrors
/// `mna.decompose`, and `pade`/`residues` mirror the spans of the same
/// names. The struct stays because the batch report machinery sums it
/// per worker; a trace recording gives the same regions per thread with
/// full timing structure.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// MNA system assembly ([`AweEngine::new`]).
    pub mna: Duration,
    /// Cold LU factorization of `G̃`, including the symbolic analysis
    /// (column ordering and elimination-pattern discovery). Zero when the
    /// solve reused a stored pattern (see `refactor`) or took the dense
    /// path.
    pub factor: Duration,
    /// Numeric refactorization against a previously analysed pattern —
    /// the factor-once, solve-many fast path. Zero on a cold factor.
    pub refactor: Duration,
    /// Excitation decomposition and moment generation (§3.2, §4.3).
    pub moments: Duration,
    /// Moment matching for poles (§III, eq. (24)).
    pub pade: Duration,
    /// Residue computation (eq. (20)/(29)).
    pub residues: Duration,
}

impl StageTimings {
    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        self.mna + self.factor + self.refactor + self.moments + self.pade + self.residues
    }
}

/// One row of an automatic order sweep: the order tried and its error
/// estimate.
#[derive(Clone, Copy, Debug)]
pub struct OrderReport {
    /// Order `q`.
    pub order: usize,
    /// §3.4 relative error estimate at this order (`None` if it could not
    /// be evaluated, e.g. unstable (q+1) model).
    pub error: Option<f64>,
    /// Whether all poles were stable.
    pub stable: bool,
}

impl AweEngine {
    /// Builds the engine (assembles the MNA system).
    ///
    /// # Errors
    ///
    /// Propagates MNA assembly failures.
    pub fn new(circuit: &Circuit) -> Result<Self, AweError> {
        let start = Instant::now();
        let system = MnaSystem::build(circuit)?;
        Ok(AweEngine {
            system,
            assembly: start.elapsed(),
            pattern: Mutex::new(None),
            workspace: Mutex::new(MomentWorkspace::new()),
        })
    }

    /// Builds the engine on an RC-chain-reduced rewrite of `circuit`
    /// (see [`awe_circuit::reduce`]), preserving `preserve` (observation
    /// nodes) under their original names. Returns the engine together
    /// with the [`Reduced`] handle — use [`Reduced::map_node`] to
    /// translate original node ids into the reduced system the engine
    /// solves, and `reduced.report` for the removal accounting and the
    /// measured error bound.
    ///
    /// # Errors
    ///
    /// Propagates MNA assembly failures on the reduced circuit.
    pub fn with_reduction(
        circuit: &Circuit,
        preserve: &[NodeId],
        opts: &ReduceOptions,
    ) -> Result<(Self, Reduced), AweError> {
        let reduced = awe_circuit::reduce(circuit, preserve, opts);
        let engine = AweEngine::new(&reduced.circuit)?;
        Ok((engine, reduced))
    }

    /// Seeds the sparse-LU pattern cache: a symbolic analysis recorded by
    /// a structurally identical system (same unknown count and `G̃`
    /// sparsity pattern) lets the first solve skip straight to numeric
    /// refactorization. A pattern that does not match is ignored — the
    /// solve falls back to a cold factor and records its own.
    pub fn set_factor_pattern(&self, pattern: Option<SharedSymbolic>) {
        *self.pattern.lock().expect("pattern lock") = pattern;
    }

    /// The symbolic LU pattern recorded by the most recent sparse-path
    /// solve (or seeded via [`AweEngine::set_factor_pattern`]); `None`
    /// until a sparse factor has run.
    pub fn factor_pattern(&self) -> Option<SharedSymbolic> {
        self.pattern.lock().expect("pattern lock").clone()
    }

    /// The underlying MNA system (for inspection and the benches).
    pub fn system(&self) -> &MnaSystem {
        &self.system
    }

    /// Wall time [`AweEngine::new`] spent assembling the MNA system.
    pub fn assembly_time(&self) -> Duration {
        self.assembly
    }

    /// Order-`q` AWE approximation of the voltage at `node`, with default
    /// options.
    ///
    /// # Errors
    ///
    /// See [`AweEngine::approximate_with`].
    pub fn approximate(&self, node: NodeId, order: usize) -> Result<AweApproximation, AweError> {
        self.approximate_with(node, order, AweOptions::default())
    }

    /// Order-`q` AWE approximation with explicit options.
    ///
    /// The §3.3 policy applies: if the requested order yields an unstable
    /// (right-half-plane) pole, the order is escalated up to
    /// `options.max_escalation` steps; if instability persists the last
    /// attempt is returned with `stable == false` so callers can inspect
    /// it (strict callers treat that as [`AweError::Unstable`]).
    ///
    /// # Errors
    ///
    /// * [`AweError::BadOrder`] for `order == 0`.
    /// * [`AweError::BadNode`] if `node` is ground or unknown.
    /// * [`AweError::Mna`] for circuits without a DC solution.
    /// * [`AweError::MomentMatrixSingular`] only if even order 1 fails.
    pub fn approximate_with(
        &self,
        node: NodeId,
        order: usize,
        options: AweOptions,
    ) -> Result<AweApproximation, AweError> {
        self.approximate_timed(node, order, options).map(|(a, _)| a)
    }

    /// [`AweEngine::approximate_with`], also returning per-stage wall
    /// times — MNA assembly, moment generation, Padé pole matching, and
    /// residue computation — for profiling and batch run metrics.
    ///
    /// # Errors
    ///
    /// Identical to [`AweEngine::approximate_with`].
    pub fn approximate_timed(
        &self,
        node: NodeId,
        order: usize,
        options: AweOptions,
    ) -> Result<(AweApproximation, StageTimings), AweError> {
        let mut solve_span = awe_obs::span("engine.solve");
        solve_span.note(order as f64, self.system.num_unknowns() as f64);
        let mut clock = StageTimings {
            mna: self.assembly,
            ..StageTimings::default()
        };
        if order == 0 {
            return Err(AweError::BadOrder { order });
        }
        let idx = self
            .system
            .unknown_of_node(node)
            .ok_or(AweError::BadNode(node))?;
        // Factor G̃, reusing a stored symbolic pattern when one matches
        // (factor-once, solve-many): the cold factor and the numeric
        // refactorization are timed as their own stages.
        let seed = self.factor_pattern();
        let factor_start = Instant::now();
        let engine = MomentEngine::with_pattern(&self.system, seed.as_ref())?;
        let factor_time = factor_start.elapsed();
        if engine.refactored() {
            clock.refactor = factor_time;
        } else {
            clock.factor = factor_time;
        }
        if let Some(sym) = engine.lu_symbolic() {
            *self.pattern.lock().expect("pattern lock") = Some(sym.clone());
        }
        // Enough moments for the highest escalated order plus the (q+1)
        // error reference. The workspace persists across solves so the
        // recursion reuses warm buffers instead of allocating per moment.
        let mut ws = std::mem::take(&mut *self.workspace.lock().expect("workspace lock"));
        let top = order + options.max_escalation + 1;
        let moments_start = Instant::now();
        let dec = match engine.decompose_with(&mut ws, 2 * top) {
            Ok(dec) => {
                clock.moments = moments_start.elapsed();
                *self.workspace.lock().expect("workspace lock") = ws;
                dec
            }
            Err(e) => {
                *self.workspace.lock().expect("workspace lock") = ws;
                return Err(e.into());
            }
        };

        let result = reduce_decomposition(&dec, idx, order, options, &mut clock);
        // Return the decomposition's vectors to the pool so the next
        // solve's recursion starts warm.
        self.workspace.lock().expect("workspace lock").recycle(dec);
        Ok((result?, clock))
    }
}

/// Reduces a finished moment decomposition to the delivered order-`order`
/// approximation at unknown `idx`, applying the engine's full delivery
/// policy: the §3.3 escalation loop, the last-resort partial-Padé rescue
/// (§5.3), the §3.4 `(q+1)` error estimate with its trust gates, and the
/// `pade_order` / `condition_warning` health events. This is the exact
/// tail of [`AweEngine::approximate_timed`] after moment generation,
/// factored out so the batch tape VM replays the identical policy over
/// lane-decomposed group members.
///
/// # Errors
///
/// * [`AweError::BadOrder`] for `order == 0`.
/// * [`AweError::MomentMatrixSingular`] only if even order 1 fails.
/// * [`AweError::Numeric`] for unrecoverable reduction failures.
pub fn reduce_decomposition(
    dec: &Decomposition,
    idx: usize,
    order: usize,
    options: AweOptions,
    clock: &mut StageTimings,
) -> Result<AweApproximation, AweError> {
    if order == 0 {
        return Err(AweError::BadOrder { order });
    }
    let baseline = dec.baseline[idx];
    let mut last: Option<AweApproximation> = None;
    for q in order..=(order + options.max_escalation) {
        let approx = reduce_at(&dec.pieces, baseline, idx, q, options, false, clock)?;
        let stable = approx.stable;
        last = Some(approx);
        if stable {
            break;
        }
    }
    let mut approx = last.expect("at least one attempt");

    // §3.3 exhausted and the model is still unstable: last resort is
    // partial Padé at the requested order — discard the RHP and
    // spurious poles and refit the surviving residues against the
    // leading moments (m₋₁/m₀ conservation kept exact, §5.3). The
    // rescued model keeps the original Hankel condition: filtering
    // poles does not make the solve that produced them any better.
    if !approx.stable {
        match reduce_at(&dec.pieces, baseline, idx, order, options, true, clock) {
            Ok(rescued) if rescued.stable => {
                awe_obs::health(Health::PadeRescued {
                    order,
                    kept: rescued.order,
                });
                approx = rescued;
            }
            _ => {
                awe_obs::health(Health::PadeRejected { order });
            }
        }
    }

    if options.error_estimate && approx.stable {
        let q1 = approx.order + 1;
        if let Ok(reference) = reduce_at(
            &dec.pieces,
            baseline,
            idx,
            q1,
            AweOptions {
                error_estimate: false,
                max_escalation: 0,
                ..options
            },
            false,
            clock,
        ) {
            // An untrustworthy (q+1) reference — unstable, or solved
            // through a moment matrix past the condition cap — would
            // make the §3.4 estimate pure noise; leave `None` so
            // callers know no estimate exists rather than handing
            // them garbage that happens to look small.
            if reference.stable && reference.condition <= CONDITION_WARN {
                approx.error_estimate = aggregate_error(&reference, &approx);
            }
        }
    }
    if awe_obs::enabled() {
        if approx.order != order {
            awe_obs::health(Health::PadeOrder {
                requested: order,
                chosen: approx.order,
            });
        }
        if approx.condition > CONDITION_WARN {
            awe_obs::health(Health::ConditionWarning {
                condition: approx.condition,
            });
        }
    }
    Ok(approx)
}

/// Builds the order-`q` approximation at unknown `idx` from decomposed
/// pieces. With `rescue` set, an unstable piece model goes through the
/// partial-Padé filter (see [`rescue_terms`]) instead of being
/// delivered as-is.
#[allow(clippy::too_many_arguments)]
fn reduce_at(
    pieces: &[Piece],
    baseline: f64,
    idx: usize,
    q: usize,
    options: AweOptions,
    rescue: bool,
    clock: &mut StageTimings,
) -> Result<AweApproximation, AweError> {
    let pade_opts = PadeOptions {
        frequency_scaling: options.frequency_scaling,
        ..PadeOptions::default()
    };
    let mut out_pieces = Vec::with_capacity(pieces.len());
    let mut condition = 0.0f64;
    let mut stable = true;
    let mut used_order = 0usize;
    let mut discarded = 0usize;
    let mut moment_tail: Option<f64> = None;

    for piece in pieces {
        let moments: Vec<f64> = piece.moments.iter().map(|m| m[idx]).collect();
        let a = piece.a[idx];
        let b = piece.b[idx];
        let scale = moments.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let transient = if scale == 0.0 {
            ExpSum::zero()
        } else {
            // Reduce, backing off if the moment matrix says the true
            // order at this node is lower than q — or *escalating* in
            // the paper's §3.3 "no solution" case (e.g. a piece whose
            // initial value m₋₁ is exactly zero cannot be matched by
            // one pole: the 1×1 moment matrix is singular, but order 2
            // solves it). A singular *residue* system (rounding-level
            // ghost roots colliding past the true order) also backs
            // the order off.
            // §4.3 slope matching: prepend m₋₂ to the sequence so the
            // Hankel window shifts one step toward the initial slope.
            let slope_seq: Option<Vec<f64>> = if options.match_initial_slope {
                piece.m_minus2.as_ref().map(|m2| {
                    let mut seq = Vec::with_capacity(moments.len() + 1);
                    seq.push(m2[idx]);
                    seq.extend_from_slice(&moments);
                    seq
                })
            } else {
                None
            };
            let max_q = moments.len() / 2;
            let mut q_eff = q.min(max_q);
            let mut visited = vec![false; max_q + 1];
            let (pade, terms) = loop {
                if visited[q_eff] {
                    return Err(AweError::MomentMatrixSingular {
                        order: q,
                        achievable: 0,
                    });
                }
                visited[q_eff] = true;
                let pade_start = Instant::now();
                let pade_span = awe_obs::span("pade");
                let poles_attempt = match slope_seq.as_deref() {
                    Some(seq) => match_poles(seq, q_eff, pade_opts),
                    None => match_poles(&moments, q_eff, pade_opts),
                };
                drop(pade_span);
                clock.pade += pade_start.elapsed();
                let attempt = poles_attempt.and_then(|p| {
                    let residues_start = Instant::now();
                    let residues_span = awe_obs::span("residues");
                    let terms = match slope_seq.as_deref() {
                        Some(seq) => match_residues_with_slope(&p.poles, seq),
                        None => match_residues(&p.poles, &moments),
                    };
                    drop(residues_span);
                    clock.residues += residues_start.elapsed();
                    terms.map(|t| (p, t))
                });
                match attempt {
                    Ok(ok) => break ok,
                    Err(AweError::MomentMatrixSingular { achievable, .. })
                        if achievable > 0 && achievable < q_eff && !visited[achievable] =>
                    {
                        awe_obs::health(Health::OrderFallback {
                            from: q_eff,
                            to: achievable,
                        });
                        q_eff = achievable;
                    }
                    Err(AweError::MomentMatrixSingular { .. })
                        if options.allow_order_bump && q_eff < max_q && !visited[q_eff + 1] =>
                    {
                        q_eff += 1;
                    }
                    Err(AweError::Numeric(_)) if q_eff > 1 && !visited[q_eff - 1] => {
                        awe_obs::health(Health::OrderFallback {
                            from: q_eff,
                            to: q_eff - 1,
                        });
                        q_eff -= 1;
                    }
                    Err(e) => return Err(e),
                }
            };
            condition = condition.max(pade.condition);
            if awe_obs::enabled() {
                awe_obs::health(Health::MomentScale {
                    gamma: pade.gamma,
                    condition: pade.condition,
                });
            }
            // Drop ghost terms: non-finite poles (exactly-deflated
            // fast modes) and residues at rounding level relative to
            // the largest — they contribute nothing but can carry
            // spurious instability flags when the requested order
            // exceeds the observable order at this node. Repeated-pole
            // coefficients multiply `t^d/d!` and carry units of
            // V/s^d, so the comparison uses the unit-consistent
            // magnitude `|k|/|p|^d` (the term's scale near
            // `t ≈ 1/|p|`).
            let magnitude =
                |t: &crate::terms::ExpTerm| t.coeff.abs() * t.pole.abs().powi(-(t.power as i32));
            let max_mag = terms.iter().map(magnitude).fold(0.0f64, f64::max);
            let kept: Vec<_> = terms
                .into_iter()
                .filter(|t| {
                    t.pole.is_finite() && t.coeff.is_finite() && magnitude(t) > 1e-8 * max_mag
                })
                .collect();
            let mut sum = ExpSum::new(kept);
            if rescue && !sum.is_stable() {
                if let Some((refit, dropped)) = rescue_terms(sum.terms(), &moments) {
                    discarded += dropped;
                    sum = refit;
                }
            }
            used_order = used_order.max(sum.terms().len());
            if !sum.is_stable() {
                stable = false;
            }
            // Moment-tail check: the model was fit to sequence entries
            // 0..2q; entries 2q and 2q+1 came out of the exact
            // recursion but were never imposed. A model that also
            // predicts them has captured every mode the output sees; a
            // large relative miss means a truncated mode is still
            // live. Recorded here, gated on in `approximate_auto`.
            for r in [2 * q_eff, 2 * q_eff + 1] {
                if r >= moments.len() {
                    continue;
                }
                let pred = sum
                    .terms()
                    .iter()
                    .map(|t| term_moment(t, r))
                    .fold(awe_numeric::Complex::ZERO, |a, b| a + b)
                    .re;
                let actual = moments[r];
                let mag = actual.abs().max(pred.abs());
                let rel = if mag > 0.0 {
                    (pred - actual).abs() / mag
                } else {
                    0.0
                };
                moment_tail = Some(moment_tail.map_or(rel, |m| m.max(rel)));
            }
            sum
        };
        out_pieces.push(ResponsePiece {
            onset: piece.at,
            a,
            b,
            transient,
        });
    }

    if awe_obs::enabled() && condition > 0.0 {
        CONDITION_HIST.record(condition);
        awe_obs::health(Health::Condition {
            stage: "pade",
            estimate: condition,
        });
    }
    Ok(AweApproximation {
        order: if used_order == 0 { q } else { used_order },
        baseline,
        pieces: out_pieces,
        error_estimate: None,
        condition,
        stable,
        discarded,
        moment_tail,
    })
}

impl AweEngine {
    /// Automatic order selection with the trust gates the §3.4 stop needs
    /// to be safe: starting from order 1, sweep upward and return the
    /// first model that is *trustworthy* — stable, moment-matrix condition
    /// within [`CONDITION_WARN`], and passing the moment-tail check — with
    /// a §3.4 error estimate at or below `target`. The old policy stopped
    /// on the raw q-vs-(q+1) estimate alone, which waves through exactly
    /// the failures the corpus decks document: a near-singular Hankel
    /// solve whose garbage residues agree with the next order's garbage,
    /// and a truncated ring mode invisible to the estimate.
    ///
    /// If no order meets `target` (or `target <= 0`, which disables the
    /// early stop entirely), the highest trustworthy order tried is
    /// returned — preferring models that needed no partial-Padé rescue
    /// over rescued ones.
    ///
    /// # Errors
    ///
    /// * [`AweError::Unstable`] if no trustworthy order exists up to
    ///   `max_order`.
    /// * Otherwise propagates the same failures as
    ///   [`AweEngine::approximate_with`].
    pub fn approximate_auto(
        &self,
        node: NodeId,
        target: f64,
        max_order: usize,
        options: AweOptions,
    ) -> Result<(AweApproximation, Vec<OrderReport>), AweError> {
        let mut trail = Vec::new();
        let mut best_clean: Option<AweApproximation> = None;
        let mut best_rescued: Option<AweApproximation> = None;
        for q in 1..=max_order.max(1) {
            let attempt = self.approximate_with(
                node,
                q,
                AweOptions {
                    max_escalation: 0,
                    ..options
                },
            );
            match attempt {
                Ok(approx) => {
                    trail.push(OrderReport {
                        order: approx.order,
                        error: approx.error_estimate,
                        stable: approx.stable,
                    });
                    if !approx.trusted() {
                        continue;
                    }
                    let met = target > 0.0 && approx.error_estimate.is_some_and(|e| e <= target);
                    if approx.tail_converged() && met {
                        return Ok((approx, trail));
                    }
                    if approx.discarded == 0 {
                        best_clean = Some(approx);
                    } else {
                        best_rescued = Some(approx);
                    }
                }
                Err(AweError::MomentMatrixSingular { .. }) => {
                    // True system order reached; stop escalating.
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        match best_clean.or(best_rescued) {
            Some(approx) => Ok((approx, trail)),
            None => Err(AweError::Unstable { order: max_order }),
        }
    }
}

/// Partial Padé (the rescue path): classify each term's pole as RHP
/// (`re ≥ 0`), spurious (faster than the slowest stable pole by
/// [`SPURIOUS_POLE_RATIO`]), or keep-able; drop the bad ones with a
/// `pole_discarded` health event each and refit the surviving residues
/// against the leading moments, which keeps `m₋₁` and `m₀` — initial
/// value and transferred charge (§5.3) — exact. Returns `None` when
/// nothing was dropped, nothing survived, or the refit itself fails or
/// stays unstable; the caller then delivers the original unstable model.
fn rescue_terms(terms: &[ExpTerm], moments: &[f64]) -> Option<(ExpSum, usize)> {
    let slowest_stable = terms
        .iter()
        .filter(|t| t.pole.re < 0.0)
        .map(|t| t.pole.abs())
        .fold(f64::INFINITY, f64::min);
    let mut keep = Vec::with_capacity(terms.len());
    let mut dropped = 0usize;
    for t in terms {
        let reason = if t.pole.re >= 0.0 {
            Some("rhp")
        } else if t.pole.abs() > SPURIOUS_POLE_RATIO * slowest_stable {
            Some("spurious")
        } else {
            None
        };
        match reason {
            Some(reason) => {
                dropped += 1;
                awe_obs::health(Health::PoleDiscarded {
                    reason,
                    re: t.pole.re,
                    im: t.pole.im,
                });
            }
            None => keep.push(t.pole),
        }
    }
    if dropped == 0 || keep.is_empty() || moments.len() < keep.len() {
        return None;
    }
    let refit = match_residues(&keep, moments).ok()?;
    let sum = ExpSum::new(refit);
    (sum.is_stable() && sum.terms().iter().all(|t| t.coeff.abs().is_finite()))
        .then_some((sum, dropped))
}

/// Aggregated §3.4 error across pieces: compares the piece transients of
/// the `(q+1)`-order reference against the `q`-order approximation,
/// summing squared distances and normalizing by the reference energy.
fn aggregate_error(reference: &AweApproximation, approx: &AweApproximation) -> Option<f64> {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (r, a) in reference.pieces.iter().zip(&approx.pieces) {
        let d = r.transient.sub(&a.transient).norm_sqr()?;
        let e = r.transient.norm_sqr()?;
        num += d.max(0.0);
        den += e.max(0.0);
    }
    if den <= 0.0 {
        return None;
    }
    // Piece count plays the role of the term count in Cauchy's bound.
    Some((num / den).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::papers::{fig4, fig9};
    use awe_circuit::{Waveform, GROUND};

    fn step5() -> Waveform {
        Waveform::step(0.0, 5.0)
    }

    #[test]
    fn first_order_fig4_is_elmore_model() {
        // §IV: first-order AWE at n4 gives pole -1/T_D with T_D = 0.7 ms
        // and residue -5 → v(t) = 5 - 5e^{-t/0.7ms} (eq. (60)).
        let p = fig4(step5());
        let engine = AweEngine::new(&p.circuit).unwrap();
        let approx = engine.approximate(p.output, 1).unwrap();
        assert!(approx.stable);
        let poles = approx.poles();
        assert_eq!(poles.len(), 1);
        assert!(
            ((poles[0].re + 1.0 / 7e-4) / (1.0 / 7e-4)).abs() < 1e-9,
            "pole {}",
            poles[0]
        );
        assert!((approx.final_value() - 5.0).abs() < 1e-9);
        assert!(approx.initial_value().abs() < 1e-9);
        // Paper's §4.4: the first-order error estimate is large (36 % in
        // the paper; same tens-of-percent regime here).
        let err = approx.error_estimate.expect("estimate computed");
        assert!(err > 0.02, "err = {err}");
    }

    #[test]
    fn second_order_fig4_collapses_error() {
        let p = fig4(step5());
        let engine = AweEngine::new(&p.circuit).unwrap();
        let e1 = engine
            .approximate(p.output, 1)
            .unwrap()
            .error_estimate
            .unwrap();
        let a2 = engine.approximate(p.output, 2).unwrap();
        let e2 = a2.error_estimate.unwrap();
        assert!(
            e2 < e1 / 5.0,
            "expected order-2 error {e2} well below order-1 {e1}"
        );
        assert_eq!(a2.poles().len(), 2);
    }

    #[test]
    fn fig9_steady_state_scaled() {
        // Grounded resistor: final value 4 V, not 5 V (§2.2/eq. (3)).
        let p = fig9(step5());
        let engine = AweEngine::new(&p.circuit).unwrap();
        let approx = engine.approximate(p.output, 2).unwrap();
        assert!((approx.final_value() - 4.0).abs() < 1e-9);
        assert!(approx.stable);
    }

    #[test]
    fn exact_order_reproduces_single_pole_exactly() {
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, step5()).unwrap();
        ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
        ckt.add_capacitor("C1", n1, GROUND, 1e-9).unwrap();
        let engine = AweEngine::new(&ckt).unwrap();
        let approx = engine.approximate(n1, 1).unwrap();
        let tau: f64 = 1e-6;
        for &t in &[0.0, 0.5e-6, 1e-6, 3e-6] {
            let exact = 5.0 * (1.0 - (-t / tau).exp());
            assert!((approx.eval(t) - exact).abs() < 1e-9, "t = {t}");
        }
        // Order above the true system order backs off gracefully.
        let a2 = engine.approximate(n1, 2).unwrap();
        assert_eq!(a2.order, 1);
    }

    #[test]
    fn auto_order_meets_target() {
        let p = fig4(step5());
        let engine = AweEngine::new(&p.circuit).unwrap();
        let (approx, trail) = engine
            .approximate_auto(p.output, 0.01, 4, AweOptions::default())
            .unwrap();
        assert!(approx.error_estimate.unwrap() <= 0.01);
        assert!(!trail.is_empty());
        assert!(trail[0].order == 1);
    }

    #[test]
    fn bad_inputs() {
        let p = fig4(step5());
        let engine = AweEngine::new(&p.circuit).unwrap();
        assert!(matches!(
            engine.approximate(p.output, 0),
            Err(AweError::BadOrder { .. })
        ));
        assert!(matches!(
            engine.approximate(GROUND, 1),
            Err(AweError::BadNode(_))
        ));
    }

    #[test]
    fn slope_matching_removes_ramp_glitch() {
        // §4.3: the first-order ramp response starts with a (nonphysical)
        // negative slope; matching m_-2 instead of the highest moment
        // pins the initial derivative to the exact value (zero, for a
        // relaxed RC tree).
        let p = fig4(Waveform::rising_step(0.0, 5.0, 1e-3));
        let engine = AweEngine::new(&p.circuit).unwrap();
        let plain = engine
            .approximate_with(
                p.output,
                1,
                AweOptions {
                    error_estimate: false,
                    ..Default::default()
                },
            )
            .unwrap();
        let dt = 1e-7;
        let slope_plain = (plain.eval(dt) - plain.eval(0.0)) / dt;
        assert!(
            slope_plain < 0.0,
            "expected the documented glitch: {slope_plain}"
        );

        let matched = engine
            .approximate_with(
                p.output,
                1,
                AweOptions {
                    error_estimate: false,
                    match_initial_slope: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let slope_matched = (matched.eval(dt) - matched.eval(0.0)) / dt;
        assert!(
            slope_matched.abs() < slope_plain.abs() / 100.0,
            "slope should be pinned near zero: {slope_matched} vs {slope_plain}"
        );
        assert!(matched.stable);
        // The matched model still ends at the right place.
        assert!((matched.eval(20e-3) - 5.0).abs() < 0.2);
    }

    #[test]
    fn slope_matching_is_noop_for_steps() {
        // Ideal steps carry no finite slope seed; the option must not
        // change the result.
        let p = fig4(Waveform::step(0.0, 5.0));
        let engine = AweEngine::new(&p.circuit).unwrap();
        let a = engine.approximate(p.output, 2).unwrap();
        let b = engine
            .approximate_with(
                p.output,
                2,
                AweOptions {
                    match_initial_slope: true,
                    ..Default::default()
                },
            )
            .unwrap();
        for i in 0..10 {
            let t = i as f64 * 5e-4;
            assert!((a.eval(t) - b.eval(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn ramp_superposition_matches_paper_shape() {
        // Fig. 14: 5 V input with 1 ms rise on the Fig. 4 tree; the
        // first-order response must track the ramp lag and settle at 5 V.
        let p = fig4(Waveform::rising_step(0.0, 5.0, 1e-3));
        let engine = AweEngine::new(&p.circuit).unwrap();
        let approx = engine.approximate(p.output, 1).unwrap();
        assert!((approx.final_value() - 5.0).abs() < 1e-6);
        // During the ramp the output lags the input.
        let v_mid = approx.eval(0.5e-3);
        assert!(v_mid > 0.1 && v_mid < 2.5, "v_mid = {v_mid}");
        // Delay ≈ input half-rise (0.5 ms) + Elmore-ish lag.
        let d = approx.delay_50().unwrap();
        assert!((0.5e-3..2.0e-3).contains(&d), "d = {d}");
    }

    use awe_circuit::Circuit;
}
