//! Prints the regenerated report for the paper experiment `scaling_tree_walk`.
//! See DESIGN.md §2 for the experiment index.

fn main() {
    println!("{}", awe_bench::experiments::scaling_tree_walk());
}
