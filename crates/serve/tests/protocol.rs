//! Protocol robustness: the daemon answers every line — well-formed or
//! garbage — with exactly one JSON response, never panics, and keeps
//! serving the session afterwards. Typed errors carry the machine code,
//! the echoed request id, and (for deck failures) the offending net and
//! line.

use awe_serve::json::parse;
use awe_serve::{handle_line, Json, ServeOptions, ServeState};

fn state() -> ServeState {
    ServeState::new(ServeOptions::default())
}

/// Sends one line and parses the response with the daemon's own JSON
/// parser — a response that fails to parse fails the test.
fn send(st: &ServeState, line: &str) -> Json {
    let reply = handle_line(st, line);
    assert!(!reply.contains('\n'), "one response, one line: {reply:?}");
    parse(&reply).unwrap_or_else(|e| panic!("daemon emitted invalid JSON ({e}): {reply}"))
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool).unwrap_or(false)
}

fn code(v: &Json) -> &str {
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or("<none>")
}

fn num(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("field {key} in {v}"))
}

fn req(pairs: Vec<(&str, Json)>) -> String {
    Json::obj(pairs).to_string()
}

#[test]
fn garbage_mid_session_never_kills_the_daemon() {
    let st = state();
    let loaded = send(
        &st,
        &req(vec![
            ("id", Json::from(1u64)),
            ("verb", Json::str("load_design")),
            ("session", Json::str("s")),
            (
                "chains",
                Json::obj(vec![
                    ("nets", Json::from(3u64)),
                    ("stages", Json::from(12u64)),
                    ("seed", Json::from(7u64)),
                ]),
            ),
        ]),
    );
    assert!(ok(&loaded), "{loaded}");
    assert_eq!(num(&loaded, "nets"), 3);

    // A stream of hostile lines mid-session: every one of them gets a
    // typed error response and nothing else changes.
    let garbage: Vec<String> = vec![
        "".into(), // serve_lines skips blanks; handle_line must still answer
        "not json at all".into(),
        "{".into(),
        "{\"id\":9".into(),
        "[1,2,3]".into(),
        "\"just a string\"".into(),
        "42".into(),
        "null".into(),
        "{\"id\":10}".into(),
        "{\"id\":11,\"verb\":42}".into(),
        "{\"id\":12,\"verb\":\"frobnicate\"}".into(),
        "{\"id\":13,\"verb\":\"analyze\"}".into(),
        "{\"id\":14,\"verb\":\"analyze\",\"session\":17}".into(),
        "{\"id\":15,\"verb\":\"analyze\",\"session\":\"ghost\"}".into(),
        "{\"id\":16,\"verb\":\"eco\",\"session\":\"s\",\"ops\":\"nope\"}".into(),
        "{\"id\":17,\"verb\":\"eco\",\"session\":\"s\",\"ops\":[{\"op\":\"warp\",\"net\":\"n\"}]}".into(),
        "{\"id\":18,\"verb\":\"eco\",\"session\":\"s\",\"ops\":[{\"op\":\"remove\",\"net\":\"net0001\",\"element\":\"GONE\"}]}".into(),
        "{\"verb\":\"load_design\",\"session\":\"s\",\"deck\":\"R1\"}".into(), // duplicate name
        "\u{1}\u{2}\u{3}".into(),
        "{\"id\":\"x\",\"verb\":\"ping\"} trailing".into(),
        "[".repeat(5000),
        format!("{{\"id\":19,\"verb\":\"ping\",\"pad\":\"{}\"}}", "a".repeat(100_000)),
    ];
    for line in &garbage {
        let r = send(&st, line);
        // The oversized-but-valid ping is fine; everything else errors.
        if line.contains("\"pad\"") {
            assert!(ok(&r), "big but valid: {line:.60}");
            continue;
        }
        assert!(!ok(&r), "must reject: {line:.60}");
        assert_ne!(code(&r), "<none>", "typed code for: {line:.60}");
    }

    // The session survived it all: analyze is pure cache, metrics agree.
    let analyzed = send(
        &st,
        &req(vec![
            ("id", Json::from(99u64)),
            ("verb", Json::str("analyze")),
            ("session", Json::str("s")),
        ]),
    );
    assert!(ok(&analyzed), "{analyzed}");
    assert_eq!(num(&analyzed, "solves"), 0);
    assert_eq!(num(&analyzed, "cache_hits"), 3);
    let metrics = send(&st, "{\"verb\":\"metrics\"}");
    assert!(ok(&metrics), "{metrics}");
    assert_eq!(num(&metrics, "sessions"), 1);
    assert!(num(&metrics, "errors") >= 20);
}

#[test]
fn ids_echo_verbatim_for_success_and_error() {
    let st = state();
    for (id_json, expect) in [
        ("7", Json::Num(7.0)),
        ("\"req-a\"", Json::str("req-a")),
        ("3.25", Json::Num(3.25)),
        ("null", Json::Null),
        ("{\"batch\":[1,2]}", parse("{\"batch\":[1,2]}").unwrap()),
    ] {
        let r = send(&st, &format!("{{\"id\":{id_json},\"verb\":\"ping\"}}"));
        assert!(ok(&r));
        assert_eq!(r.get("id"), Some(&expect), "echo {id_json}");
        let r = send(&st, &format!("{{\"id\":{id_json},\"verb\":\"nope\"}}"));
        assert!(!ok(&r));
        assert_eq!(r.get("id"), Some(&expect), "echo {id_json} on error too");
    }
}

#[test]
fn error_codes_are_specific() {
    let st = state();
    let load = req(vec![
        ("verb", Json::str("load_design")),
        ("session", Json::str("dup")),
        (
            "chains",
            Json::obj(vec![
                ("nets", Json::from(1u64)),
                ("stages", Json::from(4u64)),
            ]),
        ),
    ]);
    assert!(ok(&send(&st, &load)));
    assert_eq!(code(&send(&st, &load)), "duplicate_session");
    assert_eq!(
        code(&send(&st, "{\"verb\":\"close\",\"session\":\"ghost\"}")),
        "no_such_session"
    );
    assert_eq!(code(&send(&st, "}{")), "bad_json");
    assert_eq!(code(&send(&st, "{\"verb\":\"warp\"}")), "unknown_verb");
    assert_eq!(code(&send(&st, "{\"verb\":\"report\"}")), "bad_request");
    let eco = send(
        &st,
        "{\"verb\":\"eco\",\"session\":\"dup\",\"ops\":[{\"op\":\"resize\",\"net\":\"net0001\",\"element\":\"R1\",\"value\":-4}]}",
    );
    assert_eq!(code(&eco), "eco_error");
    assert_eq!(
        eco.get("error")
            .and_then(|e| e.get("net"))
            .and_then(Json::as_str),
        Some("net0001")
    );

    // close works, and the session is really gone.
    assert!(ok(&send(&st, "{\"verb\":\"close\",\"session\":\"dup\"}")));
    assert_eq!(
        code(&send(&st, "{\"verb\":\"analyze\",\"session\":\"dup\"}")),
        "no_such_session"
    );
}

#[test]
fn deck_errors_name_the_net_and_line() {
    let st = state();
    // Line 8 (1-based) holds the malformed card, inside `* NET bad`.
    let deck = "* NET good\n\
                V1 in 0 STEP 0 5\n\
                R1 in out 1k\n\
                C1 out 0 1p\n\
                .end\n\
                * NET bad\n\
                V1 in 0 STEP 0 5\n\
                R1 in out notanumber\n\
                C1 out 0 1p\n";
    let r = send(
        &st,
        &req(vec![
            ("id", Json::from(4u64)),
            ("verb", Json::str("load_design")),
            ("session", Json::str("d")),
            ("deck", Json::str(deck)),
        ]),
    );
    assert!(!ok(&r), "{r}");
    let err = r.get("error").expect("error object");
    assert_eq!(err.get("code").and_then(Json::as_str), Some("deck_error"));
    assert_eq!(err.get("net").and_then(Json::as_str), Some("bad"));
    assert_eq!(err.get("line").and_then(Json::as_u64), Some(8));
    let message = err.get("message").and_then(Json::as_str).unwrap_or("");
    assert!(message.contains("line 8"), "{message}");
    // The failed load left nothing behind: the name is free again.
    assert_eq!(st.session_count(), 0);

    // Headerless decks attribute by 1-based position.
    let r = send(
        &st,
        &req(vec![
            ("verb", Json::str("load_design")),
            ("session", Json::str("d2")),
            (
                "deck",
                Json::str("V1 in 0 STEP 0 5\nR1 in out 1k\nC1 out 0 1p\n.end\nV1 in 0 STEP 0 5\nRX in out\n"),
            ),
        ]),
    );
    let err = r.get("error").expect("error object");
    assert_eq!(err.get("net").and_then(Json::as_str), Some("net2"));
    assert_eq!(err.get("line").and_then(Json::as_u64), Some(6));
}
