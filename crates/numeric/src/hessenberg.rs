//! Householder reduction to upper Hessenberg form.
//!
//! Eigenvalue extraction (used to obtain the paper's "actual poles"
//! columns in Tables I and II) proceeds in two stages: reduce the state
//! matrix to upper Hessenberg form here, then run the shifted QR iteration
//! in [`crate::eigen`]. Reduction costs `O(n³)` once and makes every QR
//! sweep `O(n²)`.

use crate::error::NumericError;
use crate::matrix::Matrix;

/// Reduces a square matrix to upper Hessenberg form `H = Qᵀ·A·Q` using
/// Householder reflections. Only `H` is returned; the orthogonal factor is
/// not accumulated because AWE needs eigenvalues, not eigenvectors.
///
/// # Errors
///
/// Returns [`NumericError::NotSquare`] if `a` is not square.
///
/// # Examples
///
/// ```
/// use awe_numeric::{hessenberg, Matrix};
/// # fn main() -> Result<(), awe_numeric::NumericError> {
/// let a = Matrix::from_rows(&[
///     &[4.0, 1.0, 2.0],
///     &[1.0, 3.0, 0.0],
///     &[2.0, 0.0, 1.0],
/// ]);
/// let h = hessenberg(&a)?;
/// assert_eq!(h[(2, 0)], 0.0); // below the first subdiagonal
/// # Ok(())
/// # }
/// ```
pub fn hessenberg(a: &Matrix) -> Result<Matrix, NumericError> {
    if !a.is_square() {
        return Err(NumericError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut h = a.clone();
    if n < 3 {
        return Ok(h);
    }

    let mut v = vec![0.0; n];
    for k in 0..n - 2 {
        // Build the Householder vector annihilating H[k+2.., k].
        let mut alpha = 0.0f64;
        for i in k + 1..n {
            alpha += h[(i, k)] * h[(i, k)];
        }
        alpha = alpha.sqrt();
        if alpha == 0.0 {
            continue;
        }
        if h[(k + 1, k)] > 0.0 {
            alpha = -alpha;
        }
        let v0 = h[(k + 1, k)] - alpha;
        v[k + 1] = v0;
        for i in k + 2..n {
            v[i] = h[(i, k)];
        }
        let vnorm_sqr = alpha * alpha - alpha * h[(k + 1, k)];
        if vnorm_sqr.abs() < f64::MIN_POSITIVE {
            continue;
        }
        let beta = 1.0 / vnorm_sqr;

        // H ← (I - β v vᵀ) H : for each column j, H[i,j] -= β v_i (vᵀ H[:,j]).
        for j in k..n {
            let mut s = 0.0;
            for i in k + 1..n {
                s += v[i] * h[(i, j)];
            }
            let s = s * beta;
            for i in k + 1..n {
                h[(i, j)] -= s * v[i];
            }
        }
        // H ← H (I - β v vᵀ) : for each row i, H[i,j] -= β (H[i,:] v) v_j.
        for i in 0..n {
            let mut s = 0.0;
            for j in k + 1..n {
                s += h[(i, j)] * v[j];
            }
            let s = s * beta;
            for j in k + 1..n {
                h[(i, j)] -= s * v[j];
            }
        }
        // Zero out the annihilated entries explicitly to keep H clean.
        h[(k + 1, k)] = alpha;
        for i in k + 2..n {
            h[(i, k)] = 0.0;
        }
    }
    Ok(h)
}

/// `true` if `m` is upper Hessenberg within `tol` (all entries below the
/// first subdiagonal have magnitude ≤ `tol`).
pub fn is_hessenberg(m: &Matrix, tol: f64) -> bool {
    if !m.is_square() {
        return false;
    }
    let n = m.rows();
    for i in 2..n {
        for j in 0..i - 1 {
            if m[(i, j)].abs() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn char_invariants(a: &Matrix, h: &Matrix, tol: f64) {
        // Similarity preserves trace and Frobenius norm (orthogonal Q).
        assert!((a.trace().unwrap() - h.trace().unwrap()).abs() < tol);
        assert!((a.norm_frobenius() - h.norm_frobenius()).abs() < tol);
    }

    #[test]
    fn small_matrices_pass_through() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let h = hessenberg(&a).unwrap();
        assert_eq!(h, a);
        let one = Matrix::from_rows(&[&[7.0]]);
        assert_eq!(hessenberg(&one).unwrap(), one);
    }

    #[test]
    fn reduces_to_hessenberg_form() {
        let a = Matrix::from_fn(6, 6, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let h = hessenberg(&a).unwrap();
        assert!(is_hessenberg(&h, 1e-12));
        char_invariants(&a, &h, 1e-9);
    }

    #[test]
    fn symmetric_input_gives_tridiagonal() {
        let mut a = Matrix::from_fn(5, 5, |i, j| ((i + 1) * (j + 1)) as f64);
        // Symmetrize.
        let at = a.transpose();
        a = &a + &at;
        let h = hessenberg(&a).unwrap();
        assert!(is_hessenberg(&h, 1e-10));
        // For symmetric input the result is tridiagonal: upper triangle
        // beyond the first superdiagonal is ~0 as well.
        for i in 0..5 {
            for j in i + 2..5 {
                assert!(h[(i, j)].abs() < 1e-9, "h[{i},{j}]={}", h[(i, j)]);
            }
        }
        char_invariants(&a, &h, 1e-9);
    }

    #[test]
    fn already_hessenberg_is_stable() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[0.0, 7.0, 8.0]]);
        let h = hessenberg(&a).unwrap();
        assert!(is_hessenberg(&h, 1e-14));
        char_invariants(&a, &h, 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        assert!(hessenberg(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn is_hessenberg_checks() {
        assert!(is_hessenberg(&Matrix::identity(4), 0.0));
        let mut m = Matrix::identity(4);
        m[(3, 0)] = 0.5;
        assert!(!is_hessenberg(&m, 1e-12));
        assert!(is_hessenberg(&m, 1.0));
        assert!(!is_hessenberg(&Matrix::zeros(2, 3), 1.0));
    }
}
