//! Structural classification of circuits.
//!
//! The RC-tree methods of the paper's §II only apply to a restricted
//! circuit class: *"RC circuits with capacitors from all nodes to ground,
//! no floating capacitors, no resistor loops, and no resistors to ground"*.
//! AWE handles the general case, but the fast `O(n)` tree-walk moment
//! computation (§IV) and the Elmore baseline need to know which regime a
//! circuit falls in. [`analyze`] produces that classification.

use std::collections::HashSet;

use crate::element::{Element, NodeId, GROUND};
use crate::netlist::Circuit;

/// Structural facts about a circuit, produced by [`analyze`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TopologyReport {
    /// Circuit contains at least one inductor.
    pub has_inductors: bool,
    /// Circuit contains a capacitor with neither terminal grounded.
    pub has_floating_capacitors: bool,
    /// Circuit contains a resistor with a grounded terminal (excluding any
    /// resistor in series behind a voltage source — the driver resistance
    /// of the stage model, which RC-tree methods allow).
    pub has_grounded_resistors: bool,
    /// The resistors (together with voltage sources) form at least one
    /// loop.
    pub has_resistor_loops: bool,
    /// Circuit contains controlled sources.
    pub has_controlled_sources: bool,
    /// Circuit contains current sources.
    pub has_current_sources: bool,
    /// Every non-ground node reachable through resistors has at least one
    /// grounded capacitor.
    pub all_nodes_have_grounded_caps: bool,
    /// Any capacitor or inductor carries a nonequilibrium initial
    /// condition (paper §5.2).
    pub has_initial_conditions: bool,
}

impl TopologyReport {
    /// `true` when the circuit is an RC tree in the strict sense of the
    /// paper's §II (Elmore/Penfield–Rubinstein methods and the `O(n)` tree
    /// walk apply directly).
    pub fn is_rc_tree(&self) -> bool {
        !self.has_inductors
            && !self.has_floating_capacitors
            && !self.has_grounded_resistors
            && !self.has_resistor_loops
            && !self.has_controlled_sources
            && !self.has_current_sources
    }

    /// `true` when the circuit is an RC mesh (resistor loops allowed, per
    /// Lin & Mead's extension, §2.3) but still free of inductors and
    /// floating capacitors.
    pub fn is_rc_mesh(&self) -> bool {
        !self.has_inductors && !self.has_floating_capacitors && !self.has_controlled_sources
    }

    /// `true` when the steady state is *explicit* (obtainable without an
    /// LU factorization): per §4.2, this holds when replacing capacitors
    /// by current sources and inductors by voltage sources leaves a
    /// circuit whose links are exclusively current sources — in our terms,
    /// no resistor loops and no grounded resistors.
    pub fn has_explicit_steady_state(&self) -> bool {
        !self.has_grounded_resistors && !self.has_resistor_loops && !self.has_controlled_sources
    }
}

/// Classifies the structure of a circuit. See [`TopologyReport`].
pub fn analyze(circuit: &Circuit) -> TopologyReport {
    let mut report = TopologyReport {
        all_nodes_have_grounded_caps: true,
        ..TopologyReport::default()
    };

    // Nodes tied to ground through a voltage source act as "source rails":
    // a resistor to such a node is the stage's driver resistance, not a
    // grounded resistor in the §2.2 sense.
    let mut rail_nodes: HashSet<NodeId> = HashSet::new();
    rail_nodes.insert(GROUND);

    for e in circuit.elements() {
        if let Element::VoltageSource { pos, neg, .. } = *e {
            if neg == GROUND {
                rail_nodes.insert(pos);
            }
            if pos == GROUND {
                rail_nodes.insert(neg);
            }
        }
    }

    // Union-find over nodes for resistor-loop detection. Voltage-source
    // edges participate too: a resistor loop through an ideal source is
    // still a loop for the tree-walk's purposes.
    let mut uf = UnionFind::new(circuit.num_nodes());
    let mut grounded_cap_nodes: HashSet<NodeId> = HashSet::new();
    let mut resistor_nodes: HashSet<NodeId> = HashSet::new();

    for e in circuit.elements() {
        match e {
            Element::Resistor { a, b, .. } => {
                resistor_nodes.insert(*a);
                resistor_nodes.insert(*b);
                if (*a == GROUND || *b == GROUND)
                    || (rail_nodes.contains(a) && rail_nodes.contains(b))
                {
                    // R direct to ground, or shorting two rails.
                    if *a == GROUND || *b == GROUND {
                        report.has_grounded_resistors = true;
                    }
                }
                if !uf.union(*a, *b) {
                    report.has_resistor_loops = true;
                }
            }
            Element::VoltageSource { pos, neg, .. } => {
                if !uf.union(*pos, *neg) {
                    report.has_resistor_loops = true;
                }
            }
            Element::Capacitor {
                a,
                b,
                initial_voltage,
                ..
            } => {
                if *a != GROUND && *b != GROUND {
                    report.has_floating_capacitors = true;
                } else {
                    let node = if *a == GROUND { *b } else { *a };
                    grounded_cap_nodes.insert(node);
                }
                if initial_voltage.is_some() {
                    report.has_initial_conditions = true;
                }
            }
            Element::Inductor {
                initial_current, ..
            } => {
                report.has_inductors = true;
                if initial_current.is_some() {
                    report.has_initial_conditions = true;
                }
            }
            Element::CurrentSource { .. } => report.has_current_sources = true,
            Element::Vccs { .. }
            | Element::Vcvs { .. }
            | Element::Cccs { .. }
            | Element::Ccvs { .. } => report.has_controlled_sources = true,
        }
    }

    // Every resistor-connected node (other than ground and rails) should
    // carry a grounded capacitor for the strict RC-tree definition.
    for &n in &resistor_nodes {
        if n == GROUND || rail_nodes.contains(&n) {
            continue;
        }
        if !grounded_cap_nodes.contains(&n) {
            report.all_nodes_have_grounded_caps = false;
            break;
        }
    }

    report
}

/// Minimal union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns `false` if they were
    /// already connected (i.e. this edge closes a loop).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;
    use crate::waveform::Waveform;

    fn rc_tree() -> Circuit {
        // V → R1 → n1(C1) → R2 → n2(C2), branch n1 → R3 → n3(C3).
        let mut c = Circuit::new();
        let n_in = c.node("in");
        let (n1, n2, n3) = (c.node("1"), c.node("2"), c.node("3"));
        c.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 5.0))
            .unwrap();
        c.add_resistor("R1", n_in, n1, 1.0).unwrap();
        c.add_resistor("R2", n1, n2, 1.0).unwrap();
        c.add_resistor("R3", n1, n3, 1.0).unwrap();
        c.add_capacitor("C1", n1, GROUND, 1e-6).unwrap();
        c.add_capacitor("C2", n2, GROUND, 1e-6).unwrap();
        c.add_capacitor("C3", n3, GROUND, 1e-6).unwrap();
        c
    }

    #[test]
    fn classifies_rc_tree() {
        let r = analyze(&rc_tree());
        assert!(r.is_rc_tree());
        assert!(r.is_rc_mesh());
        assert!(r.has_explicit_steady_state());
        assert!(r.all_nodes_have_grounded_caps);
        assert!(!r.has_initial_conditions);
    }

    #[test]
    fn detects_grounded_resistor() {
        let mut c = rc_tree();
        let n3 = c.find_node("3").unwrap();
        c.add_resistor("R5", n3, GROUND, 4.0).unwrap();
        let r = analyze(&c);
        assert!(r.has_grounded_resistors);
        assert!(!r.is_rc_tree());
        assert!(!r.has_explicit_steady_state());
    }

    #[test]
    fn detects_resistor_loop() {
        let mut c = rc_tree();
        let (n2, n3) = (c.find_node("2").unwrap(), c.find_node("3").unwrap());
        c.add_resistor("R6", n2, n3, 2.0).unwrap();
        let r = analyze(&c);
        assert!(r.has_resistor_loops);
        assert!(!r.is_rc_tree());
        assert!(r.is_rc_mesh()); // mesh allows loops
    }

    #[test]
    fn loop_through_source_counts() {
        // R from the driven rail back to ground closes a loop via V1.
        let mut c = rc_tree();
        let n_in = c.find_node("in").unwrap();
        c.add_resistor("Rg", n_in, GROUND, 1.0).unwrap();
        let r = analyze(&c);
        assert!(r.has_resistor_loops);
        assert!(r.has_grounded_resistors);
    }

    #[test]
    fn detects_floating_cap() {
        let mut c = rc_tree();
        let (n2, n3) = (c.find_node("2").unwrap(), c.find_node("3").unwrap());
        c.add_capacitor("C11", n2, n3, 1e-7).unwrap();
        let r = analyze(&c);
        assert!(r.has_floating_capacitors);
        assert!(!r.is_rc_tree());
        assert!(!r.is_rc_mesh());
    }

    #[test]
    fn detects_inductors_and_ic() {
        let mut c = rc_tree();
        let n2 = c.find_node("2").unwrap();
        let n4 = c.node("4");
        c.add_inductor_ic("L1", n2, n4, 1e-9, Some(0.1)).unwrap();
        let r = analyze(&c);
        assert!(r.has_inductors);
        assert!(r.has_initial_conditions);
        assert!(!r.is_rc_tree());
    }

    #[test]
    fn detects_cap_initial_condition() {
        let mut c = rc_tree();
        let n4 = c.node("4");
        let n2 = c.find_node("2").unwrap();
        c.add_resistor("R7", n2, n4, 1.0).unwrap();
        c.add_capacitor_ic("C4", n4, GROUND, 1e-6, Some(5.0))
            .unwrap();
        let r = analyze(&c);
        assert!(r.has_initial_conditions);
        assert!(r.is_rc_tree()); // ICs don't break tree structure
    }

    #[test]
    fn detects_controlled_and_current_sources() {
        let mut c = rc_tree();
        let n1 = c.find_node("1").unwrap();
        c.add_isource("I1", GROUND, n1, Waveform::dc(1e-3)).unwrap();
        let r = analyze(&c);
        assert!(r.has_current_sources);
        assert!(!r.is_rc_tree());

        let mut c2 = rc_tree();
        let n1 = c2.find_node("1").unwrap();
        let n2 = c2.find_node("2").unwrap();
        c2.add_vccs("G1", n2, GROUND, n1, GROUND, 1e-3).unwrap();
        let r2 = analyze(&c2);
        assert!(r2.has_controlled_sources);
        assert!(!r2.is_rc_mesh());
    }

    #[test]
    fn missing_grounded_cap_flagged() {
        let mut c = Circuit::new();
        let n_in = c.node("in");
        let n1 = c.node("1");
        let n2 = c.node("2");
        c.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        c.add_resistor("R1", n_in, n1, 1.0).unwrap();
        c.add_resistor("R2", n1, n2, 1.0).unwrap();
        c.add_capacitor("C2", n2, GROUND, 1e-6).unwrap();
        // n1 has no grounded cap.
        let r = analyze(&c);
        assert!(!r.all_nodes_have_grounded_caps);
        // Still counts as an RC tree structurally.
        assert!(r.is_rc_tree());
    }
}
