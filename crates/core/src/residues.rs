//! Residue computation (paper eqs. (20) and (26)–(29)).
//!
//! Once the approximating poles are known, the residues follow from the
//! first `q` matching conditions: the Vandermonde system of eq. (20) in
//! the reciprocal poles, or — when poles repeat and the Vandermonde matrix
//! is singular *by definition* — the confluent system of eqs. (26)–(29)
//! whose extra columns correspond to `t^d/d!·e^{pt}` terms.
//!
//! The systems are built in a normalized variable (nodes divided by their
//! largest magnitude) so GHz-scale poles don't underflow the powers.

use awe_numeric::{CMatrix, Complex};

use crate::error::AweError;
use crate::terms::ExpTerm;

/// Relative distance below which two poles are treated as one repeated
/// pole.
const REPEAT_TOL: f64 = 1e-6;

/// Solves for the exponential-sum terms matching the first `q` entries of
/// the moment sequence (`moments[0] = m_{-1}`, …) given the `q`
/// approximating poles (repeats allowed).
///
/// The conditions imposed are exactly the paper's eq. (16):
/// the term sum matches `m_{-1} = x_h(0)` and the Maclaurin moments
/// `m_0 … m_{q-2}`.
///
/// # Errors
///
/// * [`AweError::BadOrder`] if `poles.is_empty()` or fewer than
///   `poles.len()` moments are supplied.
/// * [`AweError::Numeric`] if the confluent system is singular (should not
///   happen for distinct grouped poles).
///
/// # Examples
///
/// ```
/// use awe::residues::match_residues;
/// use awe_numeric::Complex;
///
/// # fn main() -> Result<(), awe::AweError> {
/// // Single pole p = -2 with residue k = 3: m_{-1} = 3, m_0 = 3/(-2).
/// let terms = match_residues(&[Complex::real(-2.0)], &[3.0, -1.5])?;
/// assert_eq!(terms.len(), 1);
/// assert!((terms[0].coeff.re - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn match_residues(poles: &[Complex], moments: &[f64]) -> Result<Vec<ExpTerm>, AweError> {
    let q = poles.len();
    if q == 0 || moments.len() < q {
        return Err(AweError::BadOrder { order: q });
    }

    // Group (nearly) repeated poles.
    let groups = group_poles(poles);

    // Reciprocal nodes, normalized by the largest magnitude.
    let nodes: Vec<Complex> = groups.iter().map(|g| g.pole.recip()).collect();
    let s_hat = nodes
        .iter()
        .map(|x| x.abs())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let y: Vec<Complex> = nodes.iter().map(|x| *x / s_hat).collect();

    // Build the (confluent) system: row r matches moment entry r; the
    // column for derivative order d of group g has entries
    //   r == 0: 1 if d == 0 else 0        (initial-value row)
    //   r >= 1: (-1)^d·C(r-1+d, d)·y^{r+d}
    // with rhs m-entry r divided by ŝ^r. Solved coefficients are ŝ^d·c_d.
    let mut a = CMatrix::zeros(q, q);
    let mut col = 0usize;
    for (g, yg) in groups.iter().zip(&y) {
        for d in 0..g.multiplicity {
            a[(0, col)] = if d == 0 { Complex::ONE } else { Complex::ZERO };
            let sign = if d % 2 == 0 { 1.0 } else { -1.0 };
            for r in 1..q {
                a[(r, col)] =
                    Complex::real(sign * binomial(r - 1 + d, d)) * yg.powi((r + d) as i32);
            }
            col += 1;
        }
    }
    let rhs: Vec<Complex> = (0..q)
        .map(|r| Complex::real(moments[r] / s_hat.powi(r as i32)))
        .collect();
    let solved = a.solve_equilibrated(&rhs)?;

    // Unscale and expand into terms.
    let mut terms = Vec::with_capacity(q);
    let mut idx = 0usize;
    for g in &groups {
        for d in 0..g.multiplicity {
            let coeff = solved[idx] / s_hat.powi(d as i32);
            terms.push(ExpTerm {
                pole: g.pole,
                coeff,
                power: d,
            });
            idx += 1;
        }
    }
    symmetrize_term_conjugates(&mut terms);
    Ok(terms)
}

/// Solves for simple-pole residues matching the *slope-extended* sequence
/// of the paper's §4.3: row 0 matches `m_{-2} = ẋ_h(0) = Σ k·p`, row 1
/// matches `m_{-1} = Σ k`, and rows `2..q-1` match `m_0 …` — i.e. the
/// Vandermonde rows run over exponents `-1, 0, 1, …` of the reciprocal
/// poles. `seq[0]` must be `m_{-2}`, `seq[1] = m_{-1}`, etc.
///
/// Repeated poles are not supported in slope-matching mode (the paper
/// introduces `m_{-2}` for simple ramp responses); a repeated group falls
/// back to an error so the caller can retry without slope matching.
///
/// # Errors
///
/// * [`AweError::BadOrder`] on an empty pole set or short sequence.
/// * [`AweError::Numeric`] for singular systems (includes the
///   repeated-pole case).
pub fn match_residues_with_slope(poles: &[Complex], seq: &[f64]) -> Result<Vec<ExpTerm>, AweError> {
    let q = poles.len();
    if q == 0 || seq.len() < q {
        return Err(AweError::BadOrder { order: q });
    }
    // Normalized reciprocal nodes as in `match_residues`.
    let nodes: Vec<Complex> = poles.iter().map(|p| p.recip()).collect();
    let s_hat = nodes
        .iter()
        .map(|x| x.abs())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let y: Vec<Complex> = nodes.iter().map(|x| *x / s_hat).collect();

    // Row r matches seq[r] with exponent r-1: Σ k·x^{r-1} = seq[r]
    // → Σ k·y^{r-1}·ŝ^{r-1} = seq[r] → Σ k·y^{r-1} = seq[r]/ŝ^{r-1}.
    let mut a = CMatrix::zeros(q, q);
    for (col, yl) in y.iter().enumerate() {
        for r in 0..q {
            a[(r, col)] = yl.powi(r as i32 - 1);
        }
    }
    let rhs: Vec<Complex> = (0..q)
        .map(|r| Complex::real(seq[r] / s_hat.powi(r as i32 - 1)))
        .collect();
    let solved = a.solve_equilibrated(&rhs)?;
    let mut terms: Vec<ExpTerm> = poles
        .iter()
        .zip(solved)
        .map(|(&pole, coeff)| ExpTerm {
            pole,
            coeff,
            power: 0,
        })
        .collect();
    symmetrize_term_conjugates(&mut terms);
    Ok(terms)
}

#[derive(Clone, Copy, Debug)]
struct PoleGroup {
    pole: Complex,
    multiplicity: usize,
}

fn group_poles(poles: &[Complex]) -> Vec<PoleGroup> {
    let mut groups: Vec<PoleGroup> = Vec::new();
    for &p in poles {
        if let Some(g) = groups
            .iter_mut()
            .find(|g| (g.pole - p).abs() <= REPEAT_TOL * g.pole.abs().max(p.abs()))
        {
            // Running mean keeps the representative centered.
            let m = g.multiplicity as f64;
            g.pole = (g.pole * m + p) / (m + 1.0);
            g.multiplicity += 1;
        } else {
            groups.push(PoleGroup {
                pole: p,
                multiplicity: 1,
            });
        }
    }
    groups
}

/// Forces exact conjugate symmetry on the coefficients of conjugate pole
/// pairs so the evaluated waveform is exactly real.
fn symmetrize_term_conjugates(terms: &mut [ExpTerm]) {
    let n = terms.len();
    let mut used = vec![false; n];
    for i in 0..n {
        if used[i] || terms[i].pole.im == 0.0 {
            continue;
        }
        for j in i + 1..n {
            if used[j]
                || terms[j].power != terms[i].power
                || (terms[j].pole - terms[i].pole.conj()).abs()
                    > 1e-9 * terms[i].pole.abs().max(1.0)
            {
                continue;
            }
            let k = (terms[i].coeff + terms[j].coeff.conj()) * 0.5;
            terms[i].coeff = k;
            terms[j].coeff = k.conj();
            used[i] = true;
            used[j] = true;
            break;
        }
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Moment entry `r` (`r = 0` ↔ `m_{-1}`) of the term `coeff·t^d/d!·e^{pt}`
/// — the closed form the matching conditions impose. The engine's
/// moment-tail check uses it to ask whether a delivered model also
/// predicts the moments it was *not* fit to; the tests use it to verify
/// round trips.
pub(crate) fn term_moment(t: &ExpTerm, r: usize) -> Complex {
    if r == 0 {
        return if t.power == 0 { t.coeff } else { Complex::ZERO };
    }
    let sign = if t.power.is_multiple_of(2) { 1.0 } else { -1.0 };
    t.coeff
        * Complex::real(sign * binomial(r - 1 + t.power, t.power))
        * t.pole.recip().powi((r + t.power) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::ExpSum;

    /// Moment entry r of a term sum: Σ over simple terms k·p^{-r} —
    /// computed numerically from the closed forms for validation.
    fn moments_of_terms(terms: &[ExpTerm], count: usize) -> Vec<f64> {
        (0..count)
            .map(|r| {
                terms
                    .iter()
                    .map(|t| term_moment(t, r))
                    .fold(Complex::ZERO, |a, b| a + b)
                    .re
            })
            .collect()
    }

    #[test]
    fn simple_real_poles_round_trip() {
        let truth = vec![
            ExpTerm::simple(Complex::real(-1.0), Complex::real(2.0)),
            ExpTerm::simple(Complex::real(-5.0), Complex::real(-0.7)),
            ExpTerm::simple(Complex::real(-40.0), Complex::real(0.1)),
        ];
        let poles: Vec<Complex> = truth.iter().map(|t| t.pole).collect();
        let m = moments_of_terms(&truth, 3);
        let got = match_residues(&poles, &m).unwrap();
        for (g, t) in got.iter().zip(&truth) {
            assert!((g.coeff - t.coeff).abs() < 1e-10, "{g:?} vs {t:?}");
            assert_eq!(g.power, 0);
        }
    }

    #[test]
    fn conjugate_pair_residues_are_conjugate() {
        let p = Complex::new(-2.0, 7.0);
        let k = Complex::new(0.4, -0.9);
        let truth = vec![ExpTerm::simple(p, k), ExpTerm::simple(p.conj(), k.conj())];
        let m = moments_of_terms(&truth, 2);
        let got = match_residues(&[p, p.conj()], &m).unwrap();
        assert_eq!(got.len(), 2);
        assert!((got[0].coeff - got[1].coeff.conj()).abs() < 1e-12);
        assert!((got[0].coeff - k).abs() < 1e-10);
        // The reconstructed waveform is real and matches.
        let sum = ExpSum::new(got);
        let want = ExpSum::new(truth);
        for &t in &[0.0, 0.1, 0.3, 1.0] {
            assert!((sum.eval(t) - want.eval(t)).abs() < 1e-10);
        }
    }

    #[test]
    fn repeated_pole_confluent_solve() {
        // Truth: (2 + 3·t)·e^{-4t} → terms (d=0, k=2) and (d=1, k=3).
        let p = Complex::real(-4.0);
        let truth = vec![
            ExpTerm {
                pole: p,
                coeff: Complex::real(2.0),
                power: 0,
            },
            ExpTerm {
                pole: p,
                coeff: Complex::real(3.0),
                power: 1,
            },
        ];
        let m = moments_of_terms(&truth, 2);
        let got = match_residues(&[p, p], &m).unwrap();
        assert_eq!(got.len(), 2);
        let k0 = got.iter().find(|t| t.power == 0).unwrap();
        let k1 = got.iter().find(|t| t.power == 1).unwrap();
        assert!((k0.coeff.re - 2.0).abs() < 1e-10);
        assert!((k1.coeff.re - 3.0).abs() < 1e-10);
    }

    #[test]
    fn triple_pole() {
        let p = Complex::real(-1.5);
        let truth: Vec<ExpTerm> = (0..3)
            .map(|d| ExpTerm {
                pole: p,
                coeff: Complex::real(1.0 + d as f64),
                power: d,
            })
            .collect();
        let m = moments_of_terms(&truth, 3);
        let got = match_residues(&[p, p, p], &m).unwrap();
        for d in 0..3 {
            let t = got.iter().find(|t| t.power == d).unwrap();
            assert!(
                (t.coeff.re - (1.0 + d as f64)).abs() < 1e-9,
                "power {d}: {t:?}"
            );
        }
    }

    #[test]
    fn stiff_pole_scaling() {
        // GHz-scale poles: the normalized solve must stay accurate.
        let truth = vec![
            ExpTerm::simple(Complex::real(-1.8e9), Complex::real(-5.0)),
            ExpTerm::simple(Complex::real(-2.6e10), Complex::real(0.9)),
            ExpTerm::simple(Complex::real(-1.6e13), Complex::real(-0.1)),
        ];
        let poles: Vec<Complex> = truth.iter().map(|t| t.pole).collect();
        let m = moments_of_terms(&truth, 3);
        let got = match_residues(&poles, &m).unwrap();
        for (g, t) in got.iter().zip(&truth) {
            assert!(
                (g.coeff - t.coeff).abs() < 1e-8 * t.coeff.abs(),
                "{g:?} vs {t:?}"
            );
        }
    }

    #[test]
    fn moment_conservation_property() {
        // Whatever terms come back, they must reproduce the input moments
        // exactly — this is the paper's charge-conservation guarantee
        // (§5.3: "since we match the m_0 term …, the charge transferred is
        // always exact").
        let poles = [
            Complex::real(-1.0),
            Complex::new(-3.0, 4.0),
            Complex::new(-3.0, -4.0),
        ];
        let m = [0.7, -0.33, 0.11];
        let got = match_residues(&poles, &m).unwrap();
        let re = moments_of_terms(&got, 3);
        for (a, b) in re.iter().zip(&m) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn input_validation() {
        assert!(matches!(
            match_residues(&[], &[]),
            Err(AweError::BadOrder { .. })
        ));
        assert!(matches!(
            match_residues(&[Complex::real(-1.0)], &[]),
            Err(AweError::BadOrder { .. })
        ));
    }

    #[test]
    fn grouping_tolerance() {
        let p = Complex::real(-2.0);
        let p_close = Complex::real(-2.0 * (1.0 + 1e-9));
        let groups = group_poles(&[p, p_close]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].multiplicity, 2);
        let far = group_poles(&[p, Complex::real(-2.1)]);
        assert_eq!(far.len(), 2);
    }
}
