//! The recorder: a global on/off switch, per-thread event lanes and the
//! [`Recording`] session that collects them into a [`Profile`].
//!
//! ## Hot path
//!
//! Every public entry point ([`span`], [`instant`], [`health`], counter
//! and histogram updates) begins with a relaxed load of one
//! `AtomicBool`. When no recording is active that load-and-branch is the
//! whole cost — no lock is ever touched. When recording, events append
//! to the calling thread's private lane slot under that slot's mutex;
//! the mutex is thread-private, so it is uncontended for the entire run
//! and only ever contested for the instant [`Recording::finish`] drains
//! it. No allocation happens after the ring warms up.
//!
//! ## Lanes and generations
//!
//! A lane is born the first time a thread records during a given
//! recording *generation* and is registered with the session
//! immediately, so [`Recording::finish`] collects every event recorded
//! before it ran no matter how the recording threads were scheduled or
//! joined. (An earlier design flushed lanes from thread-local
//! destructors; `std::thread::scope` unblocks when a spawned closure
//! returns, *before* that thread's TLS destructors run, so a lane could
//! flush after `finish` had already drained — a lost lane. Registration
//! at birth has no such race.) A global generation counter lets a thread
//! detect that its lane handle belongs to a finished recording: the
//! stale handle is dropped and a fresh lane is registered with the live
//! session. Events recorded by a thread that outlives `finish` land in
//! the drained slot — lost, by design, rather than blocking or
//! corrupting the next recording.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::event::{Event, EventKind, Health};
use crate::metrics::{reset_registered, snapshot_counters, snapshot_histograms};
use crate::{CounterSnapshot, HistogramSnapshot};

/// Maximum events a single lane retains; beyond this the oldest event
/// is dropped and the lane's drop counter grows.
pub const LANE_CAPACITY: usize = 1 << 14;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SESSION: Mutex<Option<Arc<SessionState>>> = Mutex::new(None);
/// Process-monotone count of anomalous health events ([`Health`]
/// variants that signal an untrusted model: `condition_warning`,
/// `pade_rejected`, `refactor_rejected`, `oracle_disagreement`). Only
/// bumped while a recording is live. Deliberately *not* reset by
/// [`Recording::start`]: a daemon watches deltas across its lifetime.
static ANOMALIES: AtomicU64 = AtomicU64::new(0);

/// True when a [`Recording`] is active. One relaxed atomic load — this
/// is the guard every instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    EPOCH.get().map_or(0, |e| e.elapsed().as_nanos() as u64)
}

/// Nanoseconds since the recorder epoch — the same clock event
/// timestamps use. `0` until the first [`Recording::start`] of the
/// process arms the epoch.
pub fn epoch_ns() -> u64 {
    now_ns()
}

/// Total anomalous health events observed process-wide (see the
/// `condition_warning`/`pade_rejected`/`refactor_rejected`/
/// `oracle_disagreement` taxonomy). Monotone across recordings — watch
/// deltas, not absolute values.
pub fn anomaly_count() -> u64 {
    ANOMALIES.load(Ordering::Relaxed)
}

struct SessionState {
    generation: u64,
    next_lane: AtomicU64,
    /// Every lane born in this session, registered at creation. The
    /// recording thread keeps an `Arc` to its own slot; `finish` drains
    /// the registry without waiting on any thread's exit.
    lanes: Mutex<Vec<Arc<LaneSlot>>>,
    /// Named lanes (see [`lane_scope`]), keyed by label. Slots here are
    /// *also* in `lanes`, which is the registry `finish` drains.
    named: Mutex<HashMap<String, Arc<LaneSlot>>>,
}

/// One thread's shared lane storage. The mutex is thread-private in
/// steady state (only the owning thread records into it), so every lock
/// on the record path is uncontended.
struct LaneSlot {
    buf: Mutex<LaneBuf>,
}

struct LaneBuf {
    label: String,
    events: VecDeque<Event>,
    dropped: u64,
}

/// A finished lane: one thread's events for one recording.
#[derive(Clone, Debug)]
pub struct LaneData {
    /// Lane label — `"worker-N"` for pool workers (see
    /// [`set_lane_label`]), `"thread-N"` (birth order) otherwise.
    pub label: String,
    /// The retained events, in record order.
    pub events: Vec<Event>,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

/// The calling thread's handle onto its registered lane slot.
struct LocalLane {
    generation: u64,
    slot: Arc<LaneSlot>,
}

thread_local! {
    static LANE: RefCell<Option<LocalLane>> = const { RefCell::new(None) };
    /// Stack of named-lane overrides ([`lane_scope`]); the top, when its
    /// generation is live, receives this thread's events instead of the
    /// per-thread lane.
    static NAMED: RefCell<Vec<LocalLane>> = const { RefCell::new(Vec::new()) };
}

fn new_lane(generation: u64) -> Option<LocalLane> {
    let guard = SESSION.lock().ok()?;
    let state = guard.as_ref()?;
    if state.generation != generation {
        return None;
    }
    let id = state.next_lane.fetch_add(1, Ordering::Relaxed);
    let slot = Arc::new(LaneSlot {
        buf: Mutex::new(LaneBuf {
            label: format!("thread-{id}"),
            events: VecDeque::with_capacity(256),
            dropped: 0,
        }),
    });
    state
        .lanes
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(Arc::clone(&slot));
    Some(LocalLane { generation, slot })
}

/// Fetches (or creates and registers) the session's named lane for
/// `label`. `None` if no session is live at `generation`.
fn named_lane(label: &str, generation: u64) -> Option<LocalLane> {
    let guard = SESSION.lock().ok()?;
    let state = guard.as_ref()?;
    if state.generation != generation {
        return None;
    }
    let mut named = state.named.lock().unwrap_or_else(PoisonError::into_inner);
    let slot = named.entry(label.to_owned()).or_insert_with(|| {
        let slot = Arc::new(LaneSlot {
            buf: Mutex::new(LaneBuf {
                label: label.to_owned(),
                events: VecDeque::with_capacity(256),
                dropped: 0,
            }),
        });
        state
            .lanes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&slot));
        slot
    });
    Some(LocalLane {
        generation,
        slot: Arc::clone(slot),
    })
}

/// Runs `f` on the calling thread's live lane buffer, creating (and, if
/// stale, recycling) the lane as needed. Silently a no-op during thread
/// teardown or if no session is live. A live [`lane_scope`] override on
/// this thread redirects to its named lane instead.
fn with_lane(f: impl FnOnce(&mut LaneBuf)) {
    let generation = GENERATION.load(Ordering::Relaxed);
    let mut f = Some(f);
    let _ = NAMED.try_with(|cell| {
        let Ok(stack) = cell.try_borrow() else {
            return;
        };
        if let Some(lane) = stack.last() {
            if lane.generation == generation {
                let mut buf = lane.slot.buf.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(f) = f.take() {
                    f(&mut buf);
                }
            }
        }
    });
    let Some(f) = f else {
        return;
    };
    with_own_lane(f);
}

/// Like [`with_lane`] but always targets the calling thread's *own*
/// lane, ignoring any live [`lane_scope`] override. Used where the
/// target must be the physical thread — e.g. [`set_lane_label`], which
/// would otherwise rename a shared session lane out from under it.
fn with_own_lane(f: impl FnOnce(&mut LaneBuf)) {
    let generation = GENERATION.load(Ordering::Relaxed);
    let _ = LANE.try_with(|cell| {
        let Ok(mut handle) = cell.try_borrow_mut() else {
            return;
        };
        let stale = !matches!(&*handle, Some(lane) if lane.generation == generation);
        if stale {
            // The stale handle's slot already lives in (or was drained
            // from) its old session; just drop the Arc.
            *handle = new_lane(generation);
        }
        if let Some(lane) = handle.as_ref() {
            let mut buf = lane.slot.buf.lock().unwrap_or_else(PoisonError::into_inner);
            f(&mut buf);
        }
    });
}

fn record(event: Event) {
    with_lane(|buf| {
        if buf.events.len() >= LANE_CAPACITY {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(event);
    });
}

/// Names the calling thread's *own* lane in every sink (e.g.
/// `"worker-3"`). Deliberately immune to a live [`lane_scope`]
/// override: a shared session lane keeps the label it was created
/// with, no matter which labeled worker happens to run inside it.
/// No-op when disabled.
pub fn set_lane_label(label: &str) {
    if !enabled() {
        return;
    }
    with_own_lane(|buf| {
        buf.label.clear();
        buf.label.push_str(label);
    });
}

/// A named-lane override guard: while alive, every event the calling
/// thread records lands in the session's lane named `label` instead of
/// the thread's own lane — and every other thread that enters a scope
/// with the same label feeds the *same* lane. This is how a served
/// session gets one coherent trace track no matter which connection
/// thread (or how many, over its lifetime) handles its requests.
///
/// Scopes nest; the innermost live scope wins. Inert (and free) when no
/// recording is active; a scope that outlives its recording is ignored.
#[must_use = "a lane scope redirects events only while it is alive"]
pub struct LaneScope(bool);

/// Directs the calling thread's events into the session lane named
/// `label` for the guard's lifetime. See [`LaneScope`].
pub fn lane_scope(label: &str) -> LaneScope {
    if !enabled() {
        return LaneScope(false);
    }
    let generation = GENERATION.load(Ordering::Relaxed);
    let Some(lane) = named_lane(label, generation) else {
        return LaneScope(false);
    };
    let pushed = NAMED
        .try_with(|cell| {
            if let Ok(mut stack) = cell.try_borrow_mut() {
                stack.push(lane);
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    LaneScope(pushed)
}

impl Drop for LaneScope {
    fn drop(&mut self) {
        if self.0 {
            let _ = NAMED.try_with(|cell| {
                if let Ok(mut stack) = cell.try_borrow_mut() {
                    stack.pop();
                }
            });
        }
    }
}

thread_local! {
    /// The request id events on this thread are stamped with (`0` =
    /// none). Set by [`req_scope`]; pool workers re-install their
    /// spawner's id so a request's events stay attributable across
    /// threads.
    static REQ: Cell<u64> = const { Cell::new(0) };
}

/// A request-context guard: while alive, every event the calling thread
/// records carries `Event::req == id`. Scopes nest (the innermost wins;
/// the previous id is restored on drop). Inert when no recording is
/// active or `id == 0`.
#[must_use = "a request scope stamps events only while it is alive"]
pub struct ReqScope {
    prev: u64,
    active: bool,
}

/// Stamps events recorded by this thread with request id `id` for the
/// guard's lifetime. See [`ReqScope`]. The daemon mints one id per
/// protocol line; [`current_request`] lets thread-pool spawns forward
/// the ambient id into their workers.
pub fn req_scope(id: u64) -> ReqScope {
    if id == 0 || !enabled() {
        return ReqScope {
            prev: 0,
            active: false,
        };
    }
    match REQ.try_with(|c| c.replace(id)) {
        Ok(prev) => ReqScope { prev, active: true },
        Err(_) => ReqScope {
            prev: 0,
            active: false,
        },
    }
}

/// The calling thread's ambient request id (`0` when none is in scope).
#[inline]
pub fn current_request() -> u64 {
    if !enabled() {
        return 0;
    }
    ambient_req()
}

/// The ambient request id, safe against TLS teardown.
fn ambient_req() -> u64 {
    REQ.try_with(Cell::get).unwrap_or(0)
}

impl Drop for ReqScope {
    fn drop(&mut self) {
        if self.active {
            REQ.set(self.prev);
        }
    }
}

/// A timed-region guard. Created by [`span`]; records one
/// [`EventKind::Span`] event covering its lifetime when dropped. Inert
/// (a `None`) when no recording is active.
#[must_use = "a span records the region it is alive for; dropping it immediately times nothing"]
pub struct Span(Option<OpenSpan>);

struct OpenSpan {
    name: &'static str,
    detail: &'static str,
    start_ns: u64,
    /// Ambient request id captured at open — drop-order safe: the span
    /// belongs to the request that opened it even if the request scope
    /// ends first.
    req: u64,
    a: f64,
    b: f64,
}

/// Opens a span named `name` covering the guard's lifetime.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_labeled(name, "")
}

/// Opens a span with a static `detail` qualifier (e.g. a stage name).
#[inline]
pub fn span_labeled(name: &'static str, detail: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    Span(Some(OpenSpan {
        name,
        detail,
        start_ns: now_ns(),
        req: ambient_req(),
        a: 0.0,
        b: 0.0,
    }))
}

impl Span {
    /// Attaches two numeric payload slots to the span (e.g. a net index
    /// and an unknown count). No-op on an inert span.
    pub fn note(&mut self, a: f64, b: f64) {
        if let Some(open) = &mut self.0 {
            open.a = a;
            open.b = b;
        }
    }

    /// True when the span is actually recording (a recording was active
    /// at creation).
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            let end = now_ns();
            record(Event {
                ts_ns: open.start_ns,
                dur_ns: end.saturating_sub(open.start_ns),
                kind: EventKind::Span,
                name: open.name,
                detail: open.detail,
                req: open.req,
                a: open.a,
                b: open.b,
            });
        }
    }
}

/// Records a point-in-time marker. No-op when disabled.
#[inline]
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    record(Event {
        ts_ns: now_ns(),
        dur_ns: 0,
        kind: EventKind::Instant,
        name,
        detail: "",
        req: ambient_req(),
        a: 0.0,
        b: 0.0,
    });
}

/// Records a typed numerical-health event. No-op when disabled.
#[inline]
pub fn health(h: Health) {
    if !enabled() {
        return;
    }
    if matches!(
        h,
        Health::ConditionWarning { .. }
            | Health::PadeRejected { .. }
            | Health::RefactorRejected { .. }
            | Health::OracleDisagreement { .. }
    ) {
        ANOMALIES.fetch_add(1, Ordering::Relaxed);
    }
    let (name, detail, a, b) = h.encode();
    record(Event {
        ts_ns: now_ns(),
        dur_ns: 0,
        kind: EventKind::Health,
        name,
        detail,
        req: ambient_req(),
        a,
        b,
    });
}

/// An active recording session. At most one exists at a time;
/// [`Recording::start`] returns `None` if another is live. Dropping a
/// recording without [`Recording::finish`] discards its events.
pub struct Recording {
    state: Option<Arc<SessionState>>,
}

impl Recording {
    /// Starts recording, resetting all registered counters and
    /// histograms. Returns `None` if a recording is already active.
    pub fn start() -> Option<Recording> {
        let mut guard = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.is_some() {
            return None;
        }
        EPOCH.get_or_init(Instant::now);
        let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
        reset_registered();
        let state = Arc::new(SessionState {
            generation,
            next_lane: AtomicU64::new(0),
            lanes: Mutex::new(Vec::new()),
            named: Mutex::new(HashMap::new()),
        });
        *guard = Some(Arc::clone(&state));
        ENABLED.store(true, Ordering::Release);
        Some(Recording { state: Some(state) })
    }

    /// Stops recording and returns the collected [`Profile`]. Every
    /// event recorded before this call is collected, regardless of
    /// whether the recording threads are still alive or how they were
    /// joined.
    pub fn finish(mut self) -> Profile {
        self.teardown();
        let state = self.state.take().expect("teardown keeps state for finish");
        let slots =
            std::mem::take(&mut *state.lanes.lock().unwrap_or_else(PoisonError::into_inner));
        let mut lanes: Vec<LaneData> = slots
            .iter()
            .map(|slot| {
                let mut buf = slot.buf.lock().unwrap_or_else(PoisonError::into_inner);
                LaneData {
                    label: std::mem::take(&mut buf.label),
                    events: std::mem::take(&mut buf.events).into(),
                    dropped: std::mem::take(&mut buf.dropped),
                }
            })
            .filter(|lane| !lane.events.is_empty() || lane.dropped > 0)
            .collect();
        // Deterministic lane order regardless of thread scheduling.
        lanes.sort_by(|x, y| x.label.cmp(&y.label));
        Profile {
            lanes,
            counters: snapshot_counters(),
            histograms: snapshot_histograms(),
        }
    }

    /// Disables recording, invalidates outstanding lane handles and
    /// releases the calling thread's handle. Leaves `self.state` in
    /// place so `finish` can still drain it.
    fn teardown(&mut self) {
        ENABLED.store(false, Ordering::Release);
        GENERATION.fetch_add(1, Ordering::Relaxed);
        // Release this thread's handle so the slot Arcs die with the
        // session (other threads release theirs on next use).
        let _ = LANE.try_with(|cell| {
            if let Ok(mut slot) = cell.try_borrow_mut() {
                *slot = None;
            }
        });
        *SESSION.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

impl Drop for Recording {
    fn drop(&mut self) {
        if self.state.is_some() {
            self.teardown();
        }
    }
}

/// Everything one recording captured: per-thread lanes (sorted by
/// label), counter values and histogram contents. Render it with the
/// sink methods ([`Profile::chrome_trace`], [`Profile::text_report`],
/// [`Profile::metrics_json`]).
#[derive(Clone, Debug)]
pub struct Profile {
    /// Per-thread lanes, sorted by label.
    pub lanes: Vec<LaneData>,
    /// Registered-counter values, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Registered-histogram contents, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Profile {
    /// Total events lost to ring overflow across all lanes.
    pub fn events_dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }
}

/// Clones the live recording's lanes, counters and histograms into a
/// [`Profile`] *without* draining or stopping it — the flight-recorder
/// primitive. `None` when no recording is active. Each lane's buffer
/// mutex is held only for the copy of that lane, so recording threads
/// stall for at most one ring clone.
pub(crate) fn snapshot_live() -> Option<Profile> {
    let slots: Vec<Arc<LaneSlot>> = {
        let guard = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        let state = guard.as_ref()?;
        let registry = state.lanes.lock().unwrap_or_else(PoisonError::into_inner);
        registry.clone()
    };
    let mut lanes: Vec<LaneData> = slots
        .iter()
        .map(|slot| {
            let buf = slot.buf.lock().unwrap_or_else(PoisonError::into_inner);
            LaneData {
                label: buf.label.clone(),
                events: buf.events.iter().copied().collect(),
                dropped: buf.dropped,
            }
        })
        .filter(|lane| !lane.events.is_empty() || lane.dropped > 0)
        .collect();
    lanes.sort_by(|x, y| x.label.cmp(&y.label));
    Some(Profile {
        lanes,
        counters: snapshot_counters(),
        histograms: snapshot_histograms(),
    })
}

/// Lane occupancy of the live recording: `(lanes, events held)`.
/// `(0, 0)` when no recording is active. Reads lengths only — no event
/// copying — so it is scrape-endpoint cheap.
pub fn live_occupancy() -> (usize, usize) {
    let slots: Vec<Arc<LaneSlot>> = {
        let guard = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(state) = guard.as_ref() else {
            return (0, 0);
        };
        let registry = state.lanes.lock().unwrap_or_else(PoisonError::into_inner);
        registry.clone()
    };
    let events = slots
        .iter()
        .map(|slot| {
            slot.buf
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .events
                .len()
        })
        .sum();
    (slots.len(), events)
}

/// Total events lost to ring overflow in the *live* recording so far
/// (`0` when no recording is active). Cheap enough for a metrics reply:
/// one uncontended lock per lane.
pub fn live_dropped() -> u64 {
    let slots: Vec<Arc<LaneSlot>> = {
        let guard = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(state) = guard.as_ref() else {
            return 0;
        };
        let registry = state.lanes.lock().unwrap_or_else(PoisonError::into_inner);
        registry.clone()
    };
    slots
        .iter()
        .map(|slot| {
            slot.buf
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .dropped
        })
        .sum()
}
