//! Small formatting helpers shared by the report binaries.

use awe_numeric::Complex;

/// Formats a pole like the paper's tables: `-1.7818e9` or
/// `-1.0881e9 -2.6125e9j`.
pub fn pole(p: Complex) -> String {
    if p.im == 0.0 {
        format!("{:.4e}", p.re)
    } else {
        format!("{:.4e} {:+.4e}j", p.re, p.im)
    }
}

/// Formats a relative error as a percentage with sensible precision.
pub fn percent(e: f64) -> String {
    if !e.is_finite() {
        return "n/a".to_owned();
    }
    let pct = e * 100.0;
    if pct >= 10.0 {
        format!("{pct:.0} %")
    } else if pct >= 1.0 {
        format!("{pct:.1} %")
    } else {
        format!("{pct:.2} %")
    }
}

/// Formats seconds with an automatic engineering unit.
pub fn seconds(t: f64) -> String {
    let a = t.abs();
    if a >= 1.0 {
        format!("{t:.3} s")
    } else if a >= 1e-3 {
        format!("{:.3} ms", t * 1e3)
    } else if a >= 1e-6 {
        format!("{:.3} µs", t * 1e6)
    } else if a >= 1e-9 {
        format!("{:.3} ns", t * 1e9)
    } else {
        format!("{:.3} ps", t * 1e12)
    }
}

/// A fixed-width two-column waveform table (time, several series).
pub fn waveform_table(header: &[&str], times: &[f64], series: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>12}", header[0]));
    for h in &header[1..] {
        out.push_str(&format!("{h:>12}"));
    }
    out.push('\n');
    for (k, &t) in times.iter().enumerate() {
        out.push_str(&format!("{:>12}", seconds(t)));
        for s in series {
            out.push_str(&format!("{:>12.4}", s[k]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pole_formats() {
        assert_eq!(pole(Complex::real(-1.7818e9)), "-1.7818e9");
        let s = pole(Complex::new(-1.0881e9, -2.6125e9));
        assert!(s.contains("j"), "{s}");
        assert!(s.starts_with('-'), "{s}");
    }

    #[test]
    fn percent_ranges() {
        assert_eq!(percent(0.36), "36 %");
        assert_eq!(percent(0.016), "1.6 %");
        assert_eq!(percent(0.0015), "0.15 %");
        assert_eq!(percent(f64::NAN), "n/a");
    }

    #[test]
    fn seconds_units() {
        assert_eq!(seconds(7e-4), "700.000 µs");
        assert_eq!(seconds(7e-3), "7.000 ms");
        assert_eq!(seconds(1.6e-9), "1.600 ns");
        assert_eq!(seconds(5e-13), "0.500 ps");
        assert_eq!(seconds(2e-6), "2.000 µs");
        assert_eq!(seconds(1.5), "1.500 s");
    }

    #[test]
    fn table_shape() {
        let t = waveform_table(
            &["t", "a", "b"],
            &[0.0, 1e-9],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
        );
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("1.0000"));
        assert!(t.contains("4.0000"));
    }
}
