//! Single-net AWE latency with a factor/refactor/solve stage breakdown.
//!
//! For each workload (random RC tree, RC mesh, RLC ladder; small → large)
//! the bench measures
//!
//! * the **cold** path: MNA assembly + full LU factorization (symbolic
//!   analysis included) + moment recursion + Padé + residues, and
//! * the **warm** path: the same solve on an engine that already holds
//!   the symbolic pattern and a warm moment workspace, so the
//!   factorization is a numeric *refactorization* and the recursion
//!   allocates nothing.
//!
//! It writes `BENCH_awe.json` at the workspace root and then re-reads and
//! validates it, exiting nonzero if the artifact is malformed or any
//! stage that must have run reports a zero/negative wall time — that
//! validation is what the CI bench-smoke job relies on.
//!
//! `AWE_BENCH_TINY=1` (or the harness's `--test` flag) shrinks the sweep
//! to one case per topology for smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use awe::{AweEngine, AweOptions, StageTimings};
use awe_circuit::generators::{random_rc_tree, rc_mesh, rlc_ladder};
use awe_circuit::{Circuit, NodeId, Waveform};

const ORDER: usize = 2;

struct Case {
    name: String,
    circuit: Circuit,
    output: NodeId,
}

struct Row {
    name: String,
    unknowns: usize,
    cold: StageTimings,
    cold_latency: f64,
    refactor_s: f64,
    warm_latency: f64,
    refactored: bool,
}

fn cases(tiny: bool) -> Vec<Case> {
    let step = || Waveform::step(0.0, 5.0);
    let mut out = Vec::new();
    let tree_sizes: &[usize] = if tiny { &[32] } else { &[32, 256, 1024] };
    for &n in tree_sizes {
        let g = random_rc_tree(n, (10.0, 500.0), (0.05e-12, 2e-12), 42, step());
        out.push(Case {
            name: format!("rc-tree-{n}"),
            circuit: g.circuit,
            output: g.output,
        });
    }
    // 16×16 stays in the tiny sweep: it is the acceptance case for the
    // sparse refactor path (≈258 unknowns, past the sparse threshold).
    let mesh_sizes: &[usize] = if tiny { &[16] } else { &[8, 16, 24] };
    for &m in mesh_sizes {
        let g = rc_mesh(m, m, 100.0, 0.5e-12, step());
        out.push(Case {
            name: format!("rc-mesh-{m}x{m}"),
            circuit: g.circuit,
            output: g.output,
        });
    }
    let ladder_sizes: &[usize] = if tiny { &[16] } else { &[16, 64, 128] };
    for &s in ladder_sizes {
        let g = rlc_ladder(s, 50.0, 1e-9, 1e-12, step());
        out.push(Case {
            name: format!("rlc-ladder-{s}"),
            circuit: g.circuit,
            output: g.output,
        });
    }
    out
}

fn measure(case: &Case, reps: usize) -> Row {
    let opts = AweOptions::default();

    // Cold: fresh engine per rep (assembly + symbolic + numeric factor).
    // Keep the stage clocks of the rep with the smallest total latency.
    let mut cold: Option<(f64, StageTimings, usize)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let engine = AweEngine::new(&case.circuit).expect("assembles");
        let (_, clock) = engine
            .approximate_timed(case.output, ORDER, opts)
            .expect("solves");
        let latency = t0.elapsed().as_secs_f64();
        let n = engine.system().num_unknowns();
        if cold.as_ref().is_none_or(|(best, _, _)| latency < *best) {
            cold = Some((latency, clock, n));
        }
    }
    let (cold_latency, cold_clock, unknowns) = cold.expect("at least one rep");

    // Warm: one engine, one priming solve (records the pattern, warms the
    // workspace), then timed re-solves that refactor.
    let engine = AweEngine::new(&case.circuit).expect("assembles");
    engine
        .approximate_timed(case.output, ORDER, opts)
        .expect("solves");
    let mut warm_latency = f64::MAX;
    let mut refactor_s = f64::MAX;
    let mut refactored = false;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, clock) = engine
            .approximate_timed(case.output, ORDER, opts)
            .expect("solves");
        warm_latency = warm_latency.min(t0.elapsed().as_secs_f64());
        let r = clock.refactor.as_secs_f64();
        if r > 0.0 {
            refactored = true;
            refactor_s = refactor_s.min(r);
        }
    }
    Row {
        name: case.name.clone(),
        unknowns,
        cold: cold_clock,
        cold_latency,
        refactor_s: if refactored { refactor_s } else { 0.0 },
        warm_latency,
        refactored,
    }
}

fn render(rows: &[Row], tiny: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"awe_latency\",");
    let _ = writeln!(out, "  \"order\": {ORDER},");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if tiny { "tiny" } else { "full" }
    );
    out.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let speedup = if r.refactored && r.refactor_s > 0.0 {
            format!("{:.2}", r.cold.factor.as_secs_f64() / r.refactor_s)
        } else {
            "null".to_string()
        };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"unknowns\": {}, \"refactored\": {}, \
             \"mna_s\": {:e}, \"factor_s\": {:e}, \"refactor_s\": {:e}, \
             \"moments_s\": {:e}, \"pade_s\": {:e}, \"residues_s\": {:e}, \
             \"cold_latency_s\": {:e}, \"warm_latency_s\": {:e}, \
             \"refactor_speedup\": {speedup}}}{comma}",
            r.name,
            r.unknowns,
            r.refactored,
            r.cold.mna.as_secs_f64(),
            r.cold.factor.as_secs_f64(),
            r.refactor_s,
            r.cold.moments.as_secs_f64(),
            r.cold.pade.as_secs_f64(),
            r.cold.residues.as_secs_f64(),
            r.cold_latency,
            r.warm_latency,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `"key": <number>` from a one-case JSON line.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Validates the written artifact: well-formed (balanced, expected case
/// count) and physically sensible (every stage that ran took strictly
/// positive wall time; refactor time present exactly when refactoring
/// happened). Returns the failures found.
fn validate(json: &str, expected_cases: usize) -> Vec<String> {
    let mut errs = Vec::new();
    for (open, close) in [('{', '}'), ('[', ']')] {
        if json.matches(open).count() != json.matches(close).count() {
            errs.push(format!("unbalanced {open}{close}"));
        }
    }
    let case_lines: Vec<&str> = json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"name\""))
        .collect();
    if case_lines.len() != expected_cases {
        errs.push(format!(
            "expected {expected_cases} cases, artifact has {}",
            case_lines.len()
        ));
    }
    for line in case_lines {
        let name =
            field_f64(line, "unknowns").map_or_else(|| "?".to_string(), |n| format!("case n={n}"));
        for key in [
            "mna_s",
            "factor_s",
            "moments_s",
            "pade_s",
            "residues_s",
            "cold_latency_s",
            "warm_latency_s",
        ] {
            match field_f64(line, key) {
                Some(v) if v > 0.0 => {}
                Some(v) => errs.push(format!("{name}: {key} = {v} (must be > 0)")),
                None => errs.push(format!("{name}: missing {key}")),
            }
        }
        let refactored = line.contains("\"refactored\": true");
        match field_f64(line, "refactor_s") {
            Some(v) if refactored && v <= 0.0 => {
                errs.push(format!("{name}: refactored but refactor_s = {v}"));
            }
            Some(v) if !refactored && v != 0.0 => {
                errs.push(format!("{name}: not refactored but refactor_s = {v}"));
            }
            Some(_) => {}
            None => errs.push(format!("{name}: missing refactor_s")),
        }
    }
    errs
}

fn main() {
    let tiny = std::env::var("AWE_BENCH_TINY").is_ok() || std::env::args().any(|a| a == "--test");
    let reps = if tiny { 2 } else { 5 };

    let cases = cases(tiny);
    let mut rows = Vec::with_capacity(cases.len());
    for case in &cases {
        let row = measure(case, reps);
        println!(
            "{:<14} n={:<5} cold {:>9.1} us (factor {:>8.1} us)  warm {:>9.1} us \
             (refactor {:>7.1} us)",
            row.name,
            row.unknowns,
            row.cold_latency * 1e6,
            row.cold.factor.as_secs_f64() * 1e6,
            row.warm_latency * 1e6,
            row.refactor_s * 1e6,
        );
        rows.push(row);
    }

    let json = render(&rows, tiny);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_awe.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");

    let written = std::fs::read_to_string(path).unwrap_or_default();
    let errs = validate(&written, rows.len());
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("BENCH_awe.json validation: {e}");
        }
        std::process::exit(1);
    }
    println!("BENCH_awe.json validated: {} cases", rows.len());
}
