//! Property-based tests for the circuit substrate.

use proptest::prelude::*;

use awe_circuit::generators::{coupled_rc_lines, random_rc_tree, rc_line, rc_mesh};
use awe_circuit::{analyze, parse_deck, parse_value, SpanningTree, Waveform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_trees_are_rc_trees(n in 1usize..40, seed in 0u64..1000) {
        let g = random_rc_tree(
            n,
            (1.0, 1e3),
            (1e-15, 1e-11),
            seed,
            Waveform::step(0.0, 1.0),
        );
        let report = analyze(&g.circuit);
        prop_assert!(report.is_rc_tree());
        prop_assert!(report.all_nodes_have_grounded_caps);
        let st = SpanningTree::build(&g.circuit);
        prop_assert!(st.is_connected());
        // Tree + links partition the elements.
        prop_assert_eq!(
            st.tree_edges.len() + st.link_edges.len(),
            g.circuit.elements().len()
        );
        // An n-cap tree has n+2 nodes (ground, input, n internal), n+1
        // tree edges (V + n resistors) and n capacitor links.
        prop_assert_eq!(st.tree_edges.len(), n + 1);
        prop_assert_eq!(st.link_edges.len(), n);
    }

    #[test]
    fn deck_round_trip_preserves_structure(n in 1usize..25, seed in 0u64..500) {
        let g = random_rc_tree(
            n,
            (1.0, 1e3),
            (1e-15, 1e-11),
            seed,
            Waveform::step(0.0, 5.0),
        );
        let deck = g.circuit.to_deck();
        let re = parse_deck(&deck).expect("own deck parses");
        prop_assert_eq!(re.elements().len(), g.circuit.elements().len());
        prop_assert_eq!(re.num_nodes(), g.circuit.num_nodes());
        prop_assert_eq!(re.num_states(), g.circuit.num_states());
        // And again: fixpoint after one round trip.
        prop_assert_eq!(re.to_deck(), deck);
    }

    #[test]
    fn parse_value_round_trip(v in 1e-14f64..1e12) {
        let s = format!("{v:e}");
        let parsed = parse_value(&s).expect("float syntax");
        prop_assert!(((parsed - v) / v).abs() < 1e-12);
    }

    #[test]
    fn parse_value_suffixes(mant in 1.0f64..999.0) {
        for (suffix, mult) in [
            ("f", 1e-15), ("p", 1e-12), ("n", 1e-9), ("u", 1e-6),
            ("m", 1e-3), ("k", 1e3), ("meg", 1e6), ("g", 1e9), ("t", 1e12),
        ] {
            let s = format!("{mant}{suffix}");
            let parsed = parse_value(&s).expect("suffix syntax");
            let want = mant * mult;
            prop_assert!(((parsed - want) / want).abs() < 1e-12, "{s}");
        }
    }

    #[test]
    fn waveform_decomposition_reconstructs(
        pts in proptest::collection::vec((0.0f64..1e-6, -5.0f64..5.0), 1..6),
        probe in 0.0f64..2e-6,
    ) {
        let mut points = pts;
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        let w = Waveform::pwl(points);
        let (init, ramps, steps) = w.decompose();
        let recon: f64 = init
            + ramps
                .iter()
                .filter(|r| probe >= r.start)
                .map(|r| r.slope * (probe - r.start))
                .sum::<f64>()
            + steps
                .iter()
                .filter(|s| probe >= s.0)
                .map(|s| s.1)
                .sum::<f64>();
        prop_assert!(
            (recon - w.eval(probe)).abs() < 1e-9,
            "t={probe}: {recon} vs {}",
            w.eval(probe)
        );
    }

    #[test]
    fn meshes_classify_consistently(rows in 1usize..5, cols in 1usize..5) {
        let g = rc_mesh(rows, cols, 10.0, 1e-13, Waveform::step(0.0, 1.0));
        let report = analyze(&g.circuit);
        let has_loop = rows > 1 && cols > 1;
        prop_assert_eq!(report.has_resistor_loops, has_loop);
        prop_assert!(report.is_rc_mesh());
        prop_assert!(SpanningTree::build(&g.circuit).is_connected());
    }

    #[test]
    fn coupled_lines_counts(segments in 1usize..10) {
        let g = coupled_rc_lines(segments, 10.0, 1e-13, 5e-14, Waveform::step(0.0, 1.0));
        // Per segment: 2 R, 2 grounded C, 1 coupling C.
        prop_assert_eq!(g.circuit.num_states(), 3 * segments);
        prop_assert!(analyze(&g.circuit).has_floating_capacitors);
    }

    #[test]
    fn rc_line_elmore_structure(n in 1usize..20) {
        // A uniform line's farthest-node path has n resistors.
        let g = rc_line(n, 5.0, 1e-13, Waveform::step(0.0, 1.0));
        let st = SpanningTree::build(&g.circuit);
        let path = st.path_to_root(g.output);
        prop_assert_eq!(path.len(), n + 1); // n resistors + the source
    }
}
