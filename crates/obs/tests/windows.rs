//! Property tests for the rolling-window aggregation: rotation across
//! arbitrary (including huge) time jumps checked against a brute-force
//! model, snapshot-merge algebra, and counter monotonicity.
//!
//! These never start a recording — windows are plain owned values — so
//! no record-lock serialization is needed.

use awe_obs::windows::{WindowSnapshot, WindowSpec, WindowedCounter, WindowedHistogram};
use awe_obs::{bucket_index, HIST_BUCKETS};
use proptest::prelude::*;

/// A recorded (time, value) trace with non-decreasing times: deltas are
/// a mix of sub-slot steps, multi-slot hops, and window-sized jumps, so
/// rotation exercises the step-forward path, the full-clear path, and
/// the no-op path.
fn trace(spec: WindowSpec, max_len: usize) -> impl Strategy<Value = Vec<(u64, u32)>> {
    let delta = prop_oneof![
        0..spec.slot_ns,                         // same or next slot
        0..spec.slot_ns * spec.slots as u64,     // partial rotation
        0..spec.slot_ns * spec.slots as u64 * 3, // ages the whole window out
    ];
    prop::collection::vec((delta, 1u32..1000), 1..max_len).prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(dt, v)| {
                t += dt;
                (t, v)
            })
            .collect()
    })
}

/// The window predicate the ring must implement: an event recorded in
/// global slot `k` is visible from a snapshot taken in slot `k_now` iff
/// it is one of the `slots` most recent intervals.
fn in_window(spec: WindowSpec, t_event: u64, t_now: u64) -> bool {
    let k = t_event / spec.slot_ns;
    let k_now = t_now / spec.slot_ns;
    k_now < k + spec.slots as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counter rotation against the brute-force model: after an
    /// arbitrary monotone trace, `in_window` equals the sum of exactly
    /// the additions whose slot is still live, and `total` never
    /// forgets anything.
    #[test]
    fn counter_rotation_matches_model(
        case in (1usize..12, 1u64..5_000).prop_flat_map(|(s, ns)| {
            trace(WindowSpec::new(s, ns), 40).prop_map(move |t| (s, ns, t))
        }),
    ) {
        let (slots, slot_ns, events) = case;
        let spec = WindowSpec::new(slots, slot_ns);
        let mut counter = WindowedCounter::new(spec);
        for &(t, v) in &events {
            counter.add(t, u64::from(v));
        }
        let t_now = events.last().unwrap().0;
        let snap = counter.snapshot(t_now);
        let expect_window: u64 = events
            .iter()
            .filter(|(t, _)| in_window(spec, *t, t_now))
            .map(|(_, v)| u64::from(*v))
            .sum();
        let expect_total: u64 = events.iter().map(|(_, v)| u64::from(*v)).sum();
        prop_assert_eq!(snap.in_window, expect_window);
        prop_assert_eq!(snap.total, expect_total);
        prop_assert_eq!(snap.window_ns, spec.span_ns());
    }

    /// Histogram rotation against the same model, bucket by bucket.
    #[test]
    fn histogram_rotation_matches_model(
        events in trace(WindowSpec::new(8, 1_000), 40),
    ) {
        let spec = WindowSpec::new(8, 1_000);
        let mut hist = WindowedHistogram::new(spec);
        for &(t, v) in &events {
            hist.record(t, f64::from(v));
        }
        let t_now = events.last().unwrap().0;
        let snap = hist.snapshot(t_now);
        let mut expect = WindowSnapshot::empty();
        for &(_, v) in events.iter().filter(|(t, _)| in_window(spec, *t, t_now)) {
            expect.count += 1;
            expect.sum += f64::from(v);
            expect.buckets[bucket_index(f64::from(v))] += 1;
        }
        prop_assert_eq!(snap.count, expect.count);
        prop_assert_eq!(snap.sum, expect.sum); // integer-valued, exact
        prop_assert_eq!(&snap.buckets, &expect.buckets);
        prop_assert_eq!(hist.total_count(), events.len() as u64);
    }

    /// Counter totals are monotone under any interleaving of adds and
    /// snapshots — a snapshot (which rotates) must never lose history.
    #[test]
    fn counter_total_is_monotone(events in trace(WindowSpec::new(4, 700), 40)) {
        let mut counter = WindowedCounter::new(WindowSpec::new(4, 700));
        let mut running = 0u64;
        for &(t, v) in &events {
            counter.add(t, u64::from(v));
            running += u64::from(v);
            let snap = counter.snapshot(t);
            prop_assert_eq!(snap.total, running, "rotation lost history");
            prop_assert!(snap.in_window <= snap.total, "window exceeds total");
        }
    }

    /// Snapshot merge is associative and commutative: integer-valued
    /// sums keep f64 addition exact, so equality is exact too.
    #[test]
    fn snapshot_merge_is_associative_and_commutative(
        raw in prop::collection::vec(
            (0usize..HIST_BUCKETS, 1u64..100, 1u32..10_000),
            0..30,
        ),
    ) {
        let mut parts = [
            WindowSnapshot::empty(),
            WindowSnapshot::empty(),
            WindowSnapshot::empty(),
        ];
        for (i, (bucket, n, sum)) in raw.iter().enumerate() {
            let p = &mut parts[i % 3];
            p.buckets[*bucket] += n;
            p.count += n;
            p.sum += f64::from(*sum);
        }
        let [a, b, c] = parts;

        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge is not associative");

        // a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge is not commutative");

        // Merging empty is the identity.
        let mut with_empty = a.clone();
        with_empty.merge(&WindowSnapshot::empty());
        prop_assert_eq!(&with_empty, &a);
    }
}

#[test]
fn backward_time_clamps_instead_of_rotating() {
    let spec = WindowSpec::new(4, 1_000);
    let mut counter = WindowedCounter::new(spec);
    counter.add(10_000, 5);
    // A stale clock reading: records into the newest slot, no rotation.
    counter.add(3_000, 7);
    let snap = counter.snapshot(10_000);
    assert_eq!(snap.in_window, 12);
    assert_eq!(snap.total, 12);
    // Advancing past the whole window ages both out at once.
    let snap = counter.snapshot(10_000 + spec.span_ns());
    assert_eq!(snap.in_window, 0);
    assert_eq!(snap.total, 12);
}

#[test]
fn quantiles_land_in_the_recorded_buckets() {
    let mut hist = WindowedHistogram::new(WindowSpec::MINUTE);
    // 90 fast observations around 100, 10 slow around 10_000.
    for i in 0..90 {
        hist.record(i, 100.0);
    }
    for i in 0..10 {
        hist.record(i, 10_000.0);
    }
    let snap = hist.snapshot(0);
    let p50 = snap.quantile(0.5);
    let p99 = snap.quantile(0.99);
    // Bucket resolution is a factor of two: the estimates must land in
    // the same power-of-two bucket as the true values.
    assert_eq!(bucket_index(p50), bucket_index(100.0), "p50 {p50}");
    assert_eq!(bucket_index(p99), bucket_index(10_000.0), "p99 {p99}");
    assert!(snap.quantile(0.0) > 0.0);
    assert_eq!(WindowSnapshot::empty().quantile(0.5), 0.0);
}
