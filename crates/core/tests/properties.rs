//! Property-based tests for the AWE core: exactness, conservation,
//! stability, and agreement with the reference machinery on generated
//! circuits.

use proptest::prelude::*;

use awe::elmore::elmore_delays;
use awe::{AweEngine, AweOptions};
use awe_circuit::generators::{random_rc_tree, rc_line};
use awe_circuit::Waveform;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A q-order AWE model of a q-state RC line is *exact*: it reproduces
    /// the true response to rounding at every sampled time.
    #[test]
    fn full_order_model_is_exact(
        n in 1usize..5,
        r in 1.0f64..500.0,
        c in 1e-13f64..1e-11,
    ) {
        let g = rc_line(n, r, c, Waveform::step(0.0, 5.0));
        let engine = AweEngine::new(&g.circuit).expect("builds");
        let approx = engine.approximate(g.output, n).expect("full order");
        prop_assert!(approx.stable);
        // Compare against an over-ordered request: beyond the true system
        // order the moment matrix degenerates and the engine backs off
        // (possibly keeping a rounding-level ghost term); the *waveform*
        // must agree with the exact-order model regardless.
        let approx2 = engine.approximate(g.output, n + 2).expect("backs off");
        prop_assert!(approx2.stable);
        let horizon = approx.horizon();
        for i in 0..20 {
            let t = horizon * i as f64 / 19.0;
            let (a, b) = (approx.eval(t), approx2.eval(t));
            prop_assert!((a - b).abs() < 1e-6, "t={t}: {a} vs {b}");
        }
    }

    /// Final-value exactness: matching m₀ forces the reduced model's
    /// steady state to the true DC value (the §3.3 stability argument).
    #[test]
    fn final_value_matches_dc(n in 1usize..15, seed in 0u64..300, q in 1usize..4) {
        let g = random_rc_tree(
            n,
            (1.0, 500.0),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, 5.0),
        );
        let engine = AweEngine::new(&g.circuit).expect("builds");
        let approx = engine.approximate(g.output, q).expect("approximation");
        prop_assert!(
            (approx.final_value() - 5.0).abs() < 1e-6,
            "final {}",
            approx.final_value()
        );
        prop_assert!(approx.initial_value().abs() < 1e-6);
    }

    /// First-order AWE equals the Elmore model on every random RC tree:
    /// pole −1/T_D, 50 % delay T_D·ln 2 (§IV).
    #[test]
    fn first_order_is_elmore_everywhere(n in 1usize..15, seed in 0u64..300) {
        let g = random_rc_tree(
            n,
            (1.0, 500.0),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, 1.0),
        );
        let t_d = elmore_delays(&g.circuit).expect("rc tree");
        let engine = AweEngine::new(&g.circuit).expect("builds");
        let opts = AweOptions { error_estimate: false, ..AweOptions::default() };
        for &node in g.nodes.iter().take(5) {
            let a = engine.approximate_with(node, 1, opts).expect("order 1");
            let pole = a.poles()[0].re;
            let want = -1.0 / t_d[node];
            prop_assert!(
                ((pole - want) / want).abs() < 1e-9,
                "node {node}: pole {pole} vs -1/T_D {want}"
            );
        }
    }

    /// Stability on RC trees: the escalation engine always returns a
    /// stable model whose waveform stays within physical range. (Low-order
    /// Padé approximants of real-pole transfers can legitimately carry
    /// stable *complex* pairs — a transfer zero near the dominant pole
    /// trades pole realness for moment fidelity — so realness is not
    /// asserted; boundedness and terminal values are.)
    #[test]
    fn rc_tree_models_are_stable(n in 1usize..12, seed in 0u64..300, q in 1usize..4) {
        let g = random_rc_tree(
            n,
            (1.0, 500.0),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, 1.0),
        );
        let engine = AweEngine::new(&g.circuit).expect("builds");
        let approx = engine.approximate(g.output, q).expect("approximation");
        prop_assert!(approx.stable, "unstable poles: {:?}", approx.poles());
        prop_assert!((approx.final_value() - 1.0).abs() < 1e-6);
        prop_assert!(approx.initial_value().abs() < 1e-6);
        let horizon = approx.horizon();
        for i in 0..40 {
            let v = approx.eval(horizon * i as f64 / 39.0);
            prop_assert!(v.is_finite());
            prop_assert!((-0.6..1.8).contains(&v), "wild waveform value {v}");
        }
    }

    /// The *measured* error against the full-order (exact) model falls
    /// with the order; the §3.4 estimate itself stays finite and
    /// non-negative. (The estimate compares q against q+1, so it is not
    /// itself guaranteed monotone — only the true error is tested for
    /// that, and loosely: individual Padé steps may plateau.)
    #[test]
    fn measured_error_decreases_with_order(n in 3usize..10, seed in 0u64..300) {
        use awe::accuracy::relative_l2_error;
        let g = random_rc_tree(
            n,
            (1.0, 500.0),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, 1.0),
        );
        let engine = AweEngine::new(&g.circuit).expect("builds");
        let exact = engine.approximate(g.output, n).expect("full order");
        prop_assume!(exact.stable);
        let err_at = |q: usize| -> Option<f64> {
            let a = engine.approximate(g.output, q).ok()?;
            relative_l2_error(&exact.pieces[0].transient, &a.pieces[0].transient)
        };
        let e1 = err_at(1);
        let e2 = err_at(2);
        if let (Some(e1), Some(e2)) = (e1, e2) {
            // Only meaningful when order 1 actually errs: below ~1e-6 both
            // values are rounding noise around an effectively exact fit.
            if e1 > 1e-6 {
                prop_assert!(
                    e2 <= e1 * 1.2,
                    "measured error regressed: {e1} -> {e2}"
                );
            }
        }
        // Estimates are sane when present.
        for q in 1..=2 {
            if let Ok(a) = engine.approximate(g.output, q) {
                if let Some(est) = a.error_estimate {
                    prop_assert!(est.is_finite() && est >= 0.0);
                }
            }
        }
    }

    /// Time-shift invariance of the ramp superposition: delaying the
    /// input by Δ delays the response by exactly Δ.
    #[test]
    fn response_is_time_invariant(shift_ns in 1.0f64..10.0) {
        let shift = shift_ns * 1e-9;
        let g0 = rc_line(3, 100.0, 1e-12, Waveform::rising_step(0.0, 5.0, 1e-9));
        let g1 = rc_line(3, 100.0, 1e-12, Waveform::rising_step(shift, 5.0, 1e-9));
        let e0 = AweEngine::new(&g0.circuit).expect("builds");
        let e1 = AweEngine::new(&g1.circuit).expect("builds");
        let a0 = e0.approximate(g0.output, 3).expect("q3");
        let a1 = e1.approximate(g1.output, 3).expect("q3");
        for i in 0..30 {
            let t = i as f64 * 0.5e-9;
            prop_assert!(
                (a0.eval(t) - a1.eval(t + shift)).abs() < 1e-9,
                "t={t}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Penfield–Rubinstein bounds bracket the exact response of a random
    /// RC tree: the progress floor never overstates how far along the
    /// true (full-order, hence exact) response is, and the delay ceiling
    /// is never beaten by the exact threshold crossing.
    #[test]
    fn pr_bounds_bracket_exact_response(
        n in 1usize..6,
        seed in 0u64..500,
        r_hi in 10.0f64..1000.0,
    ) {
        use awe::bounds::StepBounds;

        let g = random_rc_tree(
            n,
            (1.0, r_hi),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, 3.3),
        );
        let engine = AweEngine::new(&g.circuit).expect("builds");
        // Full order on <= 5 states: the model is the exact response.
        let exact = engine.approximate(g.output, n).expect("full order");
        prop_assert!(exact.stable, "full-order RC model must be stable");
        let b = StepBounds::for_node(&g.circuit, g.output).expect("strict tree");

        // Envelope: guaranteed progress never exceeds actual progress.
        let horizon = exact.horizon();
        for i in 0..=50 {
            let t = horizon * i as f64 / 50.0;
            let actual = (exact.eval(t) - b.v0) / b.swing;
            let floor = b.progress_floor(t);
            prop_assert!(
                floor <= actual + 1e-9,
                "t={t:.3e}: floor {floor:.6} > actual {actual:.6}"
            );
        }

        // Delay ceilings: the exact crossing never arrives later than the
        // moment-only guarantee, at any threshold depth.
        for theta in [0.1, 0.5, 0.9] {
            let ceiling = b.delay_ceiling(theta).expect("theta < 1");
            let level = b.v0 + theta * b.swing;
            let crossing = exact
                .delay_to_threshold(level)
                .expect("monotone rising response crosses every level");
            prop_assert!(
                crossing <= ceiling * (1.0 + 1e-9),
                "theta={theta}: crossing {crossing:.6e} > ceiling {ceiling:.6e}"
            );
        }

        // The ceiling is anchored on the Elmore delay: at theta = 0.5 it
        // can never exceed 2 * T_D (the Markov term with rem = 0.5).
        let t_d = b.elmore_delay();
        let c50 = b.delay_ceiling(0.5).expect("theta < 1");
        prop_assert!(c50 <= 2.0 * t_d * (1.0 + 1e-12));
    }
}
