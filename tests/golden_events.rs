//! Golden numerical-health events for frozen, numerically marginal nets.
//!
//! `tests/corpus/rc-mesh-residue-breakdown.sp` is the fuzzer's seed-0
//! case 461: a 10-state RC mesh whose q = 5 Padé model used to carry a
//! moment-matrix condition ≈ 6e19 — garbage residues overshooting the
//! reference 1400×. The engine's automatic order selection now walks
//! orders 1..6 through the equilibrated Hankel solver: the q = 5 and
//! q = 6 solves honestly report conditions past the 1e14 trust cap (one
//! `condition_warning` each) and auto-order settles on q = 4 without any
//! harness-side step-down (zero `order_fallback` events — the old walk
//! lived in `awe-verify` and emitted two).
//!
//! `tests/corpus/rc-tree-unstable-q5.sp` is seed-0 case 224: a 16-state
//! RC tree whose q = 5 model grows a right-half-plane pole at +1.04e13.
//! The partial-Padé rescue now discards that pole (`pole_discarded`) and
//! refits the residues (`pade_rescued`) at q = 5 and q = 6; auto-order
//! still prefers the un-rescued q = 4 model. The exact counts are frozen
//! here; a change means the engine's numerical behavior on these nets
//! changed and must be re-justified, not waved through.
//!
//! The counts must also be thread-placement-insensitive: N concurrent
//! replays under one recording see exactly N× the single-replay counts,
//! regardless of which lane each event landed in.

use std::path::PathBuf;
use std::str::FromStr;
use std::sync::Mutex;

use awesim::circuit::parse_deck;
use awesim::obs::Recording;
use awesim::verify::{Artifacts, TopologyClass, WaveKind};

/// One global recording at a time: tests in this binary must not race on
/// the process-wide subscriber.
static RECORD_LOCK: Mutex<()> = Mutex::new(());

/// Frozen event counts for one artifact build of the mesh deck: the
/// q = 5 and q = 6 sweep steps exceed the condition cap (one warning
/// each); nothing falls back, nothing is rescued.
const MESH_ORDER_FALLBACKS: usize = 0;
const MESH_CONDITION_WARNINGS: usize = 2;
const MESH_POLE_DISCARDED: usize = 0;
const MESH_PADE_RESCUED: usize = 0;

/// Frozen event counts for one artifact build of the tree deck: the
/// q = 5 and q = 6 models each shed one RHP pole through the partial-Padé
/// rescue; only the q = 6 rescue stays past the condition cap.
const TREE_ORDER_FALLBACKS: usize = 0;
const TREE_CONDITION_WARNINGS: usize = 1;
const TREE_POLE_DISCARDED: usize = 2;
const TREE_PADE_RESCUED: usize = 2;

fn replay_deck(file: &str, node: &str, class: &str, wave: WaveKind, want_order: usize) {
    let deck = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/corpus/{file}")),
    )
    .expect("corpus deck readable");
    let circuit = parse_deck(&deck).expect("corpus deck parses");
    let output = circuit.find_node(node).expect("output node exists");
    let artifacts = Artifacts::for_circuit(
        circuit,
        output,
        TopologyClass::from_str(class).unwrap(),
        wave,
    );
    let approx = artifacts.approx.as_ref().expect("a trustworthy order");
    assert_eq!(
        approx.order, want_order,
        "auto-order must settle on q = {want_order}"
    );
    assert_eq!(approx.discarded, 0, "the delivered model needed no rescue");
}

fn replay_mesh() {
    replay_deck(
        "rc-mesh-residue-breakdown.sp",
        "m1_4",
        "rc-mesh",
        WaveKind::Pulse { width_ratio: 0.059 },
        4,
    );
}

fn replay_tree() {
    replay_deck(
        "rc-tree-unstable-q5.sp",
        "n16",
        "rc-tree",
        WaveKind::Step,
        4,
    );
}

/// Counts `(order_fallback, condition_warning, pole_discarded,
/// pade_rescued)` events across all lanes.
fn health_counts(profile: &awesim::obs::Profile) -> (usize, usize, usize, usize) {
    let (mut fallbacks, mut warnings, mut discarded, mut rescued) = (0, 0, 0, 0);
    for lane in &profile.lanes {
        for e in &lane.events {
            match e.name {
                "order_fallback" => fallbacks += 1,
                "condition_warning" => warnings += 1,
                "pole_discarded" => discarded += 1,
                "pade_rescued" => rescued += 1,
                _ => {}
            }
        }
    }
    (fallbacks, warnings, discarded, rescued)
}

#[test]
fn marginal_mesh_emits_golden_health_events() {
    let _guard = RECORD_LOCK.lock().unwrap();
    let rec = Recording::start().expect("no other recording active");
    replay_mesh();
    let profile = rec.finish();
    let (fallbacks, warnings, discarded, rescued) = health_counts(&profile);
    assert_eq!(
        fallbacks, MESH_ORDER_FALLBACKS,
        "order_fallback count changed — the order walk moved"
    );
    assert_eq!(
        warnings, MESH_CONDITION_WARNINGS,
        "condition_warning count changed — moment-matrix conditioning moved"
    );
    assert_eq!(
        discarded, MESH_POLE_DISCARDED,
        "pole_discarded count changed — the partial-Padé filter engaged"
    );
    assert_eq!(rescued, MESH_PADE_RESCUED);
}

#[test]
fn unstable_tree_emits_golden_rescue_events() {
    let _guard = RECORD_LOCK.lock().unwrap();
    let rec = Recording::start().expect("no other recording active");
    replay_tree();
    let profile = rec.finish();
    let (fallbacks, warnings, discarded, rescued) = health_counts(&profile);
    assert_eq!(
        fallbacks, TREE_ORDER_FALLBACKS,
        "order_fallback count changed — the order walk moved"
    );
    assert_eq!(
        warnings, TREE_CONDITION_WARNINGS,
        "condition_warning count changed — moment-matrix conditioning moved"
    );
    assert_eq!(
        discarded, TREE_POLE_DISCARDED,
        "pole_discarded count changed — the RHP pole census moved"
    );
    assert_eq!(
        rescued, TREE_PADE_RESCUED,
        "pade_rescued count changed — the rescue path moved"
    );
}

#[test]
fn golden_counts_are_order_insensitive_across_threads() {
    let _guard = RECORD_LOCK.lock().unwrap();
    const REPLAYS: usize = 3;
    let rec = Recording::start().expect("no other recording active");
    std::thread::scope(|scope| {
        for _ in 0..REPLAYS {
            scope.spawn(replay_mesh);
            scope.spawn(replay_tree);
        }
    });
    let profile = rec.finish();
    let (fallbacks, warnings, discarded, rescued) = health_counts(&profile);
    assert_eq!(
        fallbacks,
        REPLAYS * (MESH_ORDER_FALLBACKS + TREE_ORDER_FALLBACKS)
    );
    assert_eq!(
        warnings,
        REPLAYS * (MESH_CONDITION_WARNINGS + TREE_CONDITION_WARNINGS)
    );
    assert_eq!(
        discarded,
        REPLAYS * (MESH_POLE_DISCARDED + TREE_POLE_DISCARDED)
    );
    assert_eq!(rescued, REPLAYS * (MESH_PADE_RESCUED + TREE_PADE_RESCUED));
}
