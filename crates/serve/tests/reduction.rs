//! Cache accounting with the reduction pre-pass enabled: session keys
//! derive from the *reduced* rewrite, so an ECO that lands inside a
//! collapsed chain segment must still reclassify correctly — a small
//! resize is a value edit (same reduced topology, pure refactor), a
//! drastic one shifts the segment boundaries themselves and must be
//! treated as topology. Neither may ever hit a stale pattern.
//!
//! Geometry of the fixture: 600-stage uniform chains at tolerance 5e-4.
//! The pair-merge test `r1*r2/span^2 <= tol*N` (0.25 vs 0.3) passes for
//! every adjacent pair while no triple fits (8/6 vs 0.9), so each chain
//! reduces to ~300 two-resistor segments — identically for every net
//! regardless of its jittered element values, and comfortably past the
//! sparse-path threshold so the group shares one symbolic pattern.

use awe_serve::json::parse;
use awe_serve::{handle_line, Json, ServeOptions, ServeState};

fn send(st: &ServeState, line: &str) -> Json {
    let reply = handle_line(st, line);
    parse(&reply).unwrap_or_else(|e| panic!("invalid response JSON ({e}): {reply}"))
}

fn num(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("field {key} in {v}"))
}

fn assert_ok(v: &Json) {
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v}");
}

#[test]
fn eco_inside_a_collapsed_chain_reclassifies_against_reduced_keys() {
    let st = ServeState::new(ServeOptions::default());
    let loaded = send(
        &st,
        r#"{"id":1,"verb":"load_design","session":"red","chains":{"nets":8,"stages":600,"seed":7},"opts":{"threads":1,"reduce":true,"reduce_tol":0.0005}}"#,
    );
    assert_ok(&loaded);
    assert_eq!(num(&loaded, "nets"), 8);
    assert_eq!(
        num(&loaded, "groups"),
        1,
        "segmentation depends only on chain shape, so all reduced nets share one pattern"
    );
    assert_eq!(num(&loaded, "solves"), 8);
    assert_eq!(
        num(&loaded, "pattern_hits"),
        7,
        "reduced nets stay sparse: one donor, seven refactors"
    );
    assert_eq!(num(&loaded, "new_symbolic"), 1);
    assert_eq!(num(&loaded, "failures"), 0);

    // R2 sits strictly inside the first collapsed pair (its interior node
    // n1 was eliminated). A same-magnitude resize leaves every merge
    // decision on the same side, so the reduced topology is unchanged:
    // the edit must class as "value" and re-analyze as a pure numeric
    // refactorization of the still-cached group pattern.
    let eco = send(
        &st,
        r#"{"id":2,"verb":"eco","session":"red","ops":[{"op":"resize","net":"net0004","element":"R2","value":105.0}]}"#,
    );
    assert_ok(&eco);
    let changes = eco.get("changes").and_then(Json::as_arr).expect("changes");
    assert_eq!(
        changes[0].get("class").and_then(Json::as_str),
        Some("value"),
        "in-segment resize re-reduces to the same shape"
    );
    assert_eq!(num(&eco, "invalidated_results"), 1);
    assert_eq!(num(&eco, "invalidated_patterns"), 0);

    let analyzed = send(&st, r#"{"id":3,"verb":"analyze","session":"red"}"#);
    assert_ok(&analyzed);
    assert_eq!(num(&analyzed, "dirty_value"), 1);
    assert_eq!(
        num(&analyzed, "swept"),
        1,
        "warm analyze visits only the dirty net"
    );
    assert_eq!(num(&analyzed, "solves"), 1);
    assert_eq!(num(&analyzed, "cache_hits"), 7);
    assert_eq!(
        num(&analyzed, "pattern_hits"),
        1,
        "the re-reduced net refactors against the live group pattern"
    );
    assert_eq!(
        num(&analyzed, "new_symbolic"),
        0,
        "never a stale-pattern miss, never a fresh analysis"
    );

    // Blowing R2 up by ~7 orders of magnitude makes every segment test
    // downstream of it trivially pass, so re-reduction collapses the
    // whole chain: different reduced topology, hence a topology edit that
    // must leave the (still 7-member) group's pattern alone and pay for
    // its own fresh analysis.
    let eco = send(
        &st,
        r#"{"id":4,"verb":"eco","session":"red","ops":[{"op":"resize","net":"net0006","element":"R2","value":1e9}]}"#,
    );
    assert_ok(&eco);
    let changes = eco.get("changes").and_then(Json::as_arr).expect("changes");
    assert_eq!(
        changes[0].get("class").and_then(Json::as_str),
        Some("topology"),
        "boundary-shifting resize re-reduces to a different shape"
    );
    assert_eq!(
        num(&eco, "invalidated_patterns"),
        0,
        "old group still has 7 members"
    );

    let analyzed = send(&st, r#"{"id":5,"verb":"analyze","session":"red"}"#);
    assert_ok(&analyzed);
    assert_eq!(num(&analyzed, "dirty_topology"), 1);
    assert_eq!(num(&analyzed, "swept"), 1);
    assert_eq!(num(&analyzed, "solves"), 1);
    assert_eq!(
        num(&analyzed, "pattern_hits"),
        0,
        "new shape: nothing to refactor against"
    );
    assert_eq!(num(&analyzed, "new_symbolic"), 1);

    let metrics = send(&st, r#"{"id":6,"verb":"metrics","session":"red"}"#);
    assert_ok(&metrics);
    assert_eq!(num(&metrics, "structure_groups"), 2);
    assert_eq!(num(&metrics, "value_nets"), 1);
    assert_eq!(num(&metrics, "topology_nets"), 1);
    assert_eq!(
        num(&metrics, "new_symbolic"),
        2,
        "lifetime: the cold donor plus the reshaped net"
    );
}
