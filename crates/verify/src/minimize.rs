//! Failure minimization.
//!
//! When an oracle fails, the raw case is rarely the smallest circuit that
//! exhibits the disagreement. The minimizer shrinks at the *parameter*
//! level — the case is regenerated from its [`CaseParams`] after every
//! candidate reduction, so the shrunk circuit is still a deterministic,
//! seed-replayable member of the fuzzed family (netlist-level mutation
//! would lose that property). Greedy policy: try reductions in order of
//! how much they simplify the case, keep any reduction that still fails
//! the same oracle, and stop when no candidate fails.
//!
//! The result is rendered as a standalone SPICE deck with a metadata
//! header, suitable for committing to `tests/corpus/` as a permanent
//! regression.

use crate::fuzz::{CaseParams, FuzzCase, WaveKind};
use crate::oracle::{Artifacts, OracleKind, Verdict};

#[cfg(test)]
use crate::oracle::DEFAULT_REDUCE_TOLERANCE;

/// A minimized failing case.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The shrunk parameters (regenerate with `params.build()`).
    pub params: CaseParams,
    /// The oracle that still fails on the shrunk case.
    pub oracle: OracleKind,
    /// The failure detail on the shrunk case.
    pub detail: String,
    /// Number of accepted reductions.
    pub steps: usize,
    /// Reduction tolerance the reduce oracle ran at (other oracles ignore
    /// it; recorded so replay reproduces the same rewrite).
    pub reduce_tolerance: f64,
}

/// Does `params` still fail `oracle`? Returns the failure detail if so.
fn still_fails(params: &CaseParams, oracle: OracleKind, reduce_tolerance: f64) -> Option<String> {
    let case = params.build();
    let mut artifacts = Artifacts::build(&case);
    artifacts.reduce_tolerance = reduce_tolerance;
    let report = artifacts.run(oracle);
    match report.verdict {
        Verdict::Fail { detail } => Some(detail),
        _ => None,
    }
}

/// Shrinks a failing case to a (locally) minimal one that still fails the
/// same oracle. `params` must currently fail `oracle`; if it does not, the
/// original parameters come back with `steps == 0`.
pub fn minimize(params: &CaseParams, oracle: OracleKind, reduce_tolerance: f64) -> Minimized {
    let mut best = *params;
    let mut detail = still_fails(&best, oracle, reduce_tolerance).unwrap_or_default();
    let mut steps = 0usize;
    // Each accepted reduction restarts the candidate scan; the budget
    // bounds total oracle invocations on pathological cases.
    let mut budget = 200usize;
    'outer: loop {
        for candidate in reductions(&best) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Some(d) = still_fails(&candidate, oracle, reduce_tolerance) {
                best = candidate;
                detail = d;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    Minimized {
        params: best,
        oracle,
        detail,
        steps,
        reduce_tolerance,
    }
}

/// Candidate reductions for one greedy round, most aggressive first.
fn reductions(p: &CaseParams) -> Vec<CaseParams> {
    let mut out = Vec::new();
    // Structural: fewer nodes dominates everything else.
    if p.size > 1 {
        out.push(CaseParams {
            size: p.size / 2,
            ..*p
        });
        out.push(CaseParams {
            size: p.size - 1,
            ..*p
        });
    }
    // Stimulus: an ideal step is the simplest waveform.
    if p.wave != WaveKind::Step {
        out.push(CaseParams {
            wave: WaveKind::Step,
            ..*p
        });
    }
    // Value spread: pull both ranges toward their geometric means.
    if p.r_hi / p.r_lo > 1.01 {
        let gm = (p.r_lo * p.r_hi).sqrt();
        out.push(CaseParams {
            r_lo: (p.r_lo * gm).sqrt(),
            r_hi: (p.r_hi * gm).sqrt(),
            ..*p
        });
    }
    if p.c_hi / p.c_lo > 1.01 {
        let gm = (p.c_lo * p.c_hi).sqrt();
        out.push(CaseParams {
            c_lo: (p.c_lo * gm).sqrt(),
            c_hi: (p.c_hi * gm).sqrt(),
            ..*p
        });
    }
    // Canonical round values, one knob at a time.
    for canon in [
        CaseParams {
            r_lo: 100.0,
            r_hi: 100.0,
            ..*p
        },
        CaseParams {
            c_lo: 1e-12,
            c_hi: 1e-12,
            ..*p
        },
        CaseParams { l: 1e-9, ..*p },
        CaseParams { rs: 10.0, ..*p },
        CaseParams {
            coupling_ratio: 0.5,
            ..*p
        },
        CaseParams { vdd: 1.0, ..*p },
    ] {
        if !same_knobs(&canon, p) {
            out.push(canon);
        }
    }
    out
}

fn same_knobs(a: &CaseParams, b: &CaseParams) -> bool {
    a.r_lo == b.r_lo
        && a.r_hi == b.r_hi
        && a.c_lo == b.c_lo
        && a.c_hi == b.c_hi
        && a.l == b.l
        && a.rs == b.rs
        && a.coupling_ratio == b.coupling_ratio
        && a.vdd == b.vdd
}

/// Renders a minimized failure as a standalone corpus deck: metadata
/// comments (oracle, class, wave, full parameters, failure detail,
/// observation node) followed by the netlist. The deck re-parses with
/// `circuit::parse_deck`; `campaign::replay_deck` reads the metadata back.
pub fn corpus_deck(m: &Minimized, case: &FuzzCase) -> String {
    let mut out = String::new();
    out.push_str("* awe-verify minimized regression\n");
    out.push_str(&format!(
        "* oracle={} class={} wave={} rtol={}\n",
        m.oracle,
        m.params.class,
        wave_tag(&m.params.wave),
        m.reduce_tolerance
    ));
    out.push_str(&format!("* params: {}\n", m.params.describe()));
    for line in m.detail.lines() {
        out.push_str(&format!("* detail: {line}\n"));
    }
    out.push_str(&format!(
        "* output {}\n",
        case.circuit.node_name(case.output)
    ));
    out.push_str(&case.circuit.to_deck());
    out
}

fn wave_tag(wave: &WaveKind) -> &'static str {
    match wave {
        WaveKind::Step => "step",
        WaveKind::FallingStep => "falling-step",
        WaveKind::Ramp { .. } => "ramp",
        WaveKind::Pulse { .. } => "pulse",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::TopologyClass;

    #[test]
    fn non_failing_case_is_returned_unchanged() {
        let p = CaseParams::generate(TopologyClass::RcTree, 0, 0);
        let m = minimize(&p, OracleKind::Transient, DEFAULT_REDUCE_TOLERANCE);
        assert_eq!(m.steps, 0);
        assert_eq!(m.params.size, p.size);
    }

    #[test]
    fn reductions_only_shrink() {
        let p = CaseParams::generate(TopologyClass::CoupledLines, 3, 5);
        for r in reductions(&p) {
            assert!(r.size <= p.size);
            assert!(r.r_hi / r.r_lo <= p.r_hi / p.r_lo * 1.000001);
            assert!(r.c_hi / r.c_lo <= p.c_hi / p.c_lo * 1.000001);
        }
    }

    #[test]
    fn corpus_deck_reparses() {
        let p = CaseParams::generate(TopologyClass::RcTree, 1, 2);
        let case = p.build();
        let m = Minimized {
            params: p,
            oracle: OracleKind::Transient,
            detail: "synthetic detail".into(),
            steps: 0,
            reduce_tolerance: DEFAULT_REDUCE_TOLERANCE,
        };
        let deck = corpus_deck(&m, &case);
        let parsed = awe_circuit::parse_deck(&deck).expect("corpus deck must re-parse");
        assert_eq!(parsed.num_states(), case.circuit.num_states());
        assert!(deck.contains("* oracle=transient"));
        assert!(deck.contains("* output "));
    }
}
