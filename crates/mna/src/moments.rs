//! Moment generation (paper §3.2).
//!
//! The central cost claim of AWE is that after one LU factorization of the
//! conductance matrix, *"the major task in computing even higher moments is
//! repeated forward- and back-substitution of these LU factors"*. The
//! [`MomentEngine`] implements exactly that: factor `G` once, then each
//! moment is one `C·x` product and one resubstitution.
//!
//! ## Moment convention
//!
//! The paper's sign conventions drift between eq. (16) and the worked
//! example of eqs. (55)–(59); we fix one internally consistent convention
//! and verify it numerically everywhere:
//!
//! For a homogeneous response `x_h(t) = Σ_l k_l·e^{p_l t}` we define
//!
//! ```text
//! m_j = Σ_l k_l · p_l^{-(j+1)},   j = -1, 0, 1, …
//! ```
//!
//! so `m_{-1} = x_h(0)` (the initial value) and `m_0` is the negated
//! Maclaurin coefficient of `X_h(s)` (for an RC-tree step response,
//! `m_0 = V_DD·T_D` with `T_D` the Elmore delay — the paper's eq. (56)).
//! In MNA descriptor form the whole sequence obeys one recursion:
//!
//! ```text
//! m_{-1} = x_h(0),    m_{k+1} = (-G⁻¹C) · m_k .
//! ```
//!
//! ## Excitation decomposition
//!
//! General inputs (multiple sources, PWL waveforms, nonequilibrium initial
//! conditions) superpose (§4.3): the response is a DC baseline plus one
//! homogeneous-plus-particular piece per input step, per input ramp, and
//! one for the initial-condition mismatch. [`MomentEngine::decompose`]
//! produces those pieces with their moment sequences; the AWE core reduces
//! each piece independently and superposes the waveforms.

use std::sync::Arc;

use awe_numeric::{
    LaneLu, Lu, LuSymbolic, Matrix, NumericError, SolveScratch, SparseLu, SparseMatrix, LANE_WIDTH,
};

use crate::error::MnaError;
use crate::system::MnaSystem;

/// Workspace-pool reuse across a recording: a hit recycles a finished
/// moment vector's storage, a miss allocates.
static POOL_HIT: awe_obs::Counter = awe_obs::Counter::new("mna.workspace.pool_hit");
static POOL_MISS: awe_obs::Counter = awe_obs::Counter::new("mna.workspace.pool_miss");

/// The initial (t = 0⁻) dynamic state of the circuit.
#[derive(Clone, Debug)]
pub struct InitialState {
    /// Initial voltage of each capacitor, in `MnaSystem::caps` order.
    pub cap_voltages: Vec<f64>,
    /// Initial current of each inductor, in `MnaSystem::inductors` order.
    pub inductor_currents: Vec<f64>,
    /// The pre-transition DC solution (baseline operating point).
    pub dc_solution: Vec<f64>,
}

/// What drives one superposition piece.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PieceKind {
    /// Relaxation of a nonequilibrium initial condition from `t = 0`.
    InitialCondition,
    /// An ideal step on one source.
    Step {
        /// Source column.
        source: usize,
        /// Step magnitude.
        jump: f64,
    },
    /// An infinite ramp on one source.
    Ramp {
        /// Source column.
        source: usize,
        /// Ramp slope (units/second).
        slope: f64,
    },
    /// Several simultaneous excitations merged into one homogeneous
    /// response (the paper's eq. (8): `x_h(0) = x₀ + A⁻¹Bu₀ + A⁻²Bu₁`
    /// combines the initial state with all `t = 0` source activity). A
    /// merged reduction is far better conditioned than reducing, say, an
    /// isolated charge-sharing pulse on its own.
    Combined,
}

/// One superposition piece: its onset time, its particular solution
/// (`x_p(t) = a + b·(t - at)` for `t ≥ at`), and the moment sequence of its
/// homogeneous part (`moments[0] = m_{-1}`, `moments[k+1] = m_k`). All
/// vectors are full MNA vectors; index by the observed unknown.
#[derive(Clone, Debug)]
pub struct Piece {
    /// What drives this piece.
    pub kind: PieceKind,
    /// Onset time (the piece contributes only for `t ≥ at`).
    pub at: f64,
    /// Constant part of the particular solution.
    pub a: Vec<f64>,
    /// Ramp part of the particular solution (zero for steps/ICs).
    pub b: Vec<f64>,
    /// Moment sequence `[m_{-1}, m_0, …, m_{count-2}]` of the homogeneous
    /// part.
    pub moments: Vec<Vec<f64>>,
    /// The paper's `m_{-2}` term — the initial *slope* `ẋ_h(0)` of the
    /// homogeneous response (§4.3) — when it is finite and computed.
    /// Present for ramp pieces (a step's homogeneous slope is impulsive);
    /// merging pieces keeps it only if every member carries one.
    pub m_minus2: Option<Vec<f64>>,
}

/// Full superposed description of the response: a DC baseline plus pieces.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Pre-transition DC operating point (valid for all `t` as the
    /// baseline the pieces add to).
    pub baseline: Vec<f64>,
    /// Superposition pieces sorted by onset time.
    pub pieces: Vec<Piece>,
}

/// A piece awaiting its moment sequence: everything but `moments`.
/// Module-scoped so the proto-building and recursion phases of
/// [`MomentEngine::decompose_with`] can be shared with the lane-merged
/// [`decompose_lanes_with`] replay path.
struct Proto {
    kind: PieceKind,
    at: f64,
    a: Vec<f64>,
    b: Vec<f64>,
    m_minus1: Vec<f64>,
    m_minus2: Option<Vec<f64>>,
}

/// The conductance factorization: dense LU for small systems, sparse
/// Gilbert–Peierls LU (with RCM column ordering) once the system is large
/// and sparse enough for the fill-aware path to win.
enum Factorization {
    Dense(Lu),
    Sparse(SparseLu),
}

impl Factorization {
    fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        match self {
            Factorization::Dense(lu) => lu.solve(b),
            Factorization::Sparse(lu) => lu.solve(b),
        }
    }

    fn solve_into(
        &self,
        b: &[f64],
        scratch: &mut SolveScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), NumericError> {
        match self {
            Factorization::Dense(lu) => lu.solve_into(b, out),
            Factorization::Sparse(lu) => lu.solve_into(b, scratch, out),
        }
    }
}

/// Unknown-count threshold above which [`MomentEngine::with_pattern`]
/// attempts the sparse path. Public so batch replay layers can predict
/// which factorization an unseeded engine would choose.
pub const SPARSE_THRESHOLD: usize = 192;

/// Caller-owned scratch space for the moment recursion.
///
/// Threading one workspace through repeated
/// [`MomentEngine::decompose_with`] /
/// [`MomentEngine::homogeneous_moments_with`] calls makes the steady-state
/// recursion allocation-free per moment: right-hand-side, product and
/// solve buffers are reused in place, and finished moment vectors can be
/// returned to the internal pool with [`MomentWorkspace::recycle`] so the
/// next decomposition reuses their storage.
#[derive(Default)]
pub struct MomentWorkspace {
    /// Triangular-solve scratch for the sparse path.
    scratch: SolveScratch,
    /// Stacked block right-hand sides (`pieces × n`).
    rhs: Vec<f64>,
    /// Stacked block solutions.
    blk: Vec<f64>,
    /// `C̃·x` product buffer.
    cw: Vec<f64>,
    /// Dense-path per-chunk solve output.
    tmp: Vec<f64>,
    /// Recycled moment-sized vectors.
    pool: Vec<Vec<f64>>,
}

impl MomentWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a vector from the pool (or a fresh one), cleared.
    fn take(&mut self) -> Vec<f64> {
        match self.pool.pop() {
            Some(v) => {
                POOL_HIT.incr();
                v
            }
            None => {
                POOL_MISS.incr();
                Vec::new()
            }
        }
    }

    /// Returns a vector's storage to the pool for reuse.
    pub fn give(&mut self, mut v: Vec<f64>) {
        if v.capacity() > 0 {
            v.clear();
            self.pool.push(v);
        }
    }

    /// Returns every vector owned by a finished [`Decomposition`] to the
    /// pool, so the next [`MomentEngine::decompose_with`] call on a
    /// same-sized system allocates nothing per moment.
    pub fn recycle(&mut self, dec: Decomposition) {
        self.give(dec.baseline);
        for piece in dec.pieces {
            self.give(piece.a);
            self.give(piece.b);
            if let Some(m) = piece.m_minus2 {
                self.give(m);
            }
            for m in piece.moments {
                self.give(m);
            }
        }
    }

    /// Vectors currently pooled (diagnostic; used by reuse tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Factored-once moment engine over an [`MnaSystem`].
pub struct MomentEngine<'a> {
    system: &'a MnaSystem,
    lu: Factorization,
    /// Sparse image of `C̃` kept alongside the sparse factorization so the
    /// per-moment `C̃·x` products cost `O(nnz)` instead of `O(n²)`.
    c_tilde_sparse: Option<SparseMatrix>,
    /// Whether the factorization reused a stored symbolic pattern
    /// (numeric refactorization) instead of a full analysis.
    refactored: bool,
}

impl<'a> MomentEngine<'a> {
    /// Factors the conductance matrix of `system`.
    ///
    /// # Errors
    ///
    /// [`MnaError::NoDcSolution`] if `G` is singular — the circuit violates
    /// the paper's §3.1 requirement of a unique DC solution (e.g. a node
    /// connected only through capacitors).
    pub fn new(system: &'a MnaSystem) -> Result<Self, MnaError> {
        Self::with_pattern(system, None)
    }

    /// Like [`MomentEngine::new`], but first tries a numeric
    /// refactorization against a stored symbolic pattern (recorded from a
    /// structurally identical system, e.g. by a batch run's pattern
    /// cache). Falls back to the normal analyze-and-factor path when no
    /// pattern is given, the pattern does not match, or the new values
    /// make a stored pivot inadmissible.
    ///
    /// # Errors
    ///
    /// [`MnaError::NoDcSolution`] if `G` is singular.
    pub fn with_pattern(
        system: &'a MnaSystem,
        pattern: Option<&Arc<LuSymbolic>>,
    ) -> Result<Self, MnaError> {
        // Factor the charge-aware G̃ (identical to G without floating
        // groups): the §3.1 charge-conservation rows make circuits with
        // capacitor-only nodes solvable. Large sparse systems go through
        // the RCM-ordered Gilbert–Peierls factorization; anything else —
        // including a sparse-path failure — uses dense LU.
        let n = system.num_unknowns();
        if let Some(sym) = pattern {
            if sym.dim() == n {
                let sg = SparseMatrix::from_dense(&system.g_tilde);
                if let Ok(lu) = SparseLu::refactor(sym, &sg) {
                    return Ok(MomentEngine {
                        system,
                        lu: Factorization::Sparse(lu),
                        c_tilde_sparse: Some(SparseMatrix::from_dense(&system.c_tilde)),
                        refactored: true,
                    });
                }
            }
        }
        if n >= SPARSE_THRESHOLD {
            let sg = SparseMatrix::from_dense(&system.g_tilde);
            let density = sg.nnz() as f64 / (n as f64 * n as f64);
            if density < 0.05 {
                let order = sg.rcm_ordering().ok().map(|new_of_old| {
                    let mut cols: Vec<usize> = (0..n).collect();
                    cols.sort_by_key(|&old| new_of_old[old]);
                    cols
                });
                if let Ok(lu) = SparseLu::factor(&sg, order.as_deref()) {
                    return Ok(MomentEngine {
                        system,
                        lu: Factorization::Sparse(lu),
                        c_tilde_sparse: Some(SparseMatrix::from_dense(&system.c_tilde)),
                        refactored: false,
                    });
                }
            }
        }
        let mut sp = awe_obs::span("lu.dense_factor");
        sp.note(n as f64, 0.0);
        let lu = Lu::factor(&system.g_tilde)?;
        Ok(MomentEngine {
            system,
            lu: Factorization::Dense(lu),
            c_tilde_sparse: None,
            refactored: false,
        })
    }

    /// An engine over a *prebuilt* sparse factorization of `system`'s
    /// `G̃` (e.g. one lane of a batch tape's [`awe_numeric::LaneLu`]
    /// refactorization) plus the sparse image of `C̃`. Counts as a
    /// refactorization (see [`MomentEngine::refactored`]); every solve is
    /// bit-identical to an engine whose [`MomentEngine::with_pattern`]
    /// refactorization produced the same factor values.
    pub fn from_sparse(
        system: &'a MnaSystem,
        lu: SparseLu,
        c_tilde_sparse: SparseMatrix,
    ) -> MomentEngine<'a> {
        MomentEngine {
            system,
            lu: Factorization::Sparse(lu),
            c_tilde_sparse: Some(c_tilde_sparse),
            refactored: true,
        }
    }

    /// An engine over a prebuilt *dense* LU of `system`'s `G̃` (e.g. a
    /// [`Lu::factor_reusing`] factorization recycling a batch arena's
    /// buffers). Bit-identical to the dense path of
    /// [`MomentEngine::with_pattern`] given identical factor values.
    pub fn from_dense(system: &'a MnaSystem, lu: Lu) -> MomentEngine<'a> {
        MomentEngine {
            system,
            lu: Factorization::Dense(lu),
            c_tilde_sparse: None,
            refactored: false,
        }
    }

    /// Consumes the engine, returning the dense LU for buffer recycling
    /// (`None` on the sparse path).
    pub fn into_dense_lu(self) -> Option<Lu> {
        match self.lu {
            Factorization::Dense(lu) => Some(lu),
            Factorization::Sparse(_) => None,
        }
    }

    /// Consumes the engine, returning the sparse factorization and `C̃`
    /// image for buffer recycling (`None` on the dense path or when no
    /// sparse image was kept).
    pub fn into_sparse(self) -> Option<(SparseLu, SparseMatrix)> {
        match (self.lu, self.c_tilde_sparse) {
            (Factorization::Sparse(lu), Some(c)) => Some((lu, c)),
            _ => None,
        }
    }

    /// Whether this engine's factorization was a numeric refactorization
    /// against a stored symbolic pattern (vs. a full symbolic+numeric
    /// factorization).
    #[inline]
    pub fn refactored(&self) -> bool {
        self.refactored
    }

    /// The shared symbolic analysis, when the sparse path is in use —
    /// hand this to [`MomentEngine::with_pattern`] for a structurally
    /// identical system to skip its symbolic analysis entirely.
    pub fn lu_symbolic(&self) -> Option<&Arc<LuSymbolic>> {
        match &self.lu {
            Factorization::Sparse(lu) => Some(lu.symbolic()),
            Factorization::Dense(_) => None,
        }
    }

    /// `C̃·x` through the sparse image when available, into a
    /// caller-owned buffer (no allocation at capacity).
    fn c_tilde_apply_into(&self, x: &[f64], out: &mut Vec<f64>) {
        match &self.c_tilde_sparse {
            Some(sc) => sc.mul_vec_into(x, out),
            None => self.system.c_tilde.mul_vec_into(x, out),
        }
    }

    /// Solves the charge-aware system: conductive rows take `rhs`, each
    /// floating group's replaced row takes its entry of `charges`.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors.
    pub fn solve_charge(&self, rhs: &[f64], charges: &[f64]) -> Result<Vec<f64>, MnaError> {
        if self.system.floating.is_empty() {
            return Ok(self.lu.solve(rhs)?);
        }
        let mut r = rhs.to_vec();
        for (g, &q) in self.system.floating.iter().zip(charges) {
            r[g.replaced_row] = q;
        }
        Ok(self.lu.solve(&r)?)
    }

    /// [`Self::solve_charge`] against caller-owned buffers: `pinned`
    /// carries the row-pinned copy of `rhs`, `out` the solution. No
    /// allocation once the buffers are at capacity.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors.
    pub fn solve_charge_into(
        &self,
        rhs: &[f64],
        charges: &[f64],
        ws: &mut MomentWorkspace,
        out: &mut Vec<f64>,
    ) -> Result<(), MnaError> {
        if self.system.floating.is_empty() {
            self.lu.solve_into(rhs, &mut ws.scratch, out)?;
            return Ok(());
        }
        ws.tmp.clear();
        ws.tmp.extend_from_slice(rhs);
        for (g, &q) in self.system.floating.iter().zip(charges) {
            ws.tmp[g.replaced_row] = q;
        }
        self.lu.solve_into(&ws.tmp, &mut ws.scratch, out)?;
        Ok(())
    }

    /// The underlying system.
    pub fn system(&self) -> &MnaSystem {
        self.system
    }

    /// Solves `G·x = rhs`.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors (dimension mismatch).
    pub fn solve_g(&self, rhs: &[f64]) -> Result<Vec<f64>, MnaError> {
        Ok(self.lu.solve(rhs)?)
    }

    /// Solves `G·x = rhs` into a caller-owned buffer (see
    /// [`Self::solve_g`]; no allocation once buffers are at capacity).
    ///
    /// # Errors
    ///
    /// Propagates numeric errors (dimension mismatch).
    pub fn solve_g_into(
        &self,
        rhs: &[f64],
        ws: &mut MomentWorkspace,
        out: &mut Vec<f64>,
    ) -> Result<(), MnaError> {
        self.lu.solve_into(rhs, &mut ws.scratch, out)?;
        Ok(())
    }

    /// DC solution for source values `u`: `x = G̃⁻¹·B·u`, with each
    /// floating group (§3.1) held at its *initial* charge — the operating-
    /// point semantics. Use [`MomentEngine::dc_with_charges`] to pick the
    /// group charges explicitly (superposition pieces use zero).
    ///
    /// # Errors
    ///
    /// Propagates numeric errors.
    pub fn dc(&self, u: &[f64]) -> Result<Vec<f64>, MnaError> {
        let q0: Vec<f64> = self
            .system
            .floating
            .iter()
            .map(|g| g.initial_charge)
            .collect();
        self.dc_with_charges(u, &q0)
    }

    /// DC solution with explicit floating-group charges.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors.
    pub fn dc_with_charges(&self, u: &[f64], charges: &[f64]) -> Result<Vec<f64>, MnaError> {
        self.solve_charge(&self.system.b_times(u), charges)
    }

    /// Particular solution `x_p(t) = a + b·t` for the paper's excitation
    /// class `u(t) = u0 + u1·t` (eq. (6) in descriptor form):
    /// `b = G⁻¹·B·u1`, `a = G⁻¹·(B·u0 - C·b)`.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors.
    pub fn particular(&self, u0: &[f64], u1: &[f64]) -> Result<(Vec<f64>, Vec<f64>), MnaError> {
        let zeros = vec![0.0; self.system.floating.len()];
        let b = self.solve_charge(&self.system.b_times(u1), &zeros)?;
        let mut rhs = self.system.b_times(u0);
        let cb = self.system.c_times(&b);
        for (r, c) in rhs.iter_mut().zip(&cb) {
            *r -= c;
        }
        let a = self.solve_charge(&rhs, &zeros)?;
        Ok((a, b))
    }

    /// Determines the `t = 0⁻` dynamic state: the DC solution at the
    /// sources' initial values, with explicit element initial conditions
    /// (paper §5.2) overriding the equilibrium values.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors from the DC solve.
    pub fn initial_state(&self) -> Result<InitialState, MnaError> {
        let u_pre = self.system.initial_source_values();
        let dc = self.dc(&u_pre)?;
        let cap_voltages = self
            .system
            .caps
            .iter()
            .map(|cap| {
                cap.initial_voltage
                    .unwrap_or_else(|| self.system.cap_voltage(cap, &dc))
            })
            .collect();
        let inductor_currents = self
            .system
            .inductors
            .iter()
            .map(|ind| {
                ind.initial_current
                    .unwrap_or_else(|| self.system.inductor_current(ind, &dc))
            })
            .collect();
        Ok(InitialState {
            cap_voltages,
            inductor_currents,
            dc_solution: dc,
        })
    }

    /// `C·x` where only the *dynamic* components of `x` are known: builds
    /// the charge/flux vector element-wise from capacitor voltages and
    /// inductor currents.
    pub fn charge_vector(&self, cap_voltages: &[f64], inductor_currents: &[f64]) -> Vec<f64> {
        let mut w = vec![0.0; self.system.num_unknowns()];
        for (cap, &v) in self.system.caps.iter().zip(cap_voltages) {
            if let Some(ia) = cap.ia {
                w[ia] += cap.farads * v;
            }
            if let Some(ib) = cap.ib {
                w[ib] -= cap.farads * v;
            }
        }
        for (ind, &i) in self.system.inductors.iter().zip(inductor_currents) {
            w[ind.branch] -= ind.henries * i;
        }
        w
    }

    /// Solves the instantaneous (`t = 0⁺`) circuit: capacitor voltages and
    /// inductor currents are frozen at the given state while the sources
    /// sit at `u`. Used to obtain the full `x(0⁺)` vector — and hence
    /// `m_{-1} = x_h(0)` — for nonequilibrium initial conditions.
    ///
    /// Capacitor *loops* (e.g. a coupling capacitor bridging two grounded
    /// ones) make the voltage constraints redundant and the exact
    /// constrained system singular; the solve then retries with a tiny
    /// series resistance (`~1e-9` of the smallest circuit resistance) on
    /// each capacitor branch, which resolves the redundancy with
    /// negligible perturbation.
    ///
    /// # Errors
    ///
    /// [`MnaError::NoDcSolution`] if the constrained system is singular
    /// even after regularization.
    pub fn instantaneous(&self, state: &InitialState, u: &[f64]) -> Result<Vec<f64>, MnaError> {
        match self.instantaneous_inner(state, u, 0.0) {
            Ok(x) => Ok(x),
            Err(MnaError::NoDcSolution) => {
                // Series-resistance regularization. The resistances must
                // scale *inversely* with capacitance so that the implied
                // impulsive currents split in proportion to C — the
                // physical charge-sharing ratio (a uniform ε would divide
                // resistively and give the wrong instantaneous voltages
                // on capacitor dividers).
                let g_max = self.system.g.max_abs().max(1.0);
                let pass1 = self.instantaneous_inner(state, u, 1e-9 / g_max)?;
                // The first pass resolves inconsistent capacitor voltages
                // through the ε resistances, which leaves impulse-scale
                // remnants (~V/ε) in the branch-current unknowns. Re-solve
                // from the now-consistent capacitor voltages so currents
                // take their finite post-impulse values.
                let caps2: Vec<f64> = self
                    .system
                    .caps
                    .iter()
                    .map(|cap| self.system.cap_voltage(cap, &pass1))
                    .collect();
                let state2 = InitialState {
                    cap_voltages: caps2,
                    inductor_currents: state.inductor_currents.clone(),
                    dc_solution: state.dc_solution.clone(),
                };
                self.instantaneous_inner(&state2, u, 1e-9 / g_max)
            }
            Err(e) => Err(e),
        }
    }

    fn instantaneous_inner(
        &self,
        state: &InitialState,
        u: &[f64],
        eps: f64,
    ) -> Result<Vec<f64>, MnaError> {
        let sys = self.system;
        let n = sys.num_unknowns();
        let nc = sys.caps.len();
        // Augmented system: original unknowns + one current per capacitor.
        let mut a = Matrix::zeros(n + nc, n + nc);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = sys.g[(i, j)];
            }
        }
        let mut rhs = sys.b_times(u);
        rhs.resize(n + nc, 0.0);
        // Inductor branches: replace the voltage equation with i = i_L(0).
        for (ind, &i0) in sys.inductors.iter().zip(&state.inductor_currents) {
            let m = ind.branch;
            for j in 0..n + nc {
                a[(m, j)] = 0.0;
            }
            a[(m, m)] = 1.0;
            rhs[m] = i0;
        }
        // Capacitors: add a branch current unknown and pin the voltage
        // (minus an optional ε/C·i series term for loop/floating-node
        // regularization — inverse-capacitance weighting makes the
        // impulsive currents split ∝ C, the charge-sharing ratio).
        let c_max = sys
            .caps
            .iter()
            .map(|c| c.farads)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for (k, (cap, &v0)) in sys.caps.iter().zip(&state.cap_voltages).enumerate() {
            let col = n + k;
            if let Some(ia) = cap.ia {
                a[(ia, col)] += 1.0;
                a[(col, ia)] += 1.0;
            }
            if let Some(ib) = cap.ib {
                a[(ib, col)] -= 1.0;
                a[(col, ib)] -= 1.0;
            }
            a[(col, col)] -= eps * c_max / cap.farads;
            rhs[col] = v0;
        }
        let lu = Lu::factor(&a)?;
        let mut x = lu.solve(&rhs)?;
        x.truncate(n);
        Ok(x)
    }

    /// Generates the moment sequence `[m_{-1}, m_0, …]` of a homogeneous
    /// response with initial vector `m_minus1 = x_h(0)` whose charge image
    /// is `c_xh0 = C·x_h(0)`. `count` is the total sequence length
    /// (including `m_{-1}`); an order-`q` AWE match needs `count = 2q`.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors.
    pub fn homogeneous_moments(
        &self,
        m_minus1: Vec<f64>,
        c_xh0: &[f64],
        count: usize,
    ) -> Result<Vec<Vec<f64>>, MnaError> {
        self.homogeneous_moments_with(&mut MomentWorkspace::new(), m_minus1, c_xh0, count)
    }

    /// [`Self::homogeneous_moments`] against a caller-owned workspace: the
    /// right-hand-side / product buffers are reused in place and each new
    /// moment vector comes out of the workspace pool, so a warm workspace
    /// makes the recursion's steady state allocate nothing per moment.
    /// Results are identical to the allocating path.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors.
    pub fn homogeneous_moments_with(
        &self,
        ws: &mut MomentWorkspace,
        m_minus1: Vec<f64>,
        c_xh0: &[f64],
        count: usize,
    ) -> Result<Vec<Vec<f64>>, MnaError> {
        let mut seq = Vec::with_capacity(count);
        seq.push(m_minus1);
        if count == 1 {
            return Ok(seq);
        }
        let n_float = self.system.floating.len();
        // Buffers borrowed out of the workspace for the duration (the
        // inner solves also need `&mut ws`), restored before returning.
        let mut rhs = std::mem::take(&mut ws.rhs);
        let mut zeros = std::mem::take(&mut ws.blk);
        zeros.clear();
        zeros.resize(n_float, 0.0);
        let outcome = (|| {
            // m_0 = -G̃⁻¹·(C̃·x_h(0)); the decaying subspace carries zero
            // group charge, so every floating row is pinned to 0.
            rhs.clear();
            rhs.extend(c_xh0.iter().map(|v| -v));
            let mut prev = ws.take();
            self.solve_charge_into(&rhs, &zeros, ws, &mut prev)?;
            for _ in 2..count {
                let mut cw = std::mem::take(&mut ws.cw);
                self.c_tilde_apply_into(&prev, &mut cw);
                rhs.clear();
                rhs.extend(cw.iter().map(|v| -v));
                ws.cw = cw;
                let mut next = ws.take();
                self.solve_charge_into(&rhs, &zeros, ws, &mut next)?;
                seq.push(std::mem::replace(&mut prev, next));
            }
            seq.push(prev);
            Ok(())
        })();
        ws.rhs = rhs;
        ws.blk = zeros;
        outcome.map(|()| seq)
    }

    /// Splits the §3.1 zero-pole (persistent charge) mode out of a
    /// homogeneous seed: returns `k0` with `G·k0 = 0` on conductive rows
    /// and `Q(k0) = Q(seed)` per floating group, subtracting it from the
    /// seed in place. Returns `None` when there are no floating groups or
    /// the seed carries no group charge.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors.
    fn split_zero_mode(&self, seed: &mut [f64]) -> Result<Option<Vec<f64>>, MnaError> {
        if self.system.floating.is_empty() {
            return Ok(None);
        }
        let q = self.system.group_charges(seed);
        if q.iter().all(|v| v.abs() == 0.0) {
            return Ok(None);
        }
        let zeros = vec![0.0; self.system.num_unknowns()];
        let k0 = self.solve_charge(&zeros, &q)?;
        for (s, k) in seed.iter_mut().zip(&k0) {
            *s -= k;
        }
        Ok(Some(k0))
    }

    /// Decomposes the circuit's full excitation (all source PWL waveforms
    /// plus nonequilibrium initial conditions) into superposition pieces
    /// with their moment sequences. `count` moments per piece (including
    /// `m_{-1}`); an order-`q` match needs `count = 2q`.
    ///
    /// # Errors
    ///
    /// * [`MnaError::NoExcitation`] if there is nothing to analyze.
    /// * Propagates DC/instantaneous solve failures.
    pub fn decompose(&self, count: usize) -> Result<Decomposition, MnaError> {
        self.decompose_with(&mut MomentWorkspace::new(), count)
    }

    /// [`Self::decompose`] against a caller-owned workspace. All pieces'
    /// moment recursions run in lockstep as one blocked multi-RHS
    /// resubstitution per moment (amortizing each L/U traversal across
    /// the pieces), with every recurring buffer drawn from the workspace —
    /// a warm workspace makes the recursion allocate nothing per moment.
    /// Results are identical to the allocating path.
    ///
    /// # Errors
    ///
    /// * [`MnaError::NoExcitation`] if there is nothing to analyze.
    /// * Propagates DC/instantaneous solve failures.
    pub fn decompose_with(
        &self,
        ws: &mut MomentWorkspace,
        count: usize,
    ) -> Result<Decomposition, MnaError> {
        let mut dec_span = awe_obs::span("mna.decompose");
        dec_span.note(count as f64, self.system.num_unknowns() as f64);
        let (state, protos) = self.build_protos()?;
        self.finish_decompose(ws, state, protos, count)
    }

    /// The recursion-and-merge tail of [`MomentEngine::decompose_with`]:
    /// runs the blocked lockstep moment recursion over prebuilt protos and
    /// assembles the merged pieces. Split out so the lane-merged
    /// [`decompose_lanes_with`] fallback path completes a lane through the
    /// *identical* statements as a scalar decomposition.
    fn finish_decompose(
        &self,
        ws: &mut MomentWorkspace,
        state: InitialState,
        mut protos: Vec<Proto>,
        count: usize,
    ) -> Result<Decomposition, MnaError> {
        let seqs = self.blocked_moments(ws, &mut protos, count)?;
        Ok(Decomposition {
            baseline: state.dc_solution,
            pieces: finish_pieces(protos, seqs),
        })
    }

    /// The proto-building phase of [`MomentEngine::decompose_with`]:
    /// initial state, the initial-condition piece, and one step/ramp piece
    /// per source transition — everything before the moment recursion.
    fn build_protos(&self) -> Result<(InitialState, Vec<Proto>), MnaError> {
        let sys = self.system;
        let state = self.initial_state()?;
        let mut protos: Vec<Proto> = Vec::new();

        // Initial-condition piece: only if the explicit ICs differ from
        // equilibrium.
        let has_ic_mismatch = {
            let eq_caps: Vec<f64> = sys
                .caps
                .iter()
                .map(|cap| sys.cap_voltage(cap, &state.dc_solution))
                .collect();
            let eq_inds: Vec<f64> = sys
                .inductors
                .iter()
                .map(|ind| sys.inductor_current(ind, &state.dc_solution))
                .collect();
            state
                .cap_voltages
                .iter()
                .zip(&eq_caps)
                .any(|(a, b)| (a - b).abs() > 1e-30)
                || state
                    .inductor_currents
                    .iter()
                    .zip(&eq_inds)
                    .any(|(a, b)| (a - b).abs() > 1e-30)
        };
        if has_ic_mismatch {
            let u_pre = sys.initial_source_values();
            let x0 = self.instantaneous(&state, &u_pre)?;
            let m_minus1: Vec<f64> = x0
                .iter()
                .zip(&state.dc_solution)
                .map(|(a, b)| a - b)
                .collect();
            // Charge image of the homogeneous seed: explicit ICs minus
            // equilibrium charges.
            let eq_caps: Vec<f64> = sys
                .caps
                .iter()
                .map(|cap| sys.cap_voltage(cap, &state.dc_solution))
                .collect();
            let eq_inds: Vec<f64> = sys
                .inductors
                .iter()
                .map(|ind| sys.inductor_current(ind, &state.dc_solution))
                .collect();
            let dv: Vec<f64> = state
                .cap_voltages
                .iter()
                .zip(&eq_caps)
                .map(|(a, b)| a - b)
                .collect();
            let di: Vec<f64> = state
                .inductor_currents
                .iter()
                .zip(&eq_inds)
                .map(|(a, b)| a - b)
                .collect();
            let _ = (&dv, &di); // retained for readers: C̃·m₋₁ equals
                                // charge_vector(dv, di) with floating
                                // rows zeroed.
            let n = sys.num_unknowns();
            let mut m_minus1 = m_minus1;
            // §3.1: split off the p = 0 charge mode — it persists forever
            // and belongs to the particular constant, not the transient.
            let k0 = self.split_zero_mode(&mut m_minus1)?;
            let a_piece = k0.unwrap_or_else(|| vec![0.0; n]);
            protos.push(Proto {
                kind: PieceKind::InitialCondition,
                at: 0.0,
                a: a_piece,
                b: vec![0.0; n],
                m_minus1,
                m_minus2: None,
            });
        }

        // Step and ramp pieces per source.
        for (col, src) in sys.sources.iter().enumerate() {
            let (_, ramps, steps) = src.waveform.decompose();
            for (t0, jump) in steps {
                let mut u = vec![0.0; sys.sources.len()];
                u[col] = jump;
                let zeros_q = vec![0.0; sys.floating.len()];
                let mut a = self.dc_with_charges(&u, &zeros_q)?;
                let mut m_minus1: Vec<f64> = if sys.has_floating_groups() {
                    // A step coupled through capacitors jumps floating
                    // nodes instantaneously (impulsive charge sharing);
                    // the homogeneous seed needs the true x(0⁺) from the
                    // regularized instantaneous solve.
                    let zero_state = InitialState {
                        cap_voltages: vec![0.0; sys.caps.len()],
                        inductor_currents: vec![0.0; sys.inductors.len()],
                        dc_solution: vec![0.0; sys.num_unknowns()],
                    };
                    let x0 = self.instantaneous(&zero_state, &u)?;
                    x0.iter().zip(&a).map(|(x, aa)| x - aa).collect()
                } else {
                    // Resistively separated circuits: x(0⁺) coincides with
                    // the particular at conductive nodes and with zero at
                    // capacitively held ones, so x_h(0) = -a directly.
                    a.iter().map(|v| -v).collect()
                };
                if let Some(k0) = self.split_zero_mode(&mut m_minus1)? {
                    for (aa, kk) in a.iter_mut().zip(&k0) {
                        *aa += kk;
                    }
                }
                protos.push(Proto {
                    kind: PieceKind::Step { source: col, jump },
                    at: t0,
                    a,
                    b: vec![0.0; sys.num_unknowns()],
                    m_minus1,
                    // A step's homogeneous slope at 0⁺ is impulsive for
                    // voltage-driven nodes; no finite m_{-2} exists.
                    m_minus2: None,
                });
            }
            for ramp in ramps {
                let mut u1 = vec![0.0; sys.sources.len()];
                u1[col] = ramp.slope;
                let u0 = vec![0.0; sys.sources.len()];
                let (mut a, b) = self.particular(&u0, &u1)?;
                let mut m_minus1: Vec<f64> = a.iter().map(|v| -v).collect();
                if let Some(k0) = self.split_zero_mode(&mut m_minus1)? {
                    for (aa, kk) in a.iter_mut().zip(&k0) {
                        *aa += kk;
                    }
                }
                // §4.3's m_{-2} term: ẋ_h(0) = ẋ(0⁺) - b, where ẋ(0⁺) is
                // the response rate with every state frozen at zero — the
                // instantaneous solve against the slope excitation u₁.
                let zero_state = InitialState {
                    cap_voltages: vec![0.0; sys.caps.len()],
                    inductor_currents: vec![0.0; sys.inductors.len()],
                    dc_solution: vec![0.0; sys.num_unknowns()],
                };
                let xdot0 = self.instantaneous(&zero_state, &u1)?;
                let m_minus2: Vec<f64> = xdot0.iter().zip(&b).map(|(x, bb)| x - bb).collect();
                protos.push(Proto {
                    kind: PieceKind::Ramp {
                        source: col,
                        slope: ramp.slope,
                    },
                    at: ramp.start,
                    a,
                    b,
                    m_minus1,
                    m_minus2: Some(m_minus2),
                });
            }
        }

        if protos.is_empty() && sys.sources.is_empty() {
            return Err(MnaError::NoExcitation);
        }
        Ok((state, protos))
    }

    /// The blocked lockstep moment recursion (§3.2, "solve many") over
    /// prebuilt protos, returning one moment sequence per proto (the
    /// proto's `m_minus1` is taken as the seed). Every piece advances one
    /// moment per block solve: the right-hand sides stack into one
    /// multi-RHS resubstitution, so each L/U traversal is paid once per
    /// moment instead of once per piece. Per-column arithmetic matches the
    /// single-RHS recursion exactly.
    #[allow(clippy::type_complexity)]
    fn blocked_moments(
        &self,
        ws: &mut MomentWorkspace,
        protos: &mut [Proto],
        count: usize,
    ) -> Result<Vec<Vec<Vec<f64>>>, MnaError> {
        let sys = self.system;
        let n = sys.num_unknowns();
        let np = protos.len();
        // Sequence length mirrors `homogeneous_moments`: `count == 1`
        // yields just `m_{-1}`, otherwise `m_{-1}` plus
        // `1 + (count - 2)` recursion steps.
        let extra = if count == 1 {
            0
        } else {
            1 + count.saturating_sub(2)
        };
        let mut seqs: Vec<Vec<Vec<f64>>> = protos
            .iter_mut()
            .map(|p| {
                let mut seq = Vec::with_capacity(1 + extra);
                seq.push(std::mem::take(&mut p.m_minus1));
                seq
            })
            .collect();
        if np > 0 && extra > 0 {
            let mut rhs = std::mem::take(&mut ws.rhs);
            let mut blk = std::mem::take(&mut ws.blk);
            let mut cw = std::mem::take(&mut ws.cw);
            let mut tmp = std::mem::take(&mut ws.tmp);
            let outcome = (|| {
                rhs.clear();
                rhs.resize(np * n, 0.0);
                for step in 0..extra {
                    // One span per blocked moment solve: all pieces
                    // advance one moment in this region.
                    let mut step_span = awe_obs::span("moment.solve");
                    step_span.note(step as f64, np as f64);
                    for (p, seq) in seqs.iter().enumerate() {
                        let prev = seq.last().expect("seeded sequence");
                        // The seed's charge image uses the dense C̃ (as
                        // the single-RHS path does via `c_tilde_times`);
                        // later steps go through the sparse image.
                        if step == 0 {
                            sys.c_tilde.mul_vec_into(prev, &mut cw);
                        } else {
                            self.c_tilde_apply_into(prev, &mut cw);
                        }
                        let chunk = &mut rhs[p * n..(p + 1) * n];
                        for (d, v) in chunk.iter_mut().zip(&cw) {
                            *d = -v;
                        }
                        // Decaying subspace carries zero group charge:
                        // pin every floating row to 0.
                        for g in &sys.floating {
                            chunk[g.replaced_row] = 0.0;
                        }
                    }
                    match &self.lu {
                        Factorization::Sparse(lu) => {
                            lu.solve_multi_into(&rhs, np, &mut ws.scratch, &mut blk)?;
                        }
                        Factorization::Dense(lu) => {
                            blk.clear();
                            blk.resize(np * n, 0.0);
                            for p in 0..np {
                                lu.solve_into(&rhs[p * n..(p + 1) * n], &mut tmp)?;
                                blk[p * n..(p + 1) * n].copy_from_slice(&tmp);
                            }
                        }
                    }
                    for (p, seq) in seqs.iter_mut().enumerate() {
                        let mut m = ws.take();
                        m.clear();
                        m.extend_from_slice(&blk[p * n..(p + 1) * n]);
                        seq.push(m);
                    }
                }
                Ok::<(), NumericError>(())
            })();
            ws.rhs = rhs;
            ws.blk = blk;
            ws.cw = cw;
            ws.tmp = tmp;
            outcome?;
        }
        Ok(seqs)
    }

    /// The matrix `M = G̃⁻¹·C̃`, whose nonzero eigenvalues `μ` give the
    /// circuit's exact *decaying* poles as `p = -1/μ` (used by the
    /// reference simulator's pole extraction for Tables I and II). The
    /// §3.1 charge rows remove the persistent `p = 0` modes of floating
    /// groups from the spectrum.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors.
    pub fn g_inv_c(&self) -> Result<Matrix, MnaError> {
        let n = self.system.num_unknowns();
        let mut out = Matrix::zeros(n, self.system.c_tilde.cols());
        for j in 0..self.system.c_tilde.cols() {
            let col = self.system.c_tilde.col(j);
            let x = self.lu.solve(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }
}

/// The sort-and-merge tail of a decomposition: pieces sharing an onset
/// time merge into one combined homogeneous response (paper eq. (8)).
/// Linearity adds the particular parts and the moment sequences; the
/// merged reduction matches the paper's single-seed formulation and is
/// much better conditioned than reducing each fragment alone.
fn finish_pieces(protos: impl IntoIterator<Item = Proto>, seqs: Vec<Vec<Vec<f64>>>) -> Vec<Piece> {
    let mut pieces: Vec<Piece> = protos
        .into_iter()
        .zip(seqs)
        .map(|(p, moments)| Piece {
            kind: p.kind,
            at: p.at,
            a: p.a,
            b: p.b,
            moments,
            m_minus2: p.m_minus2,
        })
        .collect();
    pieces.sort_by(|x, y| x.at.partial_cmp(&y.at).unwrap_or(std::cmp::Ordering::Equal));

    let mut merged: Vec<Piece> = Vec::with_capacity(pieces.len());
    for piece in pieces {
        match merged.last_mut() {
            Some(prev) if prev.at == piece.at => {
                for (pa, qa) in prev.a.iter_mut().zip(&piece.a) {
                    *pa += qa;
                }
                for (pb, qb) in prev.b.iter_mut().zip(&piece.b) {
                    *pb += qb;
                }
                for (pm, qm) in prev.moments.iter_mut().zip(&piece.moments) {
                    for (x, y) in pm.iter_mut().zip(qm) {
                        *x += y;
                    }
                }
                // The merged slope exists only if every member has one.
                prev.m_minus2 = match (prev.m_minus2.take(), &piece.m_minus2) {
                    (Some(mut p), Some(q)) => {
                        for (x, y) in p.iter_mut().zip(q) {
                            *x += y;
                        }
                        Some(p)
                    }
                    _ => None,
                };
                prev.kind = PieceKind::Combined;
            }
            _ => merged.push(piece),
        }
    }
    merged
}

/// Decomposes up to [`LANE_WIDTH`] structurally identical systems in
/// lockstep against one lane-refactored factorization: the batch tape
/// VM's multi-RHS moment op. `engines[i]` must hold lane `i` of `lanes`
/// extracted as its scalar factorization (so the proto-building solves go
/// through exactly the values lane `i` carries).
///
/// Per lane the result is **bit-identical** to
/// `engines[i].decompose_with(ws, count)`: proto building runs through
/// each lane's own engine; the blocked recursion runs merged through
/// [`LaneLu::solve_multi_into`] (proven bitwise against the scalar
/// multi-RHS solve) whenever every lane carries the same piece count, and
/// falls back to the per-lane scalar recursion — the identical
/// statements — when the piece counts diverge or a lane's proto building
/// fails. A failing lane yields its own `Err` without disturbing its
/// neighbors.
///
/// # Panics
///
/// Panics if `engines` is empty or holds more than [`LANE_WIDTH`]
/// entries.
pub fn decompose_lanes_with(
    engines: &[MomentEngine<'_>],
    lanes: &LaneLu,
    ws: &mut MomentWorkspace,
    count: usize,
) -> Vec<Result<Decomposition, MnaError>> {
    assert!(
        !engines.is_empty() && engines.len() <= LANE_WIDTH,
        "1..={LANE_WIDTH} lane engines required"
    );
    let built: Vec<Result<(InitialState, Vec<Proto>), MnaError>> =
        engines.iter().map(|e| e.build_protos()).collect();
    let n = lanes.dim();
    // Sequence length mirrors `blocked_moments` exactly.
    let extra = if count == 1 {
        0
    } else {
        1 + count.saturating_sub(2)
    };
    let np = match &built[0] {
        Ok((_, p)) => p.len(),
        Err(_) => 0,
    };
    let mergeable = engines.len() >= 2
        && np > 0
        && extra > 0
        && built
            .iter()
            .all(|b| matches!(b, Ok((_, p)) if p.len() == np));
    if !mergeable {
        // Divergent lanes (different piece structure, or a failed proto
        // build): complete each lane through the scalar recursion — the
        // same statements `decompose_with` runs.
        return built
            .into_iter()
            .zip(engines)
            .map(|(b, e)| {
                b.and_then(|(state, protos)| e.finish_decompose(ws, state, protos, count))
            })
            .collect();
    }
    let mut sp = awe_obs::span("mna.decompose_lanes");
    sp.note(count as f64, (n * engines.len()) as f64);
    let mut states = Vec::with_capacity(engines.len());
    let mut protos_all: Vec<Vec<Proto>> = Vec::with_capacity(engines.len());
    for b in built {
        let (s, p) = b.expect("mergeable implies all lanes built");
        states.push(s);
        protos_all.push(p);
    }
    let mut seqs: Vec<Vec<Vec<Vec<f64>>>> = protos_all
        .iter_mut()
        .map(|protos| {
            protos
                .iter_mut()
                .map(|p| {
                    let mut seq = Vec::with_capacity(1 + extra);
                    seq.push(std::mem::take(&mut p.m_minus1));
                    seq
                })
                .collect()
        })
        .collect();
    let mut rhs = std::mem::take(&mut ws.rhs);
    let mut blk = std::mem::take(&mut ws.blk);
    let mut cw = std::mem::take(&mut ws.cw);
    let outcome = (|| {
        rhs.clear();
        // Lane-blocked layout: `LANE_WIDTH` consecutive `np × n` blocks
        // (absent/dead lanes stay zero).
        rhs.resize(LANE_WIDTH * np * n, 0.0);
        for step in 0..extra {
            let mut step_span = awe_obs::span("moment.solve");
            step_span.note(step as f64, (np * engines.len()) as f64);
            for (lane, eng) in engines.iter().enumerate() {
                let sys = eng.system;
                for (p, seq) in seqs[lane].iter().enumerate() {
                    let prev = seq.last().expect("seeded sequence");
                    // Dense C̃ for the seed's charge image, sparse image
                    // after — mirroring the scalar recursion.
                    if step == 0 {
                        sys.c_tilde.mul_vec_into(prev, &mut cw);
                    } else {
                        eng.c_tilde_apply_into(prev, &mut cw);
                    }
                    let base = lane * np * n + p * n;
                    let chunk = &mut rhs[base..base + n];
                    for (d, v) in chunk.iter_mut().zip(&cw) {
                        *d = -v;
                    }
                    for g in &sys.floating {
                        chunk[g.replaced_row] = 0.0;
                    }
                }
            }
            lanes.solve_multi_into(&rhs, np, &mut ws.scratch, &mut blk)?;
            for (lane, lane_seqs) in seqs.iter_mut().enumerate() {
                for (p, seq) in lane_seqs.iter_mut().enumerate() {
                    let base = lane * np * n + p * n;
                    let mut m = ws.take();
                    m.clear();
                    m.extend_from_slice(&blk[base..base + n]);
                    seq.push(m);
                }
            }
        }
        Ok::<(), NumericError>(())
    })();
    ws.rhs = rhs;
    ws.blk = blk;
    ws.cw = cw;
    match outcome {
        Ok(()) => states
            .into_iter()
            .zip(protos_all)
            .zip(seqs)
            .map(|((state, protos), sq)| {
                Ok(Decomposition {
                    baseline: state.dc_solution,
                    pieces: finish_pieces(protos, sq),
                })
            })
            .collect(),
        Err(e) => engines
            .iter()
            .map(|_| Err(MnaError::Numeric(e.clone())))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::{Circuit, Waveform, GROUND};

    /// Single-pole RC: V —R— n1 —C— gnd. τ = RC.
    fn rc1(r: f64, c: f64, wf: Waveform) -> (Circuit, usize) {
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, wf).unwrap();
        ckt.add_resistor("R1", n_in, n1, r).unwrap();
        ckt.add_capacitor("C1", n1, GROUND, c).unwrap();
        (ckt, n1)
    }

    #[test]
    fn step_piece_moments_match_single_pole_theory() {
        // v_h(t) = -5·e^{-t/τ} for a 0→5 step; k = -5, p = -1/τ.
        // m_{-1} = k = -5; m_j = k·p^{-(j+1)} = -5·(-τ)^{j+1}.
        let (r, c) = (1e3, 1e-9);
        let tau = r * c;
        let (ckt, n1) = rc1(r, c, Waveform::step(0.0, 5.0));
        let sys = MnaSystem::build(&ckt).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let dec = eng.decompose(4).unwrap();
        assert_eq!(dec.pieces.len(), 1);
        let piece = &dec.pieces[0];
        assert!(matches!(piece.kind, PieceKind::Step { jump, .. } if jump == 5.0));
        let i1 = sys.unknown_of_node(n1).unwrap();
        // Particular = 5 V everywhere after the step.
        assert!((piece.a[i1] - 5.0).abs() < 1e-9);
        let m: Vec<f64> = piece.moments.iter().map(|v| v[i1]).collect();
        assert!((m[0] + 5.0).abs() < 1e-9, "m_-1 = {}", m[0]);
        assert!((m[1] - 5.0 * tau).abs() < 1e-9 * tau, "m_0 = {}", m[1]);
        assert!((m[2] + 5.0 * tau * tau).abs() < 1e-6 * tau * tau);
        assert!((m[3] - 5.0 * tau.powi(3)).abs() < 1e-3 * tau.powi(3));
    }

    #[test]
    fn baseline_reflects_pre_transition_dc() {
        let (ckt, n1) = rc1(1e3, 1e-9, Waveform::step(2.0, 5.0));
        let sys = MnaSystem::build(&ckt).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let dec = eng.decompose(2).unwrap();
        let i1 = sys.unknown_of_node(n1).unwrap();
        assert!((dec.baseline[i1] - 2.0).abs() < 1e-12);
        // The step piece jumps by 3.
        match dec.pieces[0].kind {
            PieceKind::Step { jump, .. } => assert!((jump - 3.0).abs() < 1e-12),
            ref k => panic!("unexpected kind {k:?}"),
        }
    }

    #[test]
    fn ramp_piece_particular_solution() {
        // Ramp slope s: particular at the cap node is s·t - s·τ
        // (the classic RC ramp lag).
        let (r, c) = (2e3, 0.5e-9);
        let tau = r * c;
        let slope = 5.0 / 1e-9;
        let (ckt, n1) = rc1(r, c, Waveform::rising_step(0.0, 5.0, 1e-9));
        let sys = MnaSystem::build(&ckt).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let dec = eng.decompose(2).unwrap();
        // Two ramps: +slope at 0, -slope at 1 ns.
        assert_eq!(dec.pieces.len(), 2);
        let i1 = sys.unknown_of_node(n1).unwrap();
        let p0 = &dec.pieces[0];
        assert_eq!(p0.at, 0.0);
        assert!((p0.b[i1] - slope).abs() < 1e-3);
        assert!((p0.a[i1] + slope * tau).abs() < 1e-3, "a = {}", p0.a[i1]);
        // m_{-1} = -a: the homogeneous part starts at +s·τ.
        assert!((p0.moments[0][i1] - slope * tau).abs() < 1e-3);
        let p1 = &dec.pieces[1];
        assert_eq!(p1.at, 1e-9);
        assert!((p1.b[i1] + slope).abs() < 1e-3);
    }

    #[test]
    fn initial_condition_piece() {
        // No source transition; C1 pre-charged to 3 V while equilibrium is
        // 0 V (source DC 0). Response is pure exponential decay.
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::dc(0.0))
            .unwrap();
        ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
        ckt.add_capacitor_ic("C1", n1, GROUND, 1e-9, Some(3.0))
            .unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let dec = eng.decompose(4).unwrap();
        assert_eq!(dec.pieces.len(), 1);
        let piece = &dec.pieces[0];
        assert_eq!(piece.kind, PieceKind::InitialCondition);
        let i1 = sys.unknown_of_node(n1).unwrap();
        // x_h(0) at n1 = 3 V (k = 3, p = -1/τ): m_0 = k/p = -3·τ.
        let tau = 1e3 * 1e-9;
        assert!((piece.moments[0][i1] - 3.0).abs() < 1e-9);
        assert!((piece.moments[1][i1] + 3.0 * tau).abs() < 1e-9 * tau);
    }

    #[test]
    fn equilibrium_ic_produces_no_piece() {
        // Explicit IC equal to the equilibrium value: no IC piece.
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::step(2.0, 5.0))
            .unwrap();
        ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
        ckt.add_capacitor_ic("C1", n1, GROUND, 1e-9, Some(2.0))
            .unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let dec = eng.decompose(2).unwrap();
        assert_eq!(dec.pieces.len(), 1); // just the step
        assert!(matches!(dec.pieces[0].kind, PieceKind::Step { .. }));
    }

    #[test]
    fn instantaneous_solve_charge_sharing() {
        // Two caps on a resistor bridge; freeze cap voltages, check the
        // instantaneous node voltages equal the frozen values.
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        ckt.add_resistor("R1", n1, n2, 1e3).unwrap();
        ckt.add_resistor("R2", n2, GROUND, 1e3).unwrap();
        ckt.add_capacitor_ic("C1", n1, GROUND, 1e-9, Some(4.0))
            .unwrap();
        ckt.add_capacitor_ic("C2", n2, GROUND, 2e-9, Some(1.0))
            .unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let state = eng.initial_state().unwrap();
        assert_eq!(state.cap_voltages, vec![4.0, 1.0]);
        let x0 = eng.instantaneous(&state, &[]).unwrap();
        let (i1, i2) = (
            sys.unknown_of_node(n1).unwrap(),
            sys.unknown_of_node(n2).unwrap(),
        );
        assert!((x0[i1] - 4.0).abs() < 1e-12);
        assert!((x0[i2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inductor_instantaneous_current_frozen() {
        // V(0)=0 always; L carries 0.5 A initial current into R: at 0+ the
        // node voltage is forced to -i·R... current flows a→b through L
        // into n1 then through R to ground: v(n1) = i·R.
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::dc(0.0))
            .unwrap();
        ckt.add_inductor_ic("L1", n_in, n1, 1e-9, Some(0.5))
            .unwrap();
        ckt.add_resistor("R1", n1, GROUND, 10.0).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let mut state = eng.initial_state().unwrap();
        state.inductor_currents = vec![0.5];
        let x0 = eng.instantaneous(&state, &[0.0]).unwrap();
        let i1 = sys.unknown_of_node(n1).unwrap();
        assert!((x0[i1] - 5.0).abs() < 1e-12, "v(n1) = {}", x0[i1]);
    }

    #[test]
    fn charge_vector_is_c_times_state() {
        let (ckt, _) = rc1(1e3, 1e-9, Waveform::dc(0.0));
        let sys = MnaSystem::build(&ckt).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let w = eng.charge_vector(&[2.0], &[]);
        // C·x for x with v(n1) = 2: entry at n1 = 2e-9.
        let nz: Vec<f64> = w.iter().copied().filter(|v| *v != 0.0).collect();
        assert_eq!(nz, vec![2e-9]);
    }

    #[test]
    fn floating_node_solved_by_charge_conservation() {
        // §3.1: a node connected only through capacitors has no
        // conductive DC solution; the charge-conservation row supplies
        // it. Capacitor divider: V steps 0→1 through C1 into floating n2
        // with C2 to ground → v(n2) jumps to V·C1/(C1+C2) by charge
        // sharing (from zero stored charge) and stays there.
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        ckt.add_vsource("V1", n1, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        ckt.add_capacitor("C1", n1, n2, 3e-12).unwrap();
        ckt.add_capacitor("C2", n2, GROUND, 1e-12).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        assert!(sys.has_floating_groups());
        assert_eq!(sys.floating.len(), 1);
        let eng = MomentEngine::new(&sys).unwrap();
        let dec = eng.decompose(2).unwrap();
        let i2 = sys.unknown_of_node(n2).unwrap();
        let piece = &dec.pieces[0];
        // Settles (instantly) at 3/(3+1) = 0.75 V.
        let v_final = dec.baseline[i2] + piece.a[i2];
        assert!((v_final - 0.75).abs() < 1e-6, "v_final = {v_final}");
        // No decaying transient for a pure capacitor divider.
        assert!(piece.moments[0][i2].abs() < 1e-6);
    }

    #[test]
    fn driven_floating_group_rejected() {
        // A current source pumping a capacitor-only node accumulates
        // charge without bound: no DC solution exists.
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        ckt.add_isource("I1", GROUND, n1, Waveform::dc(1e-3))
            .unwrap();
        ckt.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
        assert!(matches!(
            MnaSystem::build(&ckt),
            Err(MnaError::NoDcSolution)
        ));
    }

    #[test]
    fn floating_group_initial_charge_from_ics() {
        // Pre-charged floating capacitor pair: the DC operating point
        // honors the stored charge.
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        ckt.add_vsource("V1", n1, GROUND, Waveform::dc(0.0))
            .unwrap();
        ckt.add_capacitor("C1", n1, n2, 1e-12).unwrap();
        ckt.add_capacitor_ic("C2", n2, GROUND, 1e-12, Some(2.0))
            .unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        // Group charge from the explicit IC: C2·2 V = 2e-12 C.
        assert!((sys.floating[0].initial_charge - 2e-12).abs() < 1e-24);
        let eng = MomentEngine::new(&sys).unwrap();
        let state = eng.initial_state().unwrap();
        let i2 = sys.unknown_of_node(n2).unwrap();
        // Charge 2e-12 over total 2e-12 F (n1 held at 0 by V1):
        // v(n2) = Q/(C1+C2) = 1 V at equilibrium.
        assert!((state.dc_solution[i2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn g_inv_c_eigenvalue_gives_pole() {
        let (r, c) = (1e3, 1e-9);
        let (ckt, _) = rc1(r, c, Waveform::dc(0.0));
        let sys = MnaSystem::build(&ckt).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let m = eng.g_inv_c().unwrap();
        let eig = awe_numeric::eigenvalues(&m).unwrap();
        // One nonzero eigenvalue μ = τ → pole p = -1/μ = -1/RC.
        let mu = eig
            .iter()
            .map(|z| z.re)
            .fold(0.0f64, |acc, v| if v.abs() > acc.abs() { v } else { acc });
        assert!(((-1.0 / mu) + 1.0 / (r * c)).abs() < 1.0, "mu = {mu}");
    }
}
