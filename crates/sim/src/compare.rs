//! Waveform comparison metrics: AWE versus the reference simulation.
//!
//! The paper reports per-figure error terms (§3.4) and delay agreements;
//! these helpers measure the same quantities against the simulated
//! waveform so EXPERIMENTS.md can print paper-vs-measured rows.

use std::fmt;

use awe_circuit::NodeId;

use crate::transient::TransientResult;

/// Why a comparison metric could not be computed.
///
/// `NonFinite` exists so no caller can repeat the original silent-pass
/// bug: a divergent model makes the trapezoidal L² sum overflow to `inf`
/// and then NaN (`inf × 0` at degenerate samples), and `NaN > tol` is
/// `false` — the comparison must *fail loudly* instead of returning a
/// number that waves everything through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompareError {
    /// The reference waveform has zero transition energy (flat response);
    /// a relative error is undefined.
    ZeroEnergy,
    /// The error integral is not finite — the model or the reference
    /// produced `inf`/NaN samples over the comparison window.
    NonFinite,
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::ZeroEnergy => write!(f, "reference transition energy is zero"),
            CompareError::NonFinite => write!(f, "comparison produced non-finite samples"),
        }
    }
}

impl std::error::Error for CompareError {}

/// Relative `L²` error of an approximation `f` against the simulated
/// waveform of `node`, integrated over the simulated samples with the
/// trapezoidal rule and normalized by the waveform's *transition energy*
/// (deviation from its final value, which is the transient the paper's
/// error term measures).
///
/// # Errors
///
/// * [`CompareError::ZeroEnergy`] if the reference transition energy is
///   zero (nothing to compare against).
/// * [`CompareError::NonFinite`] if either waveform contributes
///   `inf`/NaN samples — the result is tagged rather than silently
///   propagated so `err > tol` checks cannot pass vacuously.
pub fn relative_l2_vs_sim(
    sim: &TransientResult,
    node: NodeId,
    f: impl Fn(f64) -> f64,
) -> Result<f64, CompareError> {
    let wave = sim.waveform(node);
    if wave.len() < 2 {
        return Err(CompareError::ZeroEnergy);
    }
    let v_final = wave.last().expect("non-empty").1;
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for w in wave.windows(2) {
        let ((t0, v0), (t1, v1)) = (w[0], w[1]);
        let dt = t1 - t0;
        let d0 = v0 - f(t0);
        let d1 = v1 - f(t1);
        num += 0.5 * (d0 * d0 + d1 * d1) * dt;
        let e0 = v0 - v_final;
        let e1 = v1 - v_final;
        den += 0.5 * (e0 * e0 + e1 * e1) * dt;
    }
    if !num.is_finite() || !den.is_finite() {
        return Err(CompareError::NonFinite);
    }
    if den <= 0.0 {
        return Err(CompareError::ZeroEnergy);
    }
    Ok((num / den).sqrt())
}

/// Maximum absolute deviation between `f` and the simulated waveform over
/// the simulated samples. A non-finite deviation at any sample reports as
/// `inf` — `f64::max` would otherwise silently drop NaN operands and hide
/// a divergent model.
pub fn max_abs_vs_sim(sim: &TransientResult, node: NodeId, f: impl Fn(f64) -> f64) -> f64 {
    sim.waveform(node)
        .iter()
        .map(|&(t, v)| {
            let d = (v - f(t)).abs();
            if d.is_finite() {
                d
            } else {
                f64::INFINITY
            }
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{simulate, TransientOptions};
    use awe_circuit::{Circuit, Waveform, GROUND};

    fn rc() -> (Circuit, NodeId, f64) {
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 5.0))
            .unwrap();
        ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
        ckt.add_capacitor("C1", n1, GROUND, 1e-9).unwrap();
        (ckt, n1, 1e-6)
    }

    #[test]
    fn analytic_model_scores_near_zero() {
        let (ckt, n1, tau) = rc();
        let sim = simulate(&ckt, TransientOptions::new(6.0 * tau)).unwrap();
        let err = relative_l2_vs_sim(&sim, n1, |t| 5.0 * (1.0 - (-t / tau).exp())).unwrap();
        assert!(err < 1e-3, "err = {err}");
        let worst = max_abs_vs_sim(&sim, n1, |t| 5.0 * (1.0 - (-t / tau).exp()));
        assert!(worst < 5e-3, "worst = {worst}");
    }

    #[test]
    fn wrong_model_scores_large() {
        let (ckt, n1, tau) = rc();
        let sim = simulate(&ckt, TransientOptions::new(6.0 * tau)).unwrap();
        // Model with 3x too slow a time constant.
        let err = relative_l2_vs_sim(&sim, n1, |t| 5.0 * (1.0 - (-t / (3.0 * tau)).exp())).unwrap();
        assert!(err > 0.3, "err = {err}");
    }

    #[test]
    fn flat_reference_rejected() {
        let (ckt, _, tau) = rc();
        let sim = simulate(&ckt, TransientOptions::new(6.0 * tau)).unwrap();
        // Ground is identically zero → zero transition energy.
        assert_eq!(
            relative_l2_vs_sim(&sim, GROUND, |_| 0.0),
            Err(CompareError::ZeroEnergy)
        );
    }

    #[test]
    fn divergent_model_is_tagged_not_nan() {
        let (ckt, n1, tau) = rc();
        let sim = simulate(&ckt, TransientOptions::new(6.0 * tau)).unwrap();
        // A model that blows up mid-window: the old code returned NaN here
        // and `NaN > tol` silently passed every tolerance check.
        let diverging = |t: f64| {
            if t > 2.0 * tau {
                f64::INFINITY
            } else {
                0.0
            }
        };
        assert_eq!(
            relative_l2_vs_sim(&sim, n1, diverging),
            Err(CompareError::NonFinite)
        );
        assert_eq!(max_abs_vs_sim(&sim, n1, diverging), f64::INFINITY);
        let nan_model = |_: f64| f64::NAN;
        assert_eq!(
            relative_l2_vs_sim(&sim, n1, nan_model),
            Err(CompareError::NonFinite)
        );
        assert_eq!(max_abs_vs_sim(&sim, n1, nan_model), f64::INFINITY);
    }
}
