//! Cross-validation of the AWE engine against the reference simulator on
//! generated workloads — beyond the paper's hand-built figures.

use awesim::circuit::generators::{coupled_rc_lines, random_rc_tree, rc_mesh, rlc_ladder};
use awesim::circuit::stage::StageBuilder;
use awesim::circuit::{Circuit, Waveform, GROUND};
use awesim::core::AweEngine;
use awesim::sim::{relative_l2_vs_sim, simulate, TransientOptions};

/// AWE order-3 delays on random RC trees agree with the simulator within
/// a few percent across seeds.
#[test]
fn random_tree_delays_match_sim() {
    for seed in [1u64, 17, 99, 256] {
        let g = random_rc_tree(
            12,
            (10.0, 300.0),
            (0.05e-12, 0.5e-12),
            seed,
            Waveform::step(0.0, 1.0),
        );
        let engine = AweEngine::new(&g.circuit).expect("builds");
        let approx = engine.approximate(g.output, 3).expect("order 3");
        let horizon = approx.horizon();
        let sim = simulate(&g.circuit, TransientOptions::new(horizon)).expect("sim");
        let d_awe = approx.delay_50().expect("rising");
        let d_sim = sim.delay_50(g.output).expect("rising");
        assert!(
            ((d_awe - d_sim) / d_sim).abs() < 0.03,
            "seed {seed}: {d_awe} vs {d_sim}"
        );
        let err = relative_l2_vs_sim(&sim, g.output, |t| approx.eval(t)).expect("err");
        assert!(err < 0.05, "seed {seed}: waveform error {err}");
    }
}

/// Meshes (the Lin–Mead regime): AWE handles resistor loops through the
/// same pipeline.
#[test]
fn mesh_waveforms_match_sim() {
    let g = rc_mesh(3, 3, 25.0, 0.2e-12, Waveform::step(0.0, 5.0));
    let engine = AweEngine::new(&g.circuit).expect("builds");
    let approx = engine.approximate(g.output, 3).expect("order 3");
    let sim = simulate(&g.circuit, TransientOptions::new(approx.horizon())).expect("sim");
    let err = relative_l2_vs_sim(&sim, g.output, |t| approx.eval(t)).expect("err");
    assert!(err < 0.03, "mesh error {err}");
}

/// Crosstalk victims (floating caps at scale): the coupled-line victim
/// noise waveform matches the simulation.
#[test]
fn coupled_line_victim_matches_sim() {
    let g = coupled_rc_lines(
        6,
        30.0,
        0.2e-12,
        0.1e-12,
        Waveform::rising_step(0.0, 5.0, 30e-12),
    );
    let engine = AweEngine::new(&g.circuit).expect("builds");
    let approx = engine.approximate(g.output, 4).expect("order 4");
    let t_stop = 3e-9;
    let sim = simulate(&g.circuit, TransientOptions::new(t_stop)).expect("sim");
    let sim_peak = sim
        .waveform(g.output)
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    let awe_peak = (0..3000)
        .map(|i| approx.eval(t_stop * i as f64 / 3000.0))
        .fold(0.0f64, f64::max);
    assert!(sim_peak > 0.05, "coupling should disturb the victim");
    assert!(
        ((awe_peak - sim_peak) / sim_peak).abs() < 0.05,
        "victim peak {awe_peak} vs {sim_peak}"
    );
}

/// RLC ladders at several damping levels: order 6 tracks the ringing.
#[test]
fn rlc_ladders_match_sim() {
    for (rs, label) in [(60.0, "damped"), (20.0, "ringing")] {
        let g = rlc_ladder(3, rs, 4e-9, 2e-12, Waveform::step(0.0, 5.0));
        let engine = AweEngine::new(&g.circuit).expect("builds");
        let approx = engine.approximate(g.output, 6).expect("order 6");
        assert!(approx.stable, "{label}: unstable");
        let sim = simulate(&g.circuit, TransientOptions::new(6e-9)).expect("sim");
        let err = relative_l2_vs_sim(&sim, g.output, |t| approx.eval(t)).expect("err");
        assert!(err < 0.10, "{label}: error {err}");
    }
}

/// Controlled sources: a VCCS-loaded stage (a linearized active load)
/// runs through the same AWE pipeline and matches the simulator.
#[test]
fn vccs_circuit_matches_sim() {
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    let n1 = ckt.node("n1");
    let n2 = ckt.node("n2");
    ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
        .unwrap();
    ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
    ckt.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
    // Transconductance stage: output current into n2's RC load.
    ckt.add_vccs("G1", GROUND, n2, n1, GROUND, 2e-3).unwrap();
    ckt.add_resistor("R2", n2, GROUND, 2e3).unwrap();
    ckt.add_capacitor("C2", n2, GROUND, 0.5e-12).unwrap();

    let engine = AweEngine::new(&ckt).expect("builds");
    let approx = engine.approximate(n2, 2).expect("order 2");
    // DC gain: gm·R2 = 4.
    assert!((approx.final_value() - 4.0).abs() < 1e-6);
    let sim = simulate(&ckt, TransientOptions::new(2e-8)).expect("sim");
    let err = relative_l2_vs_sim(&sim, n2, |t| approx.eval(t)).expect("err");
    assert!(err < 0.02, "vccs error {err}");
}

/// VCVS buffering: an ideal buffer isolating two RC sections.
#[test]
fn vcvs_circuit_matches_sim() {
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    let n1 = ckt.node("n1");
    let nb = ckt.node("nb");
    let n2 = ckt.node("n2");
    ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 2.0))
        .unwrap();
    ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
    ckt.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
    ckt.add_vcvs("E1", nb, GROUND, n1, GROUND, 1.0).unwrap();
    ckt.add_resistor("R2", nb, n2, 2e3).unwrap();
    ckt.add_capacitor("C2", n2, GROUND, 1e-12).unwrap();

    let engine = AweEngine::new(&ckt).expect("builds");
    let approx = engine.approximate(n2, 2).expect("order 2");
    assert!((approx.final_value() - 2.0).abs() < 1e-6);
    let sim = simulate(&ckt, TransientOptions::new(3e-8)).expect("sim");
    let err = relative_l2_vs_sim(&sim, n2, |t| approx.eval(t)).expect("err");
    assert!(err < 0.02, "vcvs error {err}");
}

/// The stage builder feeds straight into the engine; per-receiver delays
/// are ordered by their Elmore delays.
#[test]
fn stage_builder_end_to_end() {
    let stage = StageBuilder::new(Waveform::rising_step(0.0, 5.0, 40e-12))
        .driver_resistance(140.0)
        .wire("root", "a", 60.0, 0.25e-12)
        .wire("a", "near", 20.0, 0.1e-12)
        .wire("a", "far", 200.0, 0.4e-12)
        .receiver("near", 20e-15)
        .receiver("far", 50e-15)
        .build()
        .expect("valid stage");
    let engine = AweEngine::new(&stage.circuit).expect("builds");
    let mut delays = Vec::new();
    for (name, node) in &stage.receivers {
        let a = engine.approximate(*node, 3).expect("order 3");
        delays.push((name.clone(), a.delay_50().expect("rising")));
    }
    assert!(delays[0].1 < delays[1].1, "near must beat far: {delays:?}");
    // And both agree with simulation.
    let sim = simulate(&stage.circuit, TransientOptions::new(5e-9)).expect("sim");
    for (name, node) in &stage.receivers {
        let d_sim = sim.delay_50(*node).expect("rising");
        let d_awe = delays.iter().find(|(n, _)| n == name).expect("present").1;
        assert!(
            ((d_awe - d_sim) / d_sim).abs() < 0.03,
            "{name}: {d_awe} vs {d_sim}"
        );
    }
}

/// Nonzero pre-transition bias plus a downward step: falling edges work
/// symmetrically.
#[test]
fn falling_edge_symmetric() {
    let g = random_rc_tree(
        8,
        (10.0, 200.0),
        (0.1e-12, 0.4e-12),
        5,
        Waveform::step(5.0, 0.0),
    );
    let engine = AweEngine::new(&g.circuit).expect("builds");
    let approx = engine.approximate(g.output, 2).expect("order 2");
    assert!((approx.initial_value() - 5.0).abs() < 1e-6);
    assert!(approx.final_value().abs() < 1e-6);
    let d = approx.delay_50().expect("falling");
    let sim = simulate(&g.circuit, TransientOptions::new(approx.horizon())).expect("sim");
    let d_sim = sim.delay_50(g.output).expect("falling");
    assert!(((d - d_sim) / d_sim).abs() < 0.05, "{d} vs {d_sim}");
}

/// Multi-source superposition: two drivers switching at different times.
#[test]
fn two_drivers_superpose() {
    let mut ckt = Circuit::new();
    let a_in = ckt.node("a_in");
    let b_in = ckt.node("b_in");
    let n1 = ckt.node("n1");
    ckt.add_vsource(
        "Va",
        a_in,
        GROUND,
        Waveform::pwl(vec![(0.0, 0.0), (1e-9, 2.0)]),
    )
    .unwrap();
    ckt.add_vsource(
        "Vb",
        b_in,
        GROUND,
        Waveform::pwl(vec![(2e-9, 0.0), (3e-9, 3.0)]),
    )
    .unwrap();
    ckt.add_resistor("Ra", a_in, n1, 1e3).unwrap();
    ckt.add_resistor("Rb", b_in, n1, 1e3).unwrap();
    ckt.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();

    let engine = AweEngine::new(&ckt).expect("builds");
    let approx = engine.approximate(n1, 2).expect("order 2");
    // Final: superposition of both dividers = (2 + 3)/2.
    assert!((approx.final_value() - 2.5).abs() < 1e-6);
    let sim = simulate(&ckt, TransientOptions::new(10e-9)).expect("sim");
    for i in 0..20 {
        let t = i as f64 * 0.5e-9;
        let (a, s) = (approx.eval(t), sim.value_at(n1, t));
        assert!((a - s).abs() < 0.02, "t={t}: {a} vs {s}");
    }
}
