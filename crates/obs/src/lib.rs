//! # awe-obs
//!
//! Std-only, zero-dependency observability substrate for the AWEsim
//! workspace: structured spans, monotonic counters, log-scale histograms
//! and typed **numerical-health** events, recorded into per-thread ring
//! buffers and exported through three sinks from one recording.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when off.** Every entry point starts with one
//!    relaxed atomic load ([`enabled`]). With no [`Recording`] active a
//!    span is an inert `Option::None` guard and a counter bump is a
//!    load + branch. The `awe_latency` bench asserts this stays under
//!    2% of the warm solve latency.
//! 2. **No contention on the hot path.** Events go to the calling
//!    thread's own lane (a bounded ring buffer) under a mutex only that
//!    thread touches while recording, so the lock is uncontended until
//!    the moment [`Recording::finish`] drains it. Lanes register with
//!    the session at birth, which is what makes `finish` complete and
//!    race-free no matter how the recording threads were scheduled or
//!    joined (see the recorder module docs for why flush-on-thread-exit
//!    cannot give that guarantee under `std::thread::scope`).
//! 3. **Bounded memory.** Each lane holds at most [`LANE_CAPACITY`]
//!    events; on overflow the oldest event is dropped and a per-lane
//!    drop counter reports the loss instead of hiding it.
//!
//! One recording, three sinks (see [`Profile`]):
//!
//! * [`Profile::chrome_trace`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or Perfetto, one lane per pool worker;
//! * [`Profile::text_report`] — human-readable summary;
//! * [`Profile::metrics_json`] — flat metrics JSON for report tooling.
//!
//! For long-lived daemons the one-shot recording model is extended
//! three ways: [`windows`] aggregates over rolling bucket rings (rates
//! and quantiles for the last minute / quarter hour, not since boot),
//! [`req_scope`] stamps every event with the ambient request id so a
//! trace track interleaving many requests stays attributable, and
//! [`flight`] snapshots the live recording without stopping it — the
//! always-on bounded lanes double as a flight recorder.
//!
//! The typed [`Health`] events carry the numerical signals that decide
//! AWE quality: moment-matrix condition estimates, pivot growth in the
//! Gilbert–Peierls refactor path, refactor accept/reject, Padé order
//! chosen vs. requested (§3.3 instability fallbacks) and verify-oracle
//! disagreements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod flight;
mod metrics;
mod recorder;
mod sinks;
pub mod windows;

pub use event::{Event, EventKind, Health};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, CounterSnapshot, Histogram, HistogramSnapshot,
    HIST_BUCKETS,
};
pub use recorder::{
    anomaly_count, current_request, enabled, epoch_ns, health, instant, lane_scope, live_dropped,
    live_occupancy, req_scope, set_lane_label, span, span_labeled, LaneData, LaneScope, Profile,
    Recording, ReqScope, Span, LANE_CAPACITY,
};
