//! Seeded, deterministic circuit fuzzing.
//!
//! Every case is fully described by a [`CaseParams`] value, and every
//! `CaseParams` is a pure function of `(class, master_seed, index)` — so a
//! failure report that prints those three numbers is a complete
//! reproduction recipe. The parameter space sweeps topology class, circuit
//! size, element-value spread (near-degenerate `R → 0`, capacitance
//! spanning six decades) and source waveform, which together cover the
//! regimes the paper calls out: stiff RC trees (§3.5), resistor-loop
//! meshes (§2.3), underdamped RLC ladders (§5) and floating coupling
//! capacitors (§5.3).

use std::fmt;
use std::str::FromStr;

use awe_circuit::generators::{coupled_rc_lines, random_rc_tree, rc_mesh, rlc_ladder};
use awe_circuit::{Circuit, NodeId, Waveform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which generator family a case draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyClass {
    /// Random branching RC tree (`circuit::generators::random_rc_tree`).
    RcTree,
    /// RC grid with resistor loops (`rc_mesh`).
    RcMesh,
    /// Series-RLC ladder, underdamped for small source resistance
    /// (`rlc_ladder`).
    RlcLadder,
    /// Two RC lines with floating coupling capacitors
    /// (`coupled_rc_lines`).
    CoupledLines,
}

impl TopologyClass {
    /// All classes, in the order the campaign cycles through them.
    pub const ALL: [TopologyClass; 4] = [
        TopologyClass::RcTree,
        TopologyClass::RcMesh,
        TopologyClass::RlcLadder,
        TopologyClass::CoupledLines,
    ];

    /// The CLI / report name (`rc-tree`, `rc-mesh`, `rlc-ladder`,
    /// `coupled-lines`).
    pub fn name(&self) -> &'static str {
        match self {
            TopologyClass::RcTree => "rc-tree",
            TopologyClass::RcMesh => "rc-mesh",
            TopologyClass::RlcLadder => "rlc-ladder",
            TopologyClass::CoupledLines => "coupled-lines",
        }
    }
}

impl fmt::Display for TopologyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for TopologyClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rc-tree" => Ok(TopologyClass::RcTree),
            "rc-mesh" => Ok(TopologyClass::RcMesh),
            "rlc-ladder" => Ok(TopologyClass::RlcLadder),
            "coupled-lines" => Ok(TopologyClass::CoupledLines),
            other => Err(format!(
                "unknown class `{other}` (expected rc-tree, rc-mesh, rlc-ladder or coupled-lines)"
            )),
        }
    }
}

/// Source waveform family. Time-valued knobs are stored as ratios of the
/// case's characteristic time so that minimization can shrink the circuit
/// without making the stimulus trivially fast or slow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WaveKind {
    /// Ideal rising step `0 → vdd` at `t = 0`.
    Step,
    /// Ideal falling step `vdd → 0` at `t = 0` (exercises the nonzero
    /// baseline path).
    FallingStep,
    /// Finite-slope ramp `0 → vdd` with rise time `ratio ×` the case's
    /// characteristic time.
    Ramp {
        /// Rise time as a fraction of the case's characteristic time.
        rise_ratio: f64,
    },
    /// Up-then-down pulse: rise at `t = 0`, fall after `width_ratio ×`
    /// the characteristic time (response settles back to baseline).
    Pulse {
        /// Pulse width as a fraction of the case's characteristic time.
        width_ratio: f64,
    },
}

impl WaveKind {
    fn tag(&self) -> &'static str {
        match self {
            WaveKind::Step => "step",
            WaveKind::FallingStep => "falling-step",
            WaveKind::Ramp { .. } => "ramp",
            WaveKind::Pulse { .. } => "pulse",
        }
    }

    /// Whether all sources jump at `t = 0` and then hold (the premise of
    /// the Penfield–Rubinstein bounds and the tree-walk moment identity).
    pub fn is_pure_step(&self) -> bool {
        matches!(self, WaveKind::Step | WaveKind::FallingStep)
    }
}

/// The complete, regenerable description of one fuzz case.
#[derive(Clone, Copy, Debug)]
pub struct CaseParams {
    /// Topology family.
    pub class: TopologyClass,
    /// Structural seed (drives `random_rc_tree`'s shape and values).
    pub seed: u64,
    /// Size knob: capacitive nodes (tree), grid cells (mesh), sections
    /// (ladder) or segments per line (coupled).
    pub size: usize,
    /// Resistance range, log-uniform; `r_lo` may be near-degenerate
    /// (`≪ 1 Ω`).
    pub r_lo: f64,
    /// Upper resistance bound.
    pub r_hi: f64,
    /// Capacitance range, log-uniform, spanning up to six decades.
    pub c_lo: f64,
    /// Upper capacitance bound.
    pub c_hi: f64,
    /// Ladder inductance (henries); unused elsewhere.
    pub l: f64,
    /// Ladder source resistance (ohms); unused elsewhere.
    pub rs: f64,
    /// Coupling-to-ground capacitance ratio for coupled lines.
    pub coupling_ratio: f64,
    /// Supply swing (volts).
    pub vdd: f64,
    /// Source waveform family.
    pub wave: WaveKind,
}

impl CaseParams {
    /// Derives case `index` of a campaign with the given master seed,
    /// deterministically. The same triple always yields the same circuit.
    pub fn generate(class: TopologyClass, master_seed: u64, index: u64) -> CaseParams {
        // Mix the pair so adjacent indices land far apart in seed space.
        let mixed = splitmix(master_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(mixed);

        let size = match class {
            TopologyClass::RcTree => rng.gen_range(1..=20usize),
            TopologyClass::RcMesh => rng.gen_range(1..=12usize),
            TopologyClass::RlcLadder => rng.gen_range(1..=6usize),
            TopologyClass::CoupledLines => rng.gen_range(1..=5usize),
        };

        // Element values: log-uniform centers with a log-uniform spread.
        // One case in eight drags the resistance floor toward zero — the
        // near-degenerate regime where G is barely invertible.
        let r_center = log_uniform(&mut rng, 1e-1, 1e4);
        let r_spread = 10f64.powf(rng.gen_range(0.0..1.5));
        let mut r_lo = r_center / r_spread;
        let r_hi = r_center * r_spread;
        if rng.gen_range(0..8usize) == 0 {
            r_lo = 1e-6;
        }
        let c_center = log_uniform(&mut rng, 1e-15, 1e-11);
        let c_spread = 10f64.powf(rng.gen_range(0.0..3.0));
        let c_lo = c_center / c_spread;
        let c_hi = c_center * c_spread;

        let l = log_uniform(&mut rng, 1e-10, 1e-7);
        let rs = log_uniform(&mut rng, 0.1, 100.0);
        let coupling_ratio = log_uniform(&mut rng, 0.01, 2.0);
        let vdd = *pick(&mut rng, &[1.0, 1.8, 3.3, 5.0]);

        let wave = match rng.gen_range(0..20usize) {
            0..=7 => WaveKind::Step,
            8..=11 => WaveKind::FallingStep,
            12..=16 => WaveKind::Ramp {
                rise_ratio: log_uniform(&mut rng, 0.1, 3.0),
            },
            _ => WaveKind::Pulse {
                width_ratio: log_uniform(&mut rng, 1.0, 10.0),
            },
        };

        CaseParams {
            class,
            seed: mixed,
            size,
            r_lo,
            r_hi,
            c_lo,
            c_hi,
            l,
            rs,
            coupling_ratio,
            vdd,
            wave,
        }
    }

    /// A crude characteristic time for the case, used to scale ramp rise
    /// times and pulse widths so the stimulus interacts with the circuit's
    /// dynamics instead of looking like DC or an ideal step.
    pub fn time_scale(&self) -> f64 {
        let r = geo_mean(self.r_lo, self.r_hi);
        let c = geo_mean(self.c_lo, self.c_hi);
        let n = self.size as f64;
        match self.class {
            TopologyClass::RcTree | TopologyClass::RcMesh => r * c * n,
            TopologyClass::RlcLadder => self.rs * c * n + n * (self.l * c).sqrt(),
            TopologyClass::CoupledLines => r * c * (1.0 + self.coupling_ratio) * n,
        }
    }

    /// The stimulus waveform this case drives its input with.
    pub fn waveform(&self) -> Waveform {
        let t0 = self.time_scale().max(1e-18);
        match self.wave {
            WaveKind::Step => Waveform::step(0.0, self.vdd),
            WaveKind::FallingStep => Waveform::step(self.vdd, 0.0),
            WaveKind::Ramp { rise_ratio } => Waveform::rising_step(0.0, self.vdd, rise_ratio * t0),
            WaveKind::Pulse { width_ratio } => {
                let edge = 0.1 * t0;
                let width = width_ratio * t0;
                Waveform::pwl(vec![
                    (0.0, 0.0),
                    (edge, self.vdd),
                    (width, self.vdd),
                    (width + edge, 0.0),
                ])
            }
        }
    }

    /// Builds the case's circuit. Deterministic: equal params yield
    /// byte-identical decks.
    pub fn build(&self) -> FuzzCase {
        let wave = self.waveform();
        let r = geo_mean(self.r_lo, self.r_hi);
        let c = geo_mean(self.c_lo, self.c_hi);
        let g = match self.class {
            TopologyClass::RcTree => random_rc_tree(
                self.size,
                (self.r_lo, self.r_hi),
                (self.c_lo, self.c_hi),
                self.seed,
                wave,
            ),
            TopologyClass::RcMesh => {
                let (rows, cols) = mesh_dims(self.size);
                rc_mesh(rows, cols, r, c, wave)
            }
            TopologyClass::RlcLadder => rlc_ladder(self.size, self.rs, self.l, c, wave),
            TopologyClass::CoupledLines => {
                coupled_rc_lines(self.size, r, c, self.coupling_ratio * c, wave)
            }
        };
        FuzzCase {
            params: *self,
            circuit: g.circuit,
            output: g.output,
        }
    }

    /// One-line parameter summary for reports and corpus headers.
    pub fn describe(&self) -> String {
        format!(
            "class={} seed={} size={} r={:.3e}:{:.3e} c={:.3e}:{:.3e} l={:.3e} rs={:.3e} \
             k={:.3} vdd={} wave={}",
            self.class,
            self.seed,
            self.size,
            self.r_lo,
            self.r_hi,
            self.c_lo,
            self.c_hi,
            self.l,
            self.rs,
            self.coupling_ratio,
            self.vdd,
            self.wave.tag()
        )
    }
}

/// A generated circuit plus the parameters that produced it.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The regenerable description.
    pub params: CaseParams,
    /// The netlist.
    pub circuit: Circuit,
    /// Observation node (the generator's far-end convention).
    pub output: NodeId,
}

/// Grid dimensions for a mesh of about `cells` nodes: the most square
/// factorization with `rows ≤ cols`.
fn mesh_dims(cells: usize) -> (usize, usize) {
    let cells = cells.max(1);
    let mut rows = (cells as f64).sqrt() as usize;
    while rows > 1 && !cells.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), cells / rows.max(1))
}

fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let (a, b) = (lo.ln(), hi.ln());
    (a + (b - a) * rng.gen::<f64>()).exp()
}

fn geo_mean(lo: f64, hi: f64) -> f64 {
    (lo * hi).sqrt()
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// SplitMix64 finalizer: spreads structured `(seed, index)` pairs over the
/// whole 64-bit space before they feed `StdRng`.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for class in TopologyClass::ALL {
            let a = CaseParams::generate(class, 7, 13).build();
            let b = CaseParams::generate(class, 7, 13).build();
            assert_eq!(a.circuit.to_deck(), b.circuit.to_deck());
            assert_eq!(a.output, b.output);
            // A different index must change the circuit.
            let c = CaseParams::generate(class, 7, 14).build();
            assert_ne!(a.circuit.to_deck(), c.circuit.to_deck());
        }
    }

    #[test]
    fn sizes_stay_small_enough_for_dense_oracles() {
        for class in TopologyClass::ALL {
            for i in 0..50 {
                let case = CaseParams::generate(class, 1, i).build();
                assert!(
                    case.circuit.num_states() <= 24,
                    "{class}: {} states",
                    case.circuit.num_states()
                );
            }
        }
    }

    #[test]
    fn class_round_trips_through_str() {
        for class in TopologyClass::ALL {
            assert_eq!(class.name().parse::<TopologyClass>().unwrap(), class);
        }
        assert!("bogus".parse::<TopologyClass>().is_err());
    }

    #[test]
    fn mesh_dims_are_exact_factorizations() {
        for cells in 1..=16 {
            let (r, c) = mesh_dims(cells);
            assert_eq!(r * c, cells);
            assert!(r <= c);
        }
    }

    #[test]
    fn waveforms_are_scaled_to_the_circuit() {
        let p = CaseParams {
            wave: WaveKind::Pulse { width_ratio: 4.0 },
            ..CaseParams::generate(TopologyClass::RcTree, 0, 0)
        };
        let w = p.waveform();
        assert_eq!(w.initial_value(), 0.0);
        assert_eq!(w.final_value(), 0.0);
        let t0 = p.time_scale();
        let points = w.points();
        assert!(points.last().unwrap().0 > 3.0 * t0);
    }
}
