//! # awe-numeric
//!
//! Self-contained numerical substrate for the AWEsim workspace — the
//! reproduction of Pillage & Rohrer, *Asymptotic Waveform Evaluation for
//! Timing Analysis* (DAC 1989 / IEEE TCAD 1990).
//!
//! Everything AWE needs from numerical linear algebra lives here, written
//! from scratch:
//!
//! * [`Complex`] — complex arithmetic for poles and residues.
//! * [`Matrix`] / [`vecops`] — dense real matrices and vector helpers.
//! * [`Lu`] — LU with partial pivoting; factor once, resubstitute per
//!   moment (paper §3.2).
//! * [`hessenberg`]/[`eigenvalues`] — balanced QR eigensolver for the
//!   "actual poles" of Tables I and II.
//! * [`Polynomial`] / [`roots`] — the characteristic polynomial of
//!   eq. (25) and its roots (closed forms for `q ≤ 4`, Aberth–Ehrlich
//!   beyond).
//! * [`CMatrix`] / [`solve_vandermonde`] / [`solve_confluent_vandermonde`]
//!   — residue systems of eqs. (20) and (29).
//! * [`solve_char_poly`] — the Hankel moment system of eq. (24).
//!
//! ## Example
//!
//! Recover the poles of a two-exponential response from its moments:
//!
//! ```
//! use awe_numeric::{roots, solve_char_poly};
//! # fn main() -> Result<(), awe_numeric::NumericError> {
//! // Moments m_{-1}..m_2 of x(t) = e^{-t} + e^{-5t}
//! // (paper convention: m_j = -Σ k_i / p_i^{j+1}).
//! let moments = [-2.0, 1.2, -1.04, 1.008];
//! let cp = solve_char_poly(&moments, 2)?;
//! let recips = roots(&cp.poly)?;
//! let mut poles: Vec<f64> = recips.iter().map(|r| r.recip().re).collect();
//! poles.sort_by(|a, b| a.total_cmp(b));
//! assert!((poles[0] + 5.0).abs() < 1e-6);
//! assert!((poles[1] + 1.0).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Index-based loops mirror the matrix algebra they implement; iterator
// rewrites would obscure the numerics.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

mod clinalg;
mod complex;
mod eigen;
mod error;
mod hankel;
mod hessenberg;
mod lanes;
mod lu;
mod matrix;
mod poly;
mod roots;
mod sparse;
mod sparse_lu;
mod symbolic;
mod vandermonde;

pub use clinalg::CMatrix;
pub use complex::{Complex, J};
pub use eigen::{balance, eigenvalues};
pub use error::NumericError;
pub use hankel::{moment_matrix, solve_char_poly, CharPoly};
pub use hessenberg::{hessenberg, is_hessenberg};
pub use lanes::{LaneLu, LANE_WIDTH};
pub use lu::{lu_solve, Lu};
pub use matrix::{vecops, Matrix};
pub use poly::Polynomial;
pub use roots::{roots, symmetrize_conjugates};
pub use sparse::SparseMatrix;
pub use sparse_lu::SparseLu;
pub use symbolic::{LuSymbolic, SharedSymbolic, SolveScratch};
pub use vandermonde::{
    solve_confluent_vandermonde, solve_vandermonde, vandermonde_matrix, ConfluentNode,
};
