//! Exact natural frequencies of a circuit.
//!
//! The "actual" pole columns of the paper's Tables I and II come from the
//! full eigen-spectrum of the circuit. In descriptor form the natural
//! frequencies are the finite generalized eigenvalues of the pencil
//! `(G, C)`: from `(G + sC)x = 0`, a nonzero eigenvalue `μ` of
//! `M = G⁻¹·C` corresponds to the pole `s = -1/μ`, while `μ ≈ 0`
//! eigenvalues are the "infinitely fast" modes of non-dynamic unknowns.

use awe_circuit::Circuit;
use awe_mna::{MnaSystem, MomentEngine};
use awe_numeric::{eigenvalues, Complex};

use crate::error::SimError;

/// Computes all finite poles (natural frequencies) of the circuit, sorted
/// dominant-first (largest real part first).
///
/// Eigenvalues of `G⁻¹C` whose magnitude is below `1e-12` of the largest
/// are treated as the infinite modes of algebraic (non-state) unknowns and
/// dropped.
///
/// # Errors
///
/// * [`SimError::Mna`] if the circuit has no DC solution.
/// * [`SimError::Numeric`] if the eigen iteration fails.
///
/// # Examples
///
/// ```
/// use awe_circuit::{Circuit, Waveform, GROUND};
/// use awe_sim::exact_poles;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ckt = Circuit::new();
/// let n_in = ckt.node("in");
/// let n1 = ckt.node("n1");
/// ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 5.0))?;
/// ckt.add_resistor("R1", n_in, n1, 1e3)?;
/// ckt.add_capacitor("C1", n1, GROUND, 1e-9)?;
/// let poles = exact_poles(&ckt)?;
/// assert_eq!(poles.len(), 1);
/// assert!((poles[0].re + 1e6).abs() < 1.0); // -1/RC
/// # Ok(())
/// # }
/// ```
pub fn exact_poles(circuit: &Circuit) -> Result<Vec<Complex>, SimError> {
    let sys = MnaSystem::build(circuit)?;
    let engine = MomentEngine::new(&sys)?;
    let m = engine.g_inv_c()?;
    let eig = eigenvalues(&m)?;
    let max_mu = eig.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
    if max_mu == 0.0 {
        return Ok(Vec::new());
    }
    let mut poles: Vec<Complex> = eig
        .into_iter()
        .filter(|mu| mu.abs() > 1e-12 * max_mu)
        .map(|mu| -mu.recip())
        .collect();
    awe_numeric::symmetrize_conjugates(&mut poles, 1e-7);
    poles.sort_by(|a, b| {
        b.re.partial_cmp(&a.re)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.im.partial_cmp(&b.im).unwrap_or(std::cmp::Ordering::Equal))
    });
    Ok(poles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::papers::{fig16, fig25, fig4};
    use awe_circuit::Waveform;

    fn step5() -> Waveform {
        Waveform::step(0.0, 5.0)
    }

    #[test]
    fn fig4_has_four_real_poles() {
        let p = fig4(step5());
        let poles = exact_poles(&p.circuit).unwrap();
        assert_eq!(poles.len(), 4);
        for z in &poles {
            assert!(z.im == 0.0, "RC circuits have real poles: {z}");
            assert!(z.re < 0.0);
        }
        // Dominant pole near -1/T_D (T_D = 0.7 ms) but not equal: Elmore
        // is an approximation.
        let dom = poles[0].re;
        assert!((-2.5e3..-1.0e3).contains(&dom), "dominant {dom}");
    }

    #[test]
    fn fig16_pole_spread_matches_table1_shape() {
        // Table I's actual poles run -1.78e9 … -1.64e13: four decades.
        let p = fig16(step5(), None);
        let poles = exact_poles(&p.circuit).unwrap();
        assert_eq!(poles.len(), 10);
        let dom = poles[0].re.abs();
        let fastest = poles.last().unwrap().re.abs();
        assert!(
            (5e8..6e9).contains(&dom),
            "dominant pole {dom} out of the paper's regime"
        );
        assert!(
            fastest / dom > 1e3,
            "stiffness ratio {} too small",
            fastest / dom
        );
    }

    #[test]
    fn fig25_three_complex_pairs() {
        let p = fig25(step5());
        let poles = exact_poles(&p.circuit).unwrap();
        assert_eq!(poles.len(), 6);
        let complex_count = poles.iter().filter(|z| z.im != 0.0).count();
        assert_eq!(complex_count, 6, "expected all-complex spectrum: {poles:?}");
        // Conjugate symmetry.
        for z in &poles {
            assert!(
                poles.iter().any(|w| (*w - z.conj()).abs() < 1e-3 * z.abs()),
                "unpaired pole {z}"
            );
        }
        // Ring frequencies spread by several octaves (Table II shape:
        // 2.6e9 → 1.6e10).
        let mut freqs: Vec<f64> = poles.iter().map(|z| z.im.abs()).collect();
        freqs.sort_by(f64::total_cmp);
        assert!(freqs[5] / freqs[0] > 3.0, "frequency spread {freqs:?}");
    }

    #[test]
    fn pure_resistive_circuit_has_no_poles() {
        use awe_circuit::GROUND;
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n1, GROUND, Waveform::dc(1.0))
            .unwrap();
        let n2 = ckt.node("n2");
        ckt.add_resistor("R1", n1, n2, 1.0).unwrap();
        ckt.add_resistor("R2", n2, GROUND, 1.0).unwrap();
        assert!(exact_poles(&ckt).unwrap().is_empty());
    }
}
