//! Vandermonde systems for residue computation.
//!
//! Matching moments to the pole/residue model (paper eqs. (16)–(20)) leads
//! to the system `∇·k = -m_l`, where `∇` is the Vandermonde matrix in the
//! *reciprocal* poles (eq. (19)):
//!
//! ```text
//! ⎡ 1        1        …  1       ⎤
//! ⎢ p₁⁻¹     p₂⁻¹     …  p_q⁻¹   ⎥
//! ⎢ …                            ⎥
//! ⎣ p₁^{-q+1} …          p_q^{-q+1} ⎦
//! ```
//!
//! When poles repeat, `∇` is singular by definition and the *confluent*
//! system of eqs. (26)–(29) applies; [`solve_confluent_vandermonde`]
//! implements it for arbitrary multiplicities.

use crate::clinalg::CMatrix;
use crate::complex::Complex;
use crate::error::NumericError;

/// Builds the Vandermonde matrix of eq. (19): row `j` holds `node_l^j`.
///
/// Note the paper's nodes are reciprocal poles `p_l⁻¹`; the caller chooses
/// what to pass.
pub fn vandermonde_matrix(nodes: &[Complex]) -> CMatrix {
    let q = nodes.len();
    CMatrix::from_fn(q, q, |j, l| nodes[l].powi(j as i32))
}

/// Solves the (dual) Vandermonde system `Σ_l node_lʲ · x_l = rhs_j` for
/// `j = 0..q-1`.
///
/// # Errors
///
/// * [`NumericError::DimensionMismatch`] if `rhs.len() != nodes.len()`.
/// * [`NumericError::Singular`] if nodes coincide — use
///   [`solve_confluent_vandermonde`] in that case.
///
/// # Examples
///
/// ```
/// use awe_numeric::{solve_vandermonde, Complex};
/// # fn main() -> Result<(), awe_numeric::NumericError> {
/// // x₁ + x₂ = 3, 1·x₁ + 2·x₂ = 5  →  x = (1, 2)
/// let nodes = [Complex::real(1.0), Complex::real(2.0)];
/// let x = solve_vandermonde(&nodes, &[Complex::real(3.0), Complex::real(5.0)])?;
/// assert!((x[0].re - 1.0).abs() < 1e-12);
/// assert!((x[1].re - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_vandermonde(nodes: &[Complex], rhs: &[Complex]) -> Result<Vec<Complex>, NumericError> {
    if nodes.len() != rhs.len() {
        return Err(NumericError::DimensionMismatch {
            expected: nodes.len(),
            actual: rhs.len(),
        });
    }
    if nodes.is_empty() {
        return Ok(Vec::new());
    }
    vandermonde_matrix(nodes).solve_equilibrated(rhs)
}

/// One group of a confluent system: a node with its multiplicity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfluentNode {
    /// The (possibly repeated) node value.
    pub node: Complex,
    /// Multiplicity ≥ 1.
    pub multiplicity: usize,
}

/// Solves the *confluent* Vandermonde system arising for repeated poles
/// (paper eqs. (26)–(29)).
///
/// For a node `x` of multiplicity `r`, the unknowns are the coefficients
/// `k₁ … k_r` of `k₁/(s-p)^r + … + k_r/(s-p)` and the matched rows are the
/// Maclaurin coefficients of those terms. Expanding
/// `1/(s-p)^m = Σ_j C(j+m-1, m-1) · (-1)^m · s^j / p^{j+m}` gives row `j`
/// entries `(-1)^m · C(j+m-1, m-1) / p^{j+m}` — exactly the pattern of the
/// paper's eq. (28) for `r = 2` (up to the common sign convention chosen by
/// the caller).
///
/// Here we solve the generic moment form: find `x` such that for
/// `j = 0..q-1`:
///
/// ```text
/// Σ_groups Σ_{m=1..r}  x_{g,m} · C(j + m - 1, m - 1) · node_g^{j} = rhs_j
/// ```
///
/// i.e. the repeated-node columns are derivatives of the plain Vandermonde
/// column (the standard confluent construction). For multiplicity 1 this
/// reduces exactly to [`solve_vandermonde`].
///
/// # Errors
///
/// * [`NumericError::DimensionMismatch`] if `Σ multiplicities ≠ rhs.len()`.
/// * [`NumericError::Singular`] if distinct groups share a node.
pub fn solve_confluent_vandermonde(
    groups: &[ConfluentNode],
    rhs: &[Complex],
) -> Result<Vec<Complex>, NumericError> {
    let q: usize = groups.iter().map(|g| g.multiplicity).sum();
    if q != rhs.len() {
        return Err(NumericError::DimensionMismatch {
            expected: q,
            actual: rhs.len(),
        });
    }
    if q == 0 {
        return Ok(Vec::new());
    }
    let mut m = CMatrix::zeros(q, q);
    let mut col = 0usize;
    for g in groups {
        for d in 0..g.multiplicity {
            // Column is the d-th "derivative-style" column:
            // entry_j = C(j, d) · node^{j - d}  (zero for j < d).
            for j in 0..q {
                m[(j, col)] = if j < d {
                    Complex::ZERO
                } else {
                    Complex::real(binomial(j, d)) * g.node.powi((j - d) as i32)
                };
            }
            col += 1;
        }
    }
    m.solve_equilibrated(rhs)
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_solve_matches_interpolation_moments() {
        // Known weights: x = (2, -1, 0.5) at nodes (0.5, -1, 3).
        let nodes = [Complex::real(0.5), Complex::real(-1.0), Complex::real(3.0)];
        let x_true = [Complex::real(2.0), Complex::real(-1.0), Complex::real(0.5)];
        let rhs: Vec<Complex> = (0..3)
            .map(|j| nodes.iter().zip(&x_true).map(|(n, x)| n.powi(j) * *x).sum())
            .collect();
        let x = solve_vandermonde(&nodes, &rhs).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_nodes() {
        let nodes = [Complex::new(-1.0, 2.0), Complex::new(-1.0, -2.0)];
        let x_true = [Complex::new(0.5, -0.25), Complex::new(0.5, 0.25)];
        let rhs: Vec<Complex> = (0..2)
            .map(|j| nodes.iter().zip(&x_true).map(|(n, x)| n.powi(j) * *x).sum())
            .collect();
        let x = solve_vandermonde(&nodes, &rhs).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((*a - *b).abs() < 1e-12);
        }
        // Conjugate weights on conjugate nodes → real moments.
        assert!(rhs.iter().all(|r| r.im.abs() < 1e-12));
    }

    #[test]
    fn repeated_nodes_are_singular() {
        let nodes = [Complex::real(1.0), Complex::real(1.0)];
        assert!(matches!(
            solve_vandermonde(&nodes, &[Complex::ONE, Complex::ONE]),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn dimension_mismatch() {
        assert!(solve_vandermonde(&[Complex::ONE], &[]).is_err());
        assert!(solve_confluent_vandermonde(
            &[ConfluentNode {
                node: Complex::ONE,
                multiplicity: 2
            }],
            &[Complex::ONE]
        )
        .is_err());
    }

    #[test]
    fn empty_system() {
        assert!(solve_vandermonde(&[], &[]).unwrap().is_empty());
        assert!(solve_confluent_vandermonde(&[], &[]).unwrap().is_empty());
    }

    #[test]
    fn confluent_reduces_to_plain_for_simple_nodes() {
        let nodes = [Complex::real(0.5), Complex::real(2.0)];
        let rhs = [Complex::real(1.0), Complex::real(-1.0)];
        let plain = solve_vandermonde(&nodes, &rhs).unwrap();
        let groups: Vec<ConfluentNode> = nodes
            .iter()
            .map(|&n| ConfluentNode {
                node: n,
                multiplicity: 1,
            })
            .collect();
        let conf = solve_confluent_vandermonde(&groups, &rhs).unwrap();
        for (a, b) in plain.iter().zip(&conf) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn confluent_double_node() {
        // Verify against a directly-built 3x3 system with a double node at
        // x=2 (cols: [x^j], [j·x^{j-1}]) and a simple node at x=-1.
        let groups = [
            ConfluentNode {
                node: Complex::real(2.0),
                multiplicity: 2,
            },
            ConfluentNode {
                node: Complex::real(-1.0),
                multiplicity: 1,
            },
        ];
        let x_true = [Complex::real(1.0), Complex::real(0.5), Complex::real(-2.0)];
        // rhs_j = x0·2^j + x1·C(j,1)·2^{j-1} + x2·(-1)^j
        let rhs: Vec<Complex> = (0..3)
            .map(|j| {
                let t0 = Complex::real(2.0).powi(j) * x_true[0];
                let t1 = if j >= 1 {
                    Complex::real(j as f64) * Complex::real(2.0).powi(j - 1) * x_true[1]
                } else {
                    Complex::ZERO
                };
                let t2 = Complex::real(-1.0).powi(j) * x_true[2];
                t0 + t1 + t2
            })
            .collect();
        let x = solve_confluent_vandermonde(&groups, &rhs).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((*a - *b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(3, 4), 0.0);
        assert_eq!(binomial(10, 5), 252.0);
    }

    #[test]
    fn matrix_shape() {
        let m = vandermonde_matrix(&[Complex::real(2.0), Complex::real(3.0)]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m[(0, 0)], Complex::ONE);
        assert_eq!(m[(1, 1)], Complex::real(3.0));
    }
}
