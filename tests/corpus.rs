//! Replays every committed corpus deck through its named oracle.
//!
//! Each `tests/corpus/*.sp` deck is a fuzz finding frozen in place: the
//! header names the oracle that originally disagreed and carries a
//! tracking note explaining the root cause and the harness/engine change
//! that resolved it. Replay must not regress to `Fail` — a deck whose
//! finding was an expected limitation replays as `Skip` with a documented
//! reason, one whose cause was fixed replays as `Pass`.

use awesim::verify::{replay_deck, Verdict};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_decks_replay_clean() {
    let dir = corpus_dir();
    if !dir.is_dir() {
        // An empty corpus is a healthy corpus; the test only guards the
        // decks that exist.
        return;
    }
    let mut decks: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus dir must be readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sp"))
        .collect();
    decks.sort();
    let mut failures = Vec::new();
    for path in &decks {
        let text = std::fs::read_to_string(path).expect("deck must be readable");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        match replay_deck(&text) {
            Ok(report) => {
                println!("{name}: {} -> {}", report.oracle, report.verdict);
                if let Verdict::Fail { detail } = &report.verdict {
                    failures.push(format!("{name}: {} regressed: {detail}", report.oracle));
                }
            }
            Err(e) => failures.push(format!("{name}: replay error: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_decks_have_tracking_notes() {
    let dir = corpus_dir();
    if !dir.is_dir() {
        return;
    }
    for entry in std::fs::read_dir(&dir).expect("corpus dir must be readable") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|x| x != "sp") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("deck must be readable");
        for header in ["* oracle=", "* output ", "* detail:"] {
            assert!(
                text.contains(header),
                "{} is missing the `{header}` header",
                path.display()
            );
        }
    }
}
