//! # awe-batch
//!
//! Concurrent **full-design** timing analysis on top of the AWE engine:
//! take a design of many independent nets (a multi-net SPICE deck or a
//! synthetic workload) and run AWE across all of them on a from-scratch
//! work-stealing thread pool, with an incremental-reanalysis cache and
//! run metrics.
//!
//! The paper's pitch is throughput — AWE gets its speed from needing
//! "only... moments" per net rather than a full simulation, which is what
//! makes whole-chip timing analysis tractable. This crate supplies the
//! full-design half of that story:
//!
//! * [`Design`]/[`NetSpec`]: the net collection, from
//!   [`Design::from_deck`] (multi-net decks) or [`Design::synthetic`]
//!   (random RC-tree workloads).
//! * [`BatchEngine`]: the scheduler and cache. Results always come back
//!   in design order — byte-identical across thread counts — and re-runs
//!   after an ECO edit only re-solve nets whose
//!   [structural hash](structural_hash) changed.
//! * [`RunMetrics`]: per-stage wall times (parse → MNA → moments → Padé →
//!   residues), escalation and error census, throughput and latency
//!   percentiles; rendered by [`text_report`] / [`json_report`].
//!
//! ```
//! use awe_batch::{BatchEngine, BatchOptions, Design, RunMetrics};
//!
//! let design = Design::synthetic(32, 42);
//! let engine = BatchEngine::new();
//! let run = engine.run(&design, &BatchOptions::default());
//! assert_eq!(run.solves, 32);
//!
//! // Unchanged design: served entirely from the cache, zero AWE solves.
//! let rerun = engine.run(&design, &BatchOptions::default());
//! assert_eq!(rerun.solves, 0);
//! assert_eq!(RunMetrics::of(&rerun).hit_rate(), 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod design;
pub mod engine;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod sweep;
pub mod tape;

pub use awe_circuit::ReduceOptions;
pub use design::{
    net_keys, pattern_key, prepare_net, structural_hash, Design, NetSpec, PreparedNet,
};
pub use engine::{BatchEngine, BatchOptions, BatchRun, NetResult, NetTiming};
pub use metrics::{RunMetrics, SweepMetrics};
pub use pool::PoolStats;
pub use report::{json_report, sweep_json_report, sweep_text_report, text_report};
pub use sweep::{
    corner_circuit, pdn_design, sweep, sweep_ordered, CornerError, CornerSpec, NodeStats, SweepRun,
};
pub use tape::{GroupTape, TapeKind, TapeOp, WorkerArena};
