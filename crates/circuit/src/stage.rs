//! The timing-analysis *stage* abstraction (paper §II, Fig. 1).
//!
//! Timing analyzers partition a design into stages: a switching gate
//! modeled as a linear *approximate resistor* driving the interconnect and
//! the receiving gates' input capacitances. AWE itself only ever sees the
//! resulting linear network — the paper performs this reduction before any
//! waveform estimation begins. [`StageBuilder`] packages the reduction:
//! a Thevenin driver (switching source behind its on-resistance), an
//! interconnect net description, and capacitive receiver pins.

use crate::element::{NodeId, GROUND};
use crate::netlist::{Circuit, CircuitError};
use crate::waveform::Waveform;

/// Builder for a single timing stage: driver → interconnect → receivers.
///
/// # Examples
///
/// ```
/// use awe_circuit::stage::StageBuilder;
/// use awe_circuit::Waveform;
///
/// # fn main() -> Result<(), awe_circuit::CircuitError> {
/// let stage = StageBuilder::new(Waveform::rising_step(0.0, 5.0, 50e-12))
///     .driver_resistance(120.0)
///     .wire("root", "a", 80.0, 0.2e-12)
///     .wire("a", "sink1", 60.0, 0.15e-12)
///     .wire("a", "sink2", 90.0, 0.25e-12)
///     .receiver("sink1", 30e-15)
///     .receiver("sink2", 45e-15)
///     .build()?;
/// assert_eq!(stage.receivers.len(), 2);
/// assert!(stage.circuit.num_states() >= 5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct StageBuilder {
    input: Waveform,
    r_driver: f64,
    wires: Vec<(String, String, f64, f64)>,
    receivers: Vec<(String, f64)>,
}

/// A built stage: the linear circuit plus the node handles a timing
/// analyzer needs.
#[derive(Clone, Debug)]
pub struct Stage {
    /// The assembled linear circuit.
    pub circuit: Circuit,
    /// The driver's output node (root of the interconnect).
    pub root: NodeId,
    /// Receiver pin nodes in insertion order, with their names.
    pub receivers: Vec<(String, NodeId)>,
}

impl StageBuilder {
    /// Starts a stage with the driver's switching waveform (the gate
    /// output swing, e.g. a 0 → 5 V edge with the gate's output slew).
    pub fn new(input: Waveform) -> Self {
        StageBuilder {
            input,
            r_driver: 100.0,
            wires: Vec::new(),
            receivers: Vec::new(),
        }
    }

    /// Sets the driver's linearized on-resistance (the paper's
    /// "approximate resistor" model of the switching MOSFET). Default
    /// 100 Ω.
    #[must_use]
    pub fn driver_resistance(mut self, ohms: f64) -> Self {
        self.r_driver = ohms;
        self
    }

    /// Adds a wire segment from `from` to `to` with lumped series
    /// resistance and a grounded capacitance at the far end (the standard
    /// L-segment RC wire model). The name `"root"` refers to the driver's
    /// output node.
    #[must_use]
    pub fn wire(mut self, from: &str, to: &str, ohms: f64, farads: f64) -> Self {
        self.wires
            .push((from.to_owned(), to.to_owned(), ohms, farads));
        self
    }

    /// Adds a receiving gate's input pin capacitance at a named node.
    #[must_use]
    pub fn receiver(mut self, at: &str, farads: f64) -> Self {
        self.receivers.push((at.to_owned(), farads));
        self
    }

    /// Assembles the stage circuit.
    ///
    /// # Errors
    ///
    /// Propagates element-validation failures (non-positive values,
    /// duplicate segment names).
    pub fn build(self) -> Result<Stage, CircuitError> {
        let mut circuit = Circuit::new();
        let n_src = circuit.node("drv_src");
        let root = circuit.node("root");
        circuit.add_vsource("Vdrv", n_src, GROUND, self.input)?;
        circuit.add_resistor("Rdrv", n_src, root, self.r_driver)?;

        for (i, (from, to, r, c)) in self.wires.iter().enumerate() {
            let nf = circuit.node(from);
            let nt = circuit.node(to);
            circuit.add_resistor(&format!("Rw{i}"), nf, nt, *r)?;
            circuit.add_capacitor(&format!("Cw{i}"), nt, GROUND, *c)?;
        }

        let mut receivers = Vec::with_capacity(self.receivers.len());
        for (i, (at, c)) in self.receivers.iter().enumerate() {
            let node = circuit.node(at);
            circuit.add_capacitor(&format!("Cpin{i}"), node, GROUND, *c)?;
            receivers.push((at.clone(), node));
        }

        Ok(Stage {
            circuit,
            root,
            receivers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::analyze;

    fn simple_stage() -> Stage {
        StageBuilder::new(Waveform::step(0.0, 5.0))
            .driver_resistance(150.0)
            .wire("root", "mid", 50.0, 0.1e-12)
            .wire("mid", "sink", 70.0, 0.2e-12)
            .receiver("sink", 40e-15)
            .build()
            .expect("valid stage")
    }

    #[test]
    fn builds_rc_tree_stage() {
        let stage = simple_stage();
        let report = analyze(&stage.circuit);
        assert!(report.is_rc_tree());
        assert_eq!(stage.receivers.len(), 1);
        assert_eq!(stage.circuit.node_name(stage.receivers[0].1), "sink");
        // States: 2 wire caps + 1 pin cap.
        assert_eq!(stage.circuit.num_states(), 3);
    }

    #[test]
    fn branching_net() {
        let stage = StageBuilder::new(Waveform::step(0.0, 1.0))
            .wire("root", "a", 10.0, 1e-13)
            .wire("a", "b", 10.0, 1e-13)
            .wire("a", "c", 10.0, 1e-13)
            .receiver("b", 1e-14)
            .receiver("c", 2e-14)
            .build()
            .expect("valid");
        assert_eq!(stage.receivers.len(), 2);
        assert!(analyze(&stage.circuit).is_rc_tree());
    }

    #[test]
    fn rejects_bad_values() {
        let err = StageBuilder::new(Waveform::step(0.0, 1.0))
            .wire("root", "a", -5.0, 1e-13)
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn default_driver_resistance_applies() {
        let stage = StageBuilder::new(Waveform::dc(0.0))
            .wire("root", "a", 1.0, 1e-15)
            .build()
            .expect("valid");
        match stage.circuit.element("Rdrv") {
            Some(crate::Element::Resistor { ohms, .. }) => assert_eq!(*ohms, 100.0),
            other => panic!("{other:?}"),
        }
    }
}
