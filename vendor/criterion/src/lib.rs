//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds in containers without network access, so the external
//! `criterion` dev-dependency is replaced by this std-only harness exposing
//! the subset of the API the workspace benches use: [`Criterion`],
//! [`criterion_group!`] (both syntaxes), [`criterion_main!`],
//! [`BenchmarkId`], benchmark groups, and [`Bencher::iter`].
//!
//! Measurement model: each `iter` closure is warmed up, then timed over
//! `sample_size` samples of adaptively-chosen iteration batches; the mean,
//! minimum, and maximum per-iteration times are printed. When the binary is
//! invoked in cargo's test mode (`--test`), every benchmark body runs exactly
//! once so `cargo test --benches` stays fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus an
/// input parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Mean/min/max per-iteration, filled by [`Bencher::iter`].
    result: Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result = Some(Sample {
                mean: Duration::ZERO,
                min: Duration::ZERO,
                max: Duration::ZERO,
                iters: 1,
            });
            return;
        }
        // Warm up and size the batch so one sample costs ≳ 1 ms.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            let per_iter = elapsed / batch as u32;
            total += elapsed;
            iters += batch;
            min = min.min(per_iter);
            max = max.max(per_iter);
        }
        self.result = Some(Sample {
            mean: total / iters.max(1) as u32,
            min,
            max,
            iters,
        });
    }

    /// `iter_batched` with per-iteration setup (small-input flavor).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        self.iter(|| f(setup()));
    }
}

/// Batch sizing hint (accepted, not interpreted, by this stub).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            result: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.result, b.test_mode);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        self.run(id.to_string(), f);
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn report(id: &str, result: Option<Sample>, test_mode: bool) {
    match result {
        Some(s) if !test_mode => println!(
            "{id:<48} mean {:>12?}  min {:>12?}  max {:>12?}  ({} iters)",
            s.mean, s.min, s.max, s.iters
        ),
        Some(_) => println!("{id}: ok (test mode, 1 iter)"),
        None => println!("{id}: no measurement (closure never called iter)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--test` in `cargo test` mode;
        // honor it so benches stay cheap there.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    /// Benchmarks `f` under `name` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            result: None,
        };
        f(&mut b);
        report(name, b.result, b.test_mode);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a ^ b.wrapping_mul(0x9e3779b9))
    }

    #[test]
    fn group_api_runs() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        for &n in &[1u64, 2] {
            group.bench_with_input(BenchmarkId::new("work", n), &n, |b, &n| {
                b.iter(|| work(n));
            });
        }
        group.finish();
        c.bench_function("plain", |b| b.iter(|| work(3)));
    }
}
