//! The circuits of the paper's figures.
//!
//! The paper prints topology but not element values for most examples
//! (Figs. 16, 22 and 25 give only the resulting pole tables). The circuits
//! here are reverse-engineered members of the same class whose spectra have
//! the same *shape*; DESIGN.md §3 records the substitution. Where the paper
//! does pin values (Fig. 9's `R5 = 4 Ω`; the 5 V swing; the 1 ms and 1 ns
//! rise times) we use them.

use crate::element::{NodeId, GROUND};
use crate::netlist::Circuit;
use crate::waveform::Waveform;

/// A paper circuit plus the handles experiments need.
#[derive(Clone, Debug)]
pub struct PaperCircuit {
    /// The netlist.
    pub circuit: Circuit,
    /// The node the paper observes (e.g. the node of `C4` or `C7`).
    pub output: NodeId,
    /// All labeled signal nodes, in figure order (`n1`, `n2`, …).
    pub nodes: Vec<NodeId>,
    /// Short description for reports.
    pub description: &'static str,
}

/// Supply swing used throughout the paper's examples.
pub const VDD: f64 = 5.0;

/// The RC tree of **Fig. 4**: trunk `in → R1 → n1`, branch `n1 → R2 → n2`,
/// trunk `n1 → R3 → n3 → R4 → n4`, capacitors `C1..C4` from `n1..n4` to
/// ground.
///
/// Values: `R = 1 Ω`, `C = 100 µF` each, chosen so the Elmore delay at
/// `n4` is `T_D⁴ = (R1+R3+R4)C4 + (R1+R3)C3 + R1C2 + R1C1 = 0.7 ms` —
/// matching the millisecond scale of the paper's §4.3 ramp example (whose
/// first-order homogeneous amplitude `3.5 = slope·T_D` implies
/// `T_D = 0.7 ms`).
///
/// `input` selects the source waveform (5 V step for Figs. 7 and 15, 1 ms
/// ramp for Fig. 14).
pub fn fig4(input: Waveform) -> PaperCircuit {
    let mut c = Circuit::new();
    let n_in = c.node("in");
    let n1 = c.node("n1");
    let n2 = c.node("n2");
    let n3 = c.node("n3");
    let n4 = c.node("n4");
    c.add_vsource("V1", n_in, GROUND, input).expect("valid");
    c.add_resistor("R1", n_in, n1, 1.0).expect("valid");
    c.add_resistor("R2", n1, n2, 1.0).expect("valid");
    c.add_resistor("R3", n1, n3, 1.0).expect("valid");
    c.add_resistor("R4", n3, n4, 1.0).expect("valid");
    for (name, node) in [("C1", n1), ("C2", n2), ("C3", n3), ("C4", n4)] {
        c.add_capacitor(name, node, GROUND, 1e-4).expect("valid");
    }
    PaperCircuit {
        circuit: c,
        output: n4,
        nodes: vec![n1, n2, n3, n4],
        description: "Fig. 4 RC tree (4 caps), Elmore delay 0.7 ms at n4",
    }
}

/// The **Fig. 8** RLC ladder whose steady state is trivial (all links are
/// capacitors): `in → R → L1 → n1(C1) → L2 → n2(C2) → L3 → n3(C3)`.
/// A small series source resistance damps the modes (a lossless LC chain
/// would put every pole on the imaginary axis).
pub fn fig8(input: Waveform) -> PaperCircuit {
    let mut c = Circuit::new();
    let n_in = c.node("in");
    let nr = c.node("nr");
    let n1 = c.node("n1");
    let n2 = c.node("n2");
    let n3 = c.node("n3");
    c.add_vsource("V1", n_in, GROUND, input).expect("valid");
    c.add_resistor("Rs", n_in, nr, 5.0).expect("valid");
    c.add_inductor("L1", nr, n1, 2e-9).expect("valid");
    c.add_inductor("L2", n1, n2, 2e-9).expect("valid");
    c.add_inductor("L3", n2, n3, 2e-9).expect("valid");
    c.add_capacitor("C1", n1, GROUND, 0.5e-12).expect("valid");
    c.add_capacitor("C2", n2, GROUND, 0.5e-12).expect("valid");
    c.add_capacitor("C3", n3, GROUND, 0.5e-12).expect("valid");
    PaperCircuit {
        circuit: c,
        output: n3,
        nodes: vec![n1, n2, n3],
        description: "Fig. 8 LC ladder with trivial steady state",
    }
}

/// The **Fig. 9** circuit: the Fig. 4 tree with a grounded resistor
/// `R5 = 4 Ω` from `n1` to ground. The DC solution is no longer explicit
/// (§4.2) and the steady-state output drops to
/// `V_DD · R5 / (R1 + R5) = 4 V`.
pub fn fig9(input: Waveform) -> PaperCircuit {
    let mut p = fig4(input);
    let n1 = p.nodes[0];
    p.circuit
        .add_resistor("R5", n1, GROUND, 4.0)
        .expect("valid");
    p.description = "Fig. 9 RC tree with grounded resistor R5 = 4 Ω";
    p
}

/// The **Fig. 16** MOS interconnect model: a 10-capacitor RC tree with
/// *widely varying time constants* (the paper's actual poles span
/// `-1.78e9 … -1.64e13 s⁻¹`). Trunk `in → R1 → n1 → … → R7 → n7`
/// (output at `C7`), with side branches at `n2 → R8 → n8`,
/// `n4 → R9 → n9`, `n6 → R10 → n10`.
///
/// `v_c6_initial`: the nonequilibrium initial condition of §5.2
/// (`Some(5.0)` reproduces Table I's right half and Figs. 20–21).
pub fn fig16(input: Waveform, v_c6_initial: Option<f64>) -> PaperCircuit {
    let mut c = Circuit::new();
    let n_in = c.node("in");
    let n: Vec<NodeId> = (1..=10).map(|i| c.node(&format!("n{i}"))).collect();
    c.add_vsource("V1", n_in, GROUND, input).expect("valid");

    // Trunk resistors: decreasing toward the output.
    let trunk_r = [100.0, 50.0, 25.0, 12.0, 6.0, 3.0, 1.5];
    let mut prev = n_in;
    for (i, &r) in trunk_r.iter().enumerate() {
        c.add_resistor(&format!("R{}", i + 1), prev, n[i], r)
            .expect("valid");
        prev = n[i];
    }
    // Branches.
    c.add_resistor("R8", n[1], n[7], 200.0).expect("valid");
    c.add_resistor("R9", n[3], n[8], 20.0).expect("valid");
    c.add_resistor("R10", n[5], n[9], 2.0).expect("valid");

    // Capacitors: decreasing by roughly 2× per stage → pole spread over
    // four decades, like the paper's Table I.
    // C6 is deliberately the largest capacitor near the output so that
    // pre-charging it (§5.2) injects enough charge to bend the output
    // response without collapsing it — the regime of the paper's
    // Figs. 20–21.
    let caps = [
        1.0e-12, 5.0e-13, 2.0e-13, 1.0e-13, 5.0e-14, 2.0e-13, 1.0e-14, // C1..C7
        8.0e-13, 3.0e-14, 5.0e-15, // C8..C10 (branch ends)
    ];
    for (i, &f) in caps.iter().enumerate() {
        let ic = if i == 5 { v_c6_initial } else { None };
        c.add_capacitor_ic(&format!("C{}", i + 1), n[i], GROUND, f, ic)
            .expect("valid");
    }

    PaperCircuit {
        circuit: c,
        output: n[6],
        nodes: n,
        description: "Fig. 16 stiff 10-cap RC tree (MOS interconnect model)",
    }
}

/// The **Fig. 22** circuit: Fig. 16 with a floating coupling capacitor
/// `C11` from the output node `n7` to a victim node `n12` that carries its
/// own grounded `C12` (§5.3: charge dumped through the coupling path).
///
/// The victim also gets a weak holding resistor `R11 = 10 kΩ` to ground
/// (its quiet driver): without it `n12` would be a *floating node* in the
/// paper's §3.1 sense, whose steady state exists only by charge
/// conservation. On the nanosecond observation window the holding
/// resistor's microsecond leak is invisible, so the dumped-charge plateau
/// of the paper's Fig. 24 is preserved.
pub fn fig22(input: Waveform, v_c6_initial: Option<f64>) -> PaperCircuit {
    let mut p = fig16(input, v_c6_initial);
    let n7 = p.output;
    let n12 = p.circuit.node("n12");
    p.circuit
        .add_capacitor("C11", n7, n12, 2.0e-13)
        .expect("valid");
    p.circuit
        .add_capacitor("C12", n12, GROUND, 5.0e-13)
        .expect("valid");
    p.circuit
        .add_resistor("R11", n12, GROUND, 1.0e4)
        .expect("valid");
    p.nodes.push(n12);
    p.description = "Fig. 22 RC tree with floating coupling capacitor";
    p
}

/// Victim node (`C12`'s node) of the [`fig22`] circuit — the node whose
/// dumped-charge waveform is the paper's Fig. 24.
pub fn fig22_victim(p: &PaperCircuit) -> NodeId {
    *p.nodes.last().expect("fig22 appends n12")
}

/// The **Fig. 22** circuit with a *truly floating* victim: no holding
/// resistor, so `n12` is a §3.1 floating node whose steady state exists
/// only by charge conservation. The dumped charge never leaks — the
/// paper's Fig. 24 plateau exactly. Requires the charge-conservation
/// machinery (`awe-mna`'s floating-group support).
pub fn fig22_floating(input: Waveform, v_c6_initial: Option<f64>) -> PaperCircuit {
    let mut p = fig16(input, v_c6_initial);
    let n7 = p.output;
    let n12 = p.circuit.node("n12");
    p.circuit
        .add_capacitor("C11", n7, n12, 2.0e-13)
        .expect("valid");
    p.circuit
        .add_capacitor("C12", n12, GROUND, 5.0e-13)
        .expect("valid");
    p.nodes.push(n12);
    p.description = "Fig. 22 with a truly floating victim node (charge conservation)";
    p
}

/// The **Fig. 25** underdamped RLC circuit with three complex pole pairs:
/// `in → R1 → L1 → n1(C1) → L2 → n2(C2) → L3 → n3(C3)`.
///
/// Values `R1 = 30 Ω`, `L = 5 nH`, reverse-tapered `C = 2/4/10 pF` give
/// three underdamped pairs at `-1.3e9 ± 2.0e9j`, `-7.7e8 ± 8.6e9j` and
/// `-8.9e8 ± 1.5e10j` — the same pattern as the paper's Table II
/// (`-1.35e9 ± 2.6e9j`, `-8.2e8 ± 6.8e9j`, `-3.3e8 ± 1.62e10j`), with the
/// fast pair carrying little of the output response so a fourth-order AWE
/// match is nearly exact, as in the paper's Fig. 26.
pub fn fig25(input: Waveform) -> PaperCircuit {
    let mut c = Circuit::new();
    let n_in = c.node("in");
    let nr = c.node("nr");
    let n1 = c.node("n1");
    let n2 = c.node("n2");
    let n3 = c.node("n3");
    c.add_vsource("V1", n_in, GROUND, input).expect("valid");
    c.add_resistor("R1", n_in, nr, 30.0).expect("valid");
    c.add_inductor("L1", nr, n1, 5e-9).expect("valid");
    c.add_inductor("L2", n1, n2, 5e-9).expect("valid");
    c.add_inductor("L3", n2, n3, 5e-9).expect("valid");
    c.add_capacitor("C1", n1, GROUND, 2e-12).expect("valid");
    c.add_capacitor("C2", n2, GROUND, 4e-12).expect("valid");
    c.add_capacitor("C3", n3, GROUND, 1e-11).expect("valid");
    PaperCircuit {
        circuit: c,
        output: n3,
        nodes: vec![n1, n2, n3],
        description: "Fig. 25 underdamped RLC ladder (three complex pole pairs)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::analyze;

    #[test]
    fn fig4_is_strict_rc_tree_with_expected_elmore_structure() {
        let p = fig4(Waveform::step(0.0, VDD));
        let r = analyze(&p.circuit);
        assert!(r.is_rc_tree());
        assert_eq!(p.circuit.num_states(), 4);
        assert_eq!(p.nodes.len(), 4);
        assert_eq!(p.output, p.nodes[3]);
    }

    #[test]
    fn fig8_links_are_all_capacitors() {
        use crate::graph::SpanningTree;
        let p = fig8(Waveform::step(0.0, VDD));
        let st = SpanningTree::build(&p.circuit);
        assert!(st.is_connected());
        for &l in &st.link_edges {
            assert_eq!(p.circuit.elements()[l].kind(), 'C');
        }
        assert!(analyze(&p.circuit).has_explicit_steady_state());
    }

    #[test]
    fn fig9_has_grounded_resistor_and_inexplicit_dc() {
        let p = fig9(Waveform::step(0.0, VDD));
        let r = analyze(&p.circuit);
        assert!(r.has_grounded_resistors);
        assert!(!r.has_explicit_steady_state());
        assert!(!r.is_rc_tree());
    }

    #[test]
    fn fig16_structure() {
        let p = fig16(Waveform::step(0.0, VDD), None);
        let r = analyze(&p.circuit);
        assert!(r.is_rc_tree());
        assert_eq!(p.circuit.num_states(), 10);
        assert!(!r.has_initial_conditions);
        let p_ic = fig16(Waveform::step(0.0, VDD), Some(VDD));
        assert!(analyze(&p_ic.circuit).has_initial_conditions);
    }

    #[test]
    fn fig22_adds_floating_cap() {
        let p = fig22(Waveform::step(0.0, VDD), None);
        let r = analyze(&p.circuit);
        assert!(r.has_floating_capacitors);
        assert!(!r.is_rc_tree());
        assert_eq!(p.circuit.num_states(), 12);
        let victim = fig22_victim(&p);
        assert_eq!(p.circuit.node_name(victim), "n12");
    }

    #[test]
    fn fig25_has_inductors() {
        let p = fig25(Waveform::step(0.0, VDD));
        let r = analyze(&p.circuit);
        assert!(r.has_inductors);
        assert_eq!(p.circuit.num_states(), 6);
    }

    #[test]
    fn all_paper_circuits_connected() {
        use crate::graph::SpanningTree;
        let step = || Waveform::step(0.0, VDD);
        for p in [
            fig4(step()),
            fig8(step()),
            fig9(step()),
            fig16(step(), None),
            fig22(step(), Some(VDD)),
            fig25(step()),
        ] {
            let st = SpanningTree::build(&p.circuit);
            assert!(st.is_connected(), "{} disconnected", p.description);
        }
    }
}
