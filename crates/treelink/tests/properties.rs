#![allow(clippy::needless_range_loop)] // index loops mirror the moment-sequence algebra

//! Property-based tests: the O(n) tree walk agrees with the dense MNA
//! engine on arbitrary generated circuits of its supported class.

use proptest::prelude::*;

use awe_circuit::generators::{coupled_rc_lines, random_rc_tree, rc_mesh};
use awe_circuit::Waveform;
use awe_mna::{MnaSystem, MomentEngine};
use awe_treelink::TreeAnalysis;

/// Compare walk moments against MNA moments at every signal node.
fn assert_walk_matches_mna(
    circuit: &awe_circuit::Circuit,
    nodes: &[awe_circuit::NodeId],
    jump: f64,
    count: usize,
) -> Result<(), TestCaseError> {
    let ta = TreeAnalysis::new(circuit).expect("supported class");
    let walk = ta.step_moments(&[jump], count).expect("moments");
    let sys = MnaSystem::build(circuit).expect("builds");
    let eng = MomentEngine::new(&sys).expect("nonsingular");
    let dec = eng.decompose(count).expect("moments");
    let piece = &dec.pieces[0];
    for &node in nodes {
        let i = sys.unknown_of_node(node).expect("unknown");
        for k in 0..count {
            let a = walk[k][node];
            let b = piece.moments[k][i];
            prop_assert!(
                (a - b).abs() <= 1e-8 * b.abs().max(1e-18),
                "node {node} moment {k}: walk {a} vs mna {b}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn walk_matches_mna_on_random_trees(n in 1usize..25, seed in 0u64..400) {
        let g = random_rc_tree(
            n,
            (1.0, 500.0),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, 5.0),
        );
        assert_walk_matches_mna(&g.circuit, &g.nodes, 5.0, 4)?;
    }

    #[test]
    fn walk_matches_mna_on_meshes(rows in 1usize..4, cols in 1usize..4) {
        let g = rc_mesh(rows, cols, 7.0, 2e-13, Waveform::step(0.0, 5.0));
        assert_walk_matches_mna(&g.circuit, &g.nodes, 5.0, 4)?;
    }

    #[test]
    fn walk_matches_mna_with_coupling(segments in 1usize..6) {
        // Floating caps: the walk handles two-node injections. The quiet
        // victim line's source makes two sources; drive both with the
        // same jump for the comparison.
        let g = coupled_rc_lines(segments, 20.0, 1e-13, 4e-14, Waveform::step(0.0, 5.0));
        let ta = TreeAnalysis::new(&g.circuit).expect("supported");
        let walk = ta.step_moments(&[5.0, 0.0], 4).expect("moments");
        let sys = MnaSystem::build(&g.circuit).expect("builds");
        let eng = MomentEngine::new(&sys).expect("nonsingular");
        let dec = eng.decompose(4).expect("moments");
        let piece = &dec.pieces[0];
        for &node in &g.nodes {
            let i = sys.unknown_of_node(node).expect("unknown");
            for k in 0..4 {
                let a = walk[k][node];
                let b = piece.moments[k][i];
                prop_assert!(
                    (a - b).abs() <= 1e-8 * b.abs().max(1e-18),
                    "node {node} moment {k}: {a} vs {b}"
                );
            }
        }
    }

    /// Elmore delays are positive and monotone along any root path.
    #[test]
    fn elmore_monotone_along_paths(n in 1usize..25, seed in 0u64..400) {
        let g = random_rc_tree(
            n,
            (1.0, 500.0),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, 1.0),
        );
        let ta = TreeAnalysis::new(&g.circuit).expect("tree");
        let t_d = ta.elmore_delays().expect("strict tree");
        let st = awe_circuit::SpanningTree::build(&g.circuit);
        for &node in &g.nodes {
            prop_assert!(t_d[node] > 0.0);
            // Delay never decreases moving away from the source.
            for (_, from, to) in st.path_to_root(node) {
                if to != awe_circuit::GROUND {
                    prop_assert!(
                        t_d[from] >= t_d[to] - 1e-18,
                        "T_D({from})={} < T_D({to})={}",
                        t_d[from],
                        t_d[to]
                    );
                }
            }
        }
    }

    /// The link-corrected DC solve satisfies KCL: pushing the voltages
    /// back through G (via MNA) reproduces the injections.
    #[test]
    fn link_corrected_solve_satisfies_kcl(rows in 2usize..4, cols in 2usize..4) {
        let g = rc_mesh(rows, cols, 3.0, 1e-13, Waveform::step(0.0, 2.0));
        let ta = TreeAnalysis::new(&g.circuit).expect("mesh");
        prop_assert!(ta.num_resistor_links() > 0);
        let v = ta.dc(&[2.0]).expect("dc");
        // All nodes at the rail (no grounded R in a mesh).
        for &node in &g.nodes {
            prop_assert!((v[node] - 2.0).abs() < 1e-9);
        }
    }
}
