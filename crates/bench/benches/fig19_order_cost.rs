//! Fig. 19 — CPU-time comparison between the first-order approximation
//! and the *incremental* cost of the second order.
//!
//! The paper's claim: higher orders come at incremental cost because the
//! LU factors of `G` are reused — each extra moment is one forward/back
//! substitution. We measure (a) the full first-order pipeline, (b) the
//! incremental two extra moments, and (c) the full second-order pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use awe_circuit::papers::fig16;
use awe_circuit::Waveform;
use awe_mna::{MnaSystem, MomentEngine};

fn bench_order_cost(c: &mut Criterion) {
    let p = fig16(Waveform::step(0.0, 5.0), None);
    let sys = MnaSystem::build(&p.circuit).expect("builds");

    let mut group = c.benchmark_group("fig19_order_cost");

    group.bench_function("first_order_setup", |b| {
        b.iter(|| {
            let eng = MomentEngine::new(black_box(&sys)).expect("factor");
            let dec = eng.decompose(2).expect("moments");
            black_box(dec);
        })
    });

    // Incremental second order: reuse the factors, two more moments.
    let eng = MomentEngine::new(&sys).expect("factor");
    let dec = eng.decompose(2).expect("moments");
    let seed = dec.pieces[0].moments[0].clone();
    let w: Vec<f64> = sys.c_times(&seed).iter().map(|v| -v).collect();
    group.bench_function("incremental_second_order", |b| {
        b.iter(|| {
            let m = eng
                .homogeneous_moments(black_box(seed.clone()), black_box(&w), 4)
                .expect("moments");
            black_box(m);
        })
    });

    group.bench_function("full_second_order", |b| {
        b.iter(|| {
            let eng = MomentEngine::new(black_box(&sys)).expect("factor");
            let dec = eng.decompose(4).expect("moments");
            black_box(dec);
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_order_cost
}
criterion_main!(benches);
