//! From-scratch work-stealing thread pool (std-only: `std::thread`,
//! `Mutex`, atomics — per the workspace dependency policy).
//!
//! Jobs are indices `0..jobs`, seeded into per-worker deques in contiguous
//! chunks. A worker drains a *chunk* of jobs from the front of its own
//! deque per lock acquisition into a private buffer, and when empty steals
//! *half* the most-loaded victim's deque from the back — the classic split
//! that keeps owner access cache-warm while stealers take the work
//! farthest from the owner's current position. Victims are chosen from
//! lock-free approximate lengths, so an idle worker never locks every
//! deque just to look. Chunking is what makes short jobs scale: one lock
//! per chunk instead of one per job took the 4-thread overhead from ~7 %
//! of each job's runtime to parity. Results land in per-job slots, so the
//! output order is the job order no matter which worker ran what, which is
//! what makes batch reports deterministic across thread counts.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Jobs obtained by stealing, across all pool runs of a recording.
static POOL_STEALS: awe_obs::Counter = awe_obs::Counter::new("pool.steals");
/// Deque length observed at each refill (owner's own deque, before the
/// drain) — the live-queue-depth distribution of a run.
static QUEUE_DEPTH: awe_obs::Histogram = awe_obs::Histogram::new("pool.queue_depth");

/// Scheduler observability for one pool run.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Worker count actually used.
    pub threads: usize,
    /// Jobs executed per worker.
    pub executed: Vec<usize>,
    /// Jobs each worker obtained by stealing.
    pub steals: Vec<usize>,
}

impl PoolStats {
    /// Total steals across workers.
    pub fn total_steals(&self) -> usize {
        self.steals.iter().sum()
    }
}

/// Runs `f(job, worker)` for `job` in `0..jobs` across `threads` workers,
/// returning results in job order plus scheduler stats. The closure's
/// second argument is the index of the worker running the job, so callers
/// can attribute per-job work (times, counters) to the worker that
/// actually did it.
///
/// `threads == 0` uses [`std::thread::available_parallelism`]; explicit
/// requests are *capped* at the available parallelism too — the jobs are
/// CPU-bound, so oversubscribed workers only add context-switch and
/// steal-contention overhead (requesting 8 workers on a 4-core host
/// measurably ran slower than 4). The worker count is clamped to the job
/// count; one effective worker runs inline on the caller thread (no
/// spawn), so single-threaded runs are exactly sequential.
///
/// When an [`awe_obs`] recording is live, each spawned worker labels its
/// trace lane `worker-N` (the inline single-worker path labels the caller
/// thread `worker-0`), steals feed the `pool.steals` counter, and the
/// owner-deque length at every refill feeds the `pool.queue_depth`
/// histogram.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn run_indexed<T, F>(jobs: usize, threads: usize, f: F) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    run_indexed_with(jobs, effective_threads(threads, jobs), f)
}

/// [`run_indexed`] with the worker count taken verbatim (callers resolve
/// and cap it). Kept separate so scheduler tests can force a specific
/// worker count regardless of the host's core count.
fn run_indexed_with<T, F>(jobs: usize, threads: usize, f: F) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let threads = threads.clamp(1, jobs.max(1));
    if jobs == 0 {
        return (
            Vec::new(),
            PoolStats {
                threads,
                executed: vec![0; threads],
                steals: vec![0; threads],
            },
        );
    }
    if threads == 1 {
        if awe_obs::enabled() {
            awe_obs::set_lane_label("worker-0");
        }
        let results = (0..jobs).map(|i| f(i, 0)).collect();
        return (
            results,
            PoolStats {
                threads: 1,
                executed: vec![jobs],
                steals: vec![0],
            },
        );
    }

    // Seed contiguous chunks so neighboring nets start on the same worker.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = w * jobs / threads;
            let hi = (w + 1) * jobs / threads;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    // Approximate deque lengths, maintained under each deque's lock but
    // readable without it: the victim scan is advisory, so a stale read
    // costs at worst one wasted lock on an emptied victim.
    let lens: Vec<AtomicUsize> = deques
        .iter()
        .map(|d| AtomicUsize::new(d.lock().expect("deque lock").len()))
        .collect();
    let remaining = AtomicUsize::new(jobs);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let executed: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let steals: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();

    // Forward the spawner's ambient request id (if any) into every
    // worker, so a daemon request's spans and health events stay
    // attributable to it across the pool boundary.
    let req = awe_obs::current_request();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let deques = &deques;
            let lens = &lens;
            let remaining = &remaining;
            let slots = &slots;
            let executed = &executed;
            let steals = &steals;
            let f = &f;
            scope.spawn(move || {
                let _req = awe_obs::req_scope(req);
                if awe_obs::enabled() {
                    awe_obs::set_lane_label(&format!("worker-{w}"));
                }
                // Jobs claimed but not yet run. Buffered jobs are invisible
                // to stealers, so the chunk size is capped: large enough to
                // amortize the lock, small enough that a heavy tail can
                // still be stolen out of the shared deque.
                let mut local: VecDeque<usize> = VecDeque::new();
                loop {
                    if local.is_empty() {
                        // Refill: drain a chunk off the front of our deque
                        // under one lock.
                        let mut dq = deques[w].lock().expect("deque lock");
                        QUEUE_DEPTH.record(dq.len() as f64);
                        let take = chunk_size(dq.len());
                        local.extend(dq.drain(..take));
                        lens[w].store(dq.len(), Ordering::Release);
                    }
                    if local.is_empty() {
                        // Steal: pick the fullest victim from the advisory
                        // lengths, then take half its deque from the back.
                        let victim = (0..threads)
                            .filter(|&v| v != w)
                            .map(|v| (lens[v].load(Ordering::Acquire), v))
                            .max()
                            .filter(|&(len, _)| len > 0)
                            .map(|(_, v)| v);
                        if let Some(v) = victim {
                            let mut dq = deques[v].lock().expect("deque lock");
                            let take = steal_size(dq.len());
                            let split = dq.len() - take;
                            local.extend(dq.drain(split..));
                            lens[v].store(dq.len(), Ordering::Release);
                            drop(dq);
                            steals[w].fetch_add(local.len(), Ordering::Relaxed);
                            POOL_STEALS.add(local.len() as u64);
                            // Stolen back-half jobs run oldest-first to
                            // preserve rough job-order locality.
                        }
                    }
                    match local.pop_front() {
                        Some(idx) => {
                            let result = f(idx, w);
                            *slots[idx].lock().expect("slot lock") = Some(result);
                            executed[w].fetch_add(1, Ordering::Relaxed);
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        None => {
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            // Another worker still owns in-flight jobs;
                            // nothing to steal right now.
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every job ran exactly once")
        })
        .collect();
    let stats = PoolStats {
        threads,
        executed: executed.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        steals: steals.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
    };
    (results, stats)
}

/// How many jobs to move per lock acquisition: a quarter of what's there,
/// clamped to `[1, 8]` (0 when the deque is empty). The cap bounds how
/// much work can hide in a private buffer; the quarter keeps the tail of a
/// large deque available to other stealers.
fn chunk_size(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        (len / 4).clamp(1, 8)
    }
}

/// How many jobs a steal takes: half the victim's deque (the classic
/// split — the victim keeps the cache-warm front, the thief takes the
/// far-from-owner back), capped at 8 so one thief cannot hide a long run
/// of jobs from the others.
fn steal_size(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        (len / 2).clamp(1, 8)
    }
}

pub(crate) fn effective_threads(requested: usize, jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t = if requested == 0 {
        cores
    } else {
        requested.min(cores)
    };
    t.clamp(1, jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_job_order() {
        for threads in [1, 2, 4, 8] {
            let (results, stats) = run_indexed(100, threads, |i, _w| i * i);
            assert_eq!(results, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.executed.iter().sum::<usize>(), 100);
        }
    }

    #[test]
    fn zero_jobs() {
        let (results, stats) = run_indexed(0, 4, |i, _w| i);
        assert!(results.is_empty());
        assert_eq!(stats.executed.iter().sum::<usize>(), 0);
    }

    #[test]
    fn more_threads_than_jobs() {
        let (results, stats) = run_indexed(3, 16, |i, _w| i + 1);
        assert_eq!(results, vec![1, 2, 3]);
        assert!(stats.threads <= 3);
    }

    #[test]
    fn imbalanced_work_is_stolen() {
        // Front-loaded cost: worker 0's chunk is far heavier, so with the
        // stealing policy other workers must take some of it. Verify all
        // work completes and the slow chunk did not serialize the run into
        // worker 0 executing everything while others idle — i.e. every
        // worker executed something.
        let (results, stats) = run_indexed_with(64, 4, |i, _w| {
            let spins = if i < 16 { 2_000_000 } else { 1_000 };
            (0..spins).fold(i as u64, |a, b| a ^ (b as u64).wrapping_mul(31))
        });
        assert_eq!(results.len(), 64);
        assert_eq!(stats.executed.iter().sum::<usize>(), 64);
        // Chunked claiming means a late-scheduled worker can find its
        // deque already stolen empty (especially on one core), so the
        // invariant is that work *moved* — not that every worker ran some.
        assert!(
            stats.total_steals() > 0,
            "imbalance should force steals: {stats:?}"
        );
        assert!(
            stats.executed.iter().filter(|&&e| e > 0).count() >= 2,
            "work should not serialize onto one worker: {:?}",
            stats.executed
        );
    }

    #[test]
    fn chunk_size_is_bounded_and_progresses() {
        assert_eq!(chunk_size(0), 0);
        assert_eq!(chunk_size(1), 1); // always progress on nonempty deques
        assert_eq!(chunk_size(3), 1);
        assert_eq!(chunk_size(16), 4);
        assert_eq!(chunk_size(10_000), 8); // cap keeps work stealable
    }

    #[test]
    fn steal_size_takes_half_bounded() {
        assert_eq!(steal_size(0), 0);
        assert_eq!(steal_size(1), 1); // a thief always makes progress
        assert_eq!(steal_size(6), 3);
        assert_eq!(steal_size(10_000), 8); // cap bounds hidden work
    }

    #[test]
    fn explicit_requests_capped_at_available_parallelism() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Oversubscription is never granted…
        assert!(effective_threads(1024, 1 << 20) <= cores);
        // …and the job-count clamp still applies.
        assert_eq!(effective_threads(1024, 2), 2.min(cores));
        assert_eq!(effective_threads(0, 0), 1);
        assert_eq!(effective_threads(1, 100), 1);
    }

    #[test]
    fn steals_are_counted_per_job() {
        // One worker's chunk is heavy; the others must pull jobs across,
        // and the steal counter tallies jobs (not chunks).
        let (results, stats) = run_indexed_with(64, 4, |i, _w| {
            let spins = if i < 16 { 1_000_000 } else { 100 };
            (0..spins).fold(i as u64, |a, b| a ^ (b as u64).wrapping_mul(31))
        });
        assert_eq!(results.len(), 64);
        assert_eq!(stats.executed.iter().sum::<usize>(), 64);
        assert!(stats.total_steals() > 0, "stats: {stats:?}");
        assert!(stats.total_steals() < 64);
    }

    #[test]
    fn single_thread_runs_inline() {
        let id = std::thread::current().id();
        let (results, _) = run_indexed(5, 1, move |i, _w| {
            assert_eq!(std::thread::current().id(), id);
            i
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
    }
}
