//! Assembled response waveforms and delay metrics.
//!
//! An AWE result is a *waveform*, not just a delay number — the paper's
//! point versus the classical RC-tree methods (§2.1: a single `T_D` value
//! "does not consider the logic thresholds of actual MOS devices").
//! [`AweApproximation`] superposes the per-piece reduced models
//! (homogeneous exponential sums plus step/ramp particular solutions,
//! §4.3) and offers evaluation, sampling, 50 %-delay and logic-threshold
//! crossing measurements.

use awe_numeric::Complex;

use crate::terms::ExpSum;

/// One superposition piece of the response at a single node: active for
/// `t ≥ onset`, contributing `a + b·(t-onset) + transient(t-onset)`.
#[derive(Clone, Debug)]
pub struct ResponsePiece {
    /// Onset time.
    pub onset: f64,
    /// Constant part of the particular solution.
    pub a: f64,
    /// Ramp slope of the particular solution.
    pub b: f64,
    /// Reduced homogeneous transient.
    pub transient: ExpSum,
}

impl ResponsePiece {
    /// Piece value at absolute time `t` (zero before onset).
    pub fn eval(&self, t: f64) -> f64 {
        if t < self.onset {
            return 0.0;
        }
        let tau = t - self.onset;
        self.a + self.b * tau + self.transient.eval(tau)
    }
}

/// A complete AWE response approximation at one node.
#[derive(Clone, Debug)]
pub struct AweApproximation {
    /// Approximation order `q` actually used for the dominant piece.
    pub order: usize,
    /// DC baseline (pre-transition operating point).
    pub baseline: f64,
    /// Superposition pieces.
    pub pieces: Vec<ResponsePiece>,
    /// §3.4 relative error estimate versus the `(q+1)`-order model, when
    /// computed and finite. `None` also when the `(q+1)` reference was
    /// itself untrustworthy (unstable or ill-conditioned) — a garbage
    /// reference must not masquerade as an error bound.
    pub error_estimate: Option<f64>,
    /// Worst moment-matrix condition estimate across pieces, measured on
    /// the frequency-scaled, equilibrated Hankel system.
    pub condition: f64,
    /// `true` when every approximating pole is strictly stable.
    pub stable: bool,
    /// Poles discarded by the partial-Padé filter (right-half-plane or
    /// spuriously fast); `0` means the model was delivered un-rescued.
    pub discarded: usize,
    /// Moment-tail mismatch: worst relative disagreement between the
    /// delivered model's predicted high moments (entries beyond the
    /// matched `2q` window) and the actually computed ones. Large values
    /// mean the model dropped modes the moment sequence still carries —
    /// the §3.4 auto-order blind spot. `None` when no unmatched moments
    /// were available to check.
    pub moment_tail: Option<f64>,
}

impl AweApproximation {
    /// Whether the model can be trusted for timing: every pole stable and
    /// the moment-matrix condition within the engine's trust cap (1e14,
    /// the fuzz-calibrated cliff past which residues are garbage even
    /// when the poles look fine). [`crate::AweEngine::approximate_auto`]
    /// and the batch auto-order policy both gate on this.
    pub fn trusted(&self) -> bool {
        self.stable && self.condition <= crate::engine::CONDITION_WARN
    }

    /// Whether the moment-tail check passed (or had nothing to check):
    /// the model also predicts the moments it was *not* fit to, so no
    /// truncated mode is hiding from the §3.4 q-vs-(q+1) error estimate.
    pub fn tail_converged(&self) -> bool {
        self.moment_tail
            .is_none_or(|t| t <= crate::engine::TAIL_TOL)
    }

    /// Response value at time `t`.
    ///
    /// ```
    /// use awe::{AweApproximation, ResponsePiece, ExpSum, ExpTerm};
    /// use awe_numeric::Complex;
    ///
    /// let approx = AweApproximation {
    ///     order: 1,
    ///     baseline: 0.0,
    ///     pieces: vec![ResponsePiece {
    ///         onset: 0.0,
    ///         a: 5.0,
    ///         b: 0.0,
    ///         transient: ExpSum::new(vec![ExpTerm::simple(
    ///             Complex::real(-1.0),
    ///             Complex::real(-5.0),
    ///         )]),
    ///     }],
    ///     error_estimate: None,
    ///     condition: 1.0,
    ///     stable: true,
    ///     discarded: 0,
    ///     moment_tail: None,
    /// };
    /// assert!((approx.eval(0.0)).abs() < 1e-12);
    /// assert!((approx.final_value() - 5.0).abs() < 1e-12);
    /// ```
    pub fn eval(&self, t: f64) -> f64 {
        self.baseline + self.pieces.iter().map(|p| p.eval(t)).sum::<f64>()
    }

    /// Samples the response at `n` uniformly spaced points over
    /// `[t0, t1]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `t1 <= t0`.
    pub fn sample(&self, t0: f64, t1: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two samples");
        assert!(t1 > t0, "empty time range");
        (0..n)
            .map(|i| {
                let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
                (t, self.eval(t))
            })
            .collect()
    }

    /// The value as `t → ∞` (transients decayed, ramp slopes summed —
    /// zero for bounded inputs).
    pub fn final_value(&self) -> f64 {
        let total_slope: f64 = self.pieces.iter().map(|p| p.b).sum();
        let base: f64 =
            self.baseline + self.pieces.iter().map(|p| p.a - p.b * p.onset).sum::<f64>();
        if total_slope.abs() > 0.0 {
            // Unbounded ramp: report the value at the settling horizon.
            base + total_slope * self.horizon()
        } else {
            base
        }
    }

    /// Initial value at `t = 0⁺`.
    pub fn initial_value(&self) -> f64 {
        self.eval(0.0)
    }

    /// All approximating poles across pieces (deduplicated within
    /// relative tolerance).
    pub fn poles(&self) -> Vec<Complex> {
        let mut out: Vec<Complex> = Vec::new();
        for piece in &self.pieces {
            for term in piece.transient.terms() {
                if !out
                    .iter()
                    .any(|p| (*p - term.pole).abs() <= 1e-9 * term.pole.abs().max(1.0))
                {
                    out.push(term.pole);
                }
            }
        }
        out.sort_by(|a, b| {
            b.re.partial_cmp(&a.re)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.im.partial_cmp(&b.im).unwrap_or(std::cmp::Ordering::Equal))
        });
        out
    }

    /// A settling horizon: the last onset plus several dominant time
    /// constants.
    pub fn horizon(&self) -> f64 {
        let last_onset = self.pieces.iter().map(|p| p.onset).fold(0.0f64, f64::max);
        let settle = self
            .pieces
            .iter()
            .filter_map(|p| p.transient.settle_time(12.0))
            .fold(0.0f64, f64::max);
        let fallback = if settle > 0.0 { settle } else { 1.0 };
        last_onset + fallback
    }

    /// First time the response crosses `level`, searched over
    /// `[0, horizon]` with dense scanning plus bisection. Handles
    /// nonmonotone responses by reporting the *first* crossing.
    ///
    /// Returns `None` if the level is never crossed.
    pub fn threshold_crossing(&self, level: f64) -> Option<f64> {
        let t_end = self.horizon();
        let n = 4096;
        let mut prev_t = 0.0f64;
        let mut prev_v = self.eval(0.0);
        if prev_v == level {
            return Some(0.0);
        }
        let start_sign = (prev_v - level).signum();
        for i in 1..=n {
            let t = t_end * i as f64 / n as f64;
            let v = self.eval(t);
            if (v - level).signum() != start_sign {
                // Bisect within [prev_t, t].
                let (mut lo, mut hi) = (prev_t, t);
                for _ in 0..80 {
                    let mid = 0.5 * (lo + hi);
                    if (self.eval(mid) - level).signum() == start_sign {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                return Some(0.5 * (lo + hi));
            }
            prev_t = t;
            prev_v = v;
        }
        let _ = prev_v;
        None
    }

    /// The 50 % delay: the first time the response reaches the midpoint
    /// between its initial and final values (the paper's Fig. 2
    /// definition). `None` if the response never gets there (e.g.
    /// wrong-signed approximations) or start and end coincide.
    pub fn delay_50(&self) -> Option<f64> {
        let v0 = self.initial_value();
        let vf = self.final_value();
        if (vf - v0).abs() == 0.0 {
            return None;
        }
        self.threshold_crossing(v0 + 0.5 * (vf - v0))
    }

    /// Delay to an absolute logic threshold (§5.3 uses 4.0 V).
    pub fn delay_to_threshold(&self, threshold: f64) -> Option<f64> {
        self.threshold_crossing(threshold)
    }

    /// Transition (slew) time between two swing fractions, conventionally
    /// 10 %–90 %: the time between the first crossings of
    /// `v0 + lo·swing` and `v0 + hi·swing`.
    ///
    /// Returns `None` if either level is never reached or the response is
    /// flat.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lo < hi ≤ 1`.
    pub fn transition_time(&self, lo: f64, hi: f64) -> Option<f64> {
        assert!(
            (0.0..1.0).contains(&lo) && lo < hi && hi <= 1.0,
            "fractions must satisfy 0 ≤ lo < hi ≤ 1"
        );
        let v0 = self.initial_value();
        let vf = self.final_value();
        if vf == v0 {
            return None;
        }
        let t_lo = self.threshold_crossing(v0 + lo * (vf - v0))?;
        let t_hi = self.threshold_crossing(v0 + hi * (vf - v0))?;
        (t_hi >= t_lo).then_some(t_hi - t_lo)
    }

    /// The conventional 10 %–90 % slew time.
    pub fn slew_10_90(&self) -> Option<f64> {
        self.transition_time(0.1, 0.9)
    }

    /// Peak deviation beyond the final value, as a fraction of the swing —
    /// the overshoot of ringing responses (§5.4). Zero for monotone
    /// responses.
    pub fn overshoot(&self) -> f64 {
        let v0 = self.initial_value();
        let vf = self.final_value();
        let swing = vf - v0;
        if swing == 0.0 {
            return 0.0;
        }
        let horizon = self.horizon();
        let mut worst = 0.0f64;
        for i in 0..4096 {
            let v = self.eval(horizon * i as f64 / 4095.0);
            let beyond = (v - vf) / swing;
            worst = worst.max(beyond);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::ExpTerm;

    fn single_pole_step(v: f64, tau: f64) -> AweApproximation {
        AweApproximation {
            order: 1,
            baseline: 0.0,
            pieces: vec![ResponsePiece {
                onset: 0.0,
                a: v,
                b: 0.0,
                transient: ExpSum::new(vec![ExpTerm::simple(
                    Complex::real(-1.0 / tau),
                    Complex::real(-v),
                )]),
            }],
            error_estimate: None,
            condition: 1.0,
            stable: true,
            discarded: 0,
            moment_tail: None,
        }
    }

    #[test]
    fn rc_step_delay_is_ln2_tau() {
        let a = single_pole_step(5.0, 1e-3);
        let d = a.delay_50().unwrap();
        assert!((d - 1e-3 * 2.0f64.ln()).abs() < 1e-7, "d = {d}");
        assert!((a.final_value() - 5.0).abs() < 1e-12);
        assert!(a.initial_value().abs() < 1e-12);
    }

    #[test]
    fn threshold_crossing_absolute() {
        let a = single_pole_step(5.0, 1.0);
        // v(t) = 5(1 - e^-t) = 4 → t = ln 5.
        let t = a.delay_to_threshold(4.0).unwrap();
        assert!((t - 5.0f64.ln()).abs() < 1e-7);
        assert_eq!(a.delay_to_threshold(6.0), None);
    }

    #[test]
    fn onset_shifting() {
        let mut a = single_pole_step(5.0, 1.0);
        a.pieces[0].onset = 2.0;
        assert_eq!(a.eval(1.9), 0.0);
        assert!((a.eval(2.0)).abs() < 1e-12);
        assert!(a.eval(3.0) > 0.0);
        let d = a.delay_50().unwrap();
        assert!((d - (2.0 + 2.0f64.ln())).abs() < 1e-6);
    }

    #[test]
    fn ramp_pieces_cancel_in_final_value() {
        // +slope at 0, −slope at 1: bounded ramp to slope·1.
        let slope = 3.0;
        let mk = |onset: f64, b: f64| ResponsePiece {
            onset,
            a: 0.0,
            b,
            transient: ExpSum::zero(),
        };
        let a = AweApproximation {
            order: 1,
            baseline: 0.5,
            pieces: vec![mk(0.0, slope), mk(1.0, -slope)],
            error_estimate: None,
            condition: 1.0,
            stable: true,
            discarded: 0,
            moment_tail: None,
        };
        assert!((a.eval(0.5) - (0.5 + 1.5)).abs() < 1e-12);
        assert!((a.eval(4.0) - 3.5).abs() < 1e-12);
        assert!((a.final_value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn nonmonotone_first_crossing() {
        // Undershoot then rise: v = 5 - 6e^{-t} + 1e^{-10t}.
        let a = AweApproximation {
            order: 2,
            baseline: 0.0,
            pieces: vec![ResponsePiece {
                onset: 0.0,
                a: 5.0,
                b: 0.0,
                transient: ExpSum::new(vec![
                    ExpTerm::simple(Complex::real(-1.0), Complex::real(-6.0)),
                    ExpTerm::simple(Complex::real(-10.0), Complex::real(1.0)),
                ]),
            }],
            error_estimate: None,
            condition: 1.0,
            stable: true,
            discarded: 0,
            moment_tail: None,
        };
        assert!(a.eval(0.05) < 0.0, "initial dip expected");
        let t = a.threshold_crossing(2.5).unwrap();
        assert!((a.eval(t) - 2.5).abs() < 1e-9);
        let poles = a.poles();
        assert_eq!(poles.len(), 2);
        assert_eq!(poles[0].re, -1.0); // dominant first
    }

    #[test]
    fn sampling() {
        let a = single_pole_step(1.0, 1.0);
        let s = a.sample(0.0, 2.0, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[4].0, 2.0);
        assert!(s.windows(2).all(|w| w[1].1 >= w[0].1)); // monotone rise
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn sample_needs_two_points() {
        let a = single_pole_step(1.0, 1.0);
        let _ = a.sample(0.0, 1.0, 1);
    }

    #[test]
    fn slew_of_single_pole() {
        // 10-90 slew of v = V(1-e^{-t/τ}) is τ·ln 9.
        let a = single_pole_step(5.0, 1e-3);
        let s = a.slew_10_90().unwrap();
        assert!((s - 1e-3 * 9f64.ln()).abs() < 1e-7, "s = {s}");
        assert!((a.transition_time(0.2, 0.8).unwrap() - 1e-3 * 4f64.ln()).abs() < 1e-7);
        assert!(a.overshoot() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fractions must satisfy")]
    fn slew_validates_fractions() {
        let a = single_pole_step(1.0, 1.0);
        let _ = a.transition_time(0.9, 0.1);
    }

    #[test]
    fn overshoot_of_ringing_response() {
        // v = 1 - e^{-t}(cos 5t + sin 5t /5): step of ζ≈0.2 system rings.
        let p = Complex::new(-1.0, 5.0);
        // residue chosen so v(0)=0 and v̇(0)=0: k = -(1 + j/5)/2.
        let k = Complex::new(-0.5, -0.1);
        let a = AweApproximation {
            order: 2,
            baseline: 0.0,
            pieces: vec![ResponsePiece {
                onset: 0.0,
                a: 1.0,
                b: 0.0,
                transient: ExpSum::new(vec![
                    ExpTerm::simple(p, k),
                    ExpTerm::simple(p.conj(), k.conj()),
                ]),
            }],
            error_estimate: None,
            condition: 1.0,
            stable: true,
            discarded: 0,
            moment_tail: None,
        };
        let os = a.overshoot();
        // Analytic first-peak overshoot ≈ e^{-ζπ/√(1-ζ²)} with ζ≈0.196.
        assert!((0.4..0.65).contains(&os), "overshoot {os}");
    }

    #[test]
    fn degenerate_delay() {
        // Flat response: no 50 % point.
        let a = AweApproximation {
            order: 1,
            baseline: 2.0,
            pieces: vec![],
            error_estimate: None,
            condition: 1.0,
            stable: true,
            discarded: 0,
            moment_tail: None,
        };
        assert_eq!(a.delay_50(), None);
        assert_eq!(a.final_value(), 2.0);
    }
}
