//! Board-level RLC interconnect with finite input rise times (paper §I,
//! §4.3, §5.4).
//!
//! At the printed-circuit-board level, inductance makes interconnect ring,
//! and the *input rise time* can dominate the timing of a net. This
//! example sweeps the driver rise time over an RLC trace model and reports
//! the overshoot and 50 % delay AWE predicts — the faster the edge, the
//! more the trace rings.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example board_interconnect
//! ```

use awesim::circuit::generators::rlc_ladder;
use awesim::circuit::Waveform;
use awesim::core::AweEngine;
use awesim::sim::{exact_poles, simulate, TransientOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-section RLC trace: 30 Ω driver, 5 nH + 3 pF per section.
    let sections = 4;
    let (rs, l, c) = (30.0, 5e-9, 3e-12);

    // The natural frequencies of the trace (once per topology).
    let probe = rlc_ladder(sections, rs, l, c, Waveform::step(0.0, 5.0));
    let poles = exact_poles(&probe.circuit)?;
    println!("trace poles (dominant first):");
    for p in poles.iter().take(4) {
        if p.im >= 0.0 {
            println!("  {:+.3e} {:+.3e}j rad/s", p.re, p.im);
        }
    }

    println!("\n  rise [ps]   overshoot [%]   50% delay [ps]   sim delay [ps]");
    for rise_ps in [0.0, 100.0, 300.0, 1000.0, 3000.0] {
        let rise = rise_ps * 1e-12;
        let input = if rise == 0.0 {
            Waveform::step(0.0, 5.0)
        } else {
            Waveform::rising_step(0.0, 5.0, rise)
        };
        let g = rlc_ladder(sections, rs, l, c, input);
        let engine = AweEngine::new(&g.circuit)?;
        let approx = engine.approximate(g.output, 6)?;

        let horizon = approx.horizon();
        let peak = (0..4000)
            .map(|i| approx.eval(horizon * i as f64 / 4000.0))
            .fold(0.0f64, f64::max);
        let overshoot = ((peak / 5.0 - 1.0) * 100.0).max(0.0);
        let delay = approx.delay_50().expect("rising response");

        let sim = simulate(&g.circuit, TransientOptions::new(horizon))?;
        let d_sim = sim.delay_50(g.output).expect("rising waveform");

        println!(
            "  {rise_ps:9.0}   {overshoot:13.1}   {:14.1}   {:14.1}",
            delay * 1e12,
            d_sim * 1e12
        );
    }

    println!(
        "\nSlower edges suppress the ringing (smaller overshoot) and the delay\n\
         approaches input-half-rise + trace delay — the §4.3 superposition of\n\
         two ramps handles every case with the same machinery."
    );
    Ok(())
}
