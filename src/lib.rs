//! # awesim
//!
//! Facade crate for the AWEsim workspace — a Rust reproduction of
//! Pillage & Rohrer, *Asymptotic Waveform Evaluation for Timing Analysis*
//! (DAC 1989 / IEEE TCAD 1990).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`numeric`] — linear algebra / eigen / polynomial substrate.
//! * [`circuit`] — netlists, parsing, topology, paper circuits, generators.
//! * [`mna`] — modified nodal analysis and moment generation.
//! * [`treelink`] — `O(n)` tree-walk analysis for RC trees.
//! * [`core`] — the AWE engine, baselines, and waveform metrics.
//! * [`sim`] — reference transient simulator and exact poles.
//! * [`batch`] — concurrent full-design analysis with result caching and
//!   run metrics.
//! * [`serve`] — persistent-session analysis daemon with incremental
//!   ECO re-analysis (newline-delimited JSON over stdio/TCP).
//! * [`verify`] — differential-oracle fuzzing, failure minimization, and
//!   corpus replay.
//! * [`obs`] — std-only structured tracing, numerical-health events, and
//!   Chrome-trace export.
//!
//! ## Quickstart
//!
//! ```
//! use awesim::circuit::{parse_deck, Waveform};
//! use awesim::core::AweEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ckt = parse_deck(
//!     "V1 in 0 STEP 0 5
//!      R1 in n1 100
//!      C1 n1 0 1p
//!      R2 n1 n2 200
//!      C2 n2 0 0.5p",
//! )?;
//! let out = ckt.find_node("n2").expect("node exists");
//! let engine = AweEngine::new(&ckt)?;
//! let approx = engine.approximate(out, 2)?;
//! println!("50% delay: {:?}", approx.delay_50());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use awe as core;
pub use awe_batch as batch;
pub use awe_circuit as circuit;
pub use awe_mna as mna;
pub use awe_numeric as numeric;
pub use awe_obs as obs;
pub use awe_serve as serve;
pub use awe_sim as sim;
pub use awe_treelink as treelink;
pub use awe_verify as verify;
