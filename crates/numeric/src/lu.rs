//! LU factorization with partial pivoting.
//!
//! The paper's complexity argument (§3.2) hinges on factoring the hybrid
//! `H`-matrix **once** and then generating every higher moment by repeated
//! forward/back substitution of the same LU factors (eqs. (32)–(34)). This
//! module provides exactly that workflow: [`Lu::factor`] once, then
//! [`Lu::solve`] as many times as there are moments.

use crate::error::NumericError;
use crate::matrix::Matrix;

/// LU factors `P·A = L·U` of a square matrix, with partial (row) pivoting.
///
/// # Examples
///
/// ```
/// use awe_numeric::{Lu, Matrix};
///
/// # fn main() -> Result<(), awe_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[3.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Lu {
    /// Combined storage: strictly-lower part holds L (unit diagonal
    /// implicit), upper part holds U.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

impl Lu {
    /// Factors `A` as `P·A = L·U` using partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumericError::NotSquare`] if `a` is not square.
    /// * [`NumericError::Singular`] if a pivot is exactly zero. Near-zero
    ///   pivots are tolerated (the factorization proceeds) so that
    ///   conditioning diagnostics remain available; use
    ///   [`Lu::condition_estimate`] to detect trouble.
    pub fn factor(a: &Matrix) -> Result<Lu, NumericError> {
        Self::factor_reusing(a, None)
    }

    /// Factors `A` like [`Lu::factor`], reusing a previous factorization's
    /// storage instead of allocating. The result is bit-identical to a
    /// fresh `factor(a)` — same pivot search, same elimination — only the
    /// backing buffers differ. Batch tape replay threads each worker's
    /// retired `Lu` back through here so per-net dense factorization
    /// allocates nothing in steady state.
    ///
    /// # Errors
    ///
    /// Identical to [`Lu::factor`].
    pub fn factor_reusing(a: &Matrix, recycle: Option<Lu>) -> Result<Lu, NumericError> {
        if !a.is_square() {
            return Err(NumericError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let (mut lu, mut perm) = match recycle {
            Some(old) => {
                let Lu {
                    lu: mut m,
                    perm: mut p,
                    ..
                } = old;
                m.copy_from(a);
                p.clear();
                p.extend(0..n);
                (m, p)
            }
            None => (a.clone(), (0..n).collect::<Vec<usize>>()),
        };
        let mut sign = 1.0;

        for k in 0..n {
            // Pivot: largest magnitude in column k at or below the diagonal.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 {
                return Err(NumericError::Singular { pivot: k });
            }
            if p != k {
                lu.swap_rows(p, k);
                perm.swap(p, k);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= m * u;
                    }
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign: sign,
        })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` by forward/back substitution against the stored
    /// factors. This is the cheap, repeatable operation the moment
    /// recursion (paper eq. (34)) relies on.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut out = Vec::new();
        self.solve_into(b, &mut out)?;
        Ok(out)
    }

    /// Solves `A·x = b` into a caller-owned buffer. `out` is cleared and
    /// refilled in place, so a reused buffer at capacity makes repeated
    /// solves (the moment recursion's steady state) allocation-free.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_into(&self, b: &[f64], out: &mut Vec<f64>) -> Result<(), NumericError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        // Apply permutation: y = P·b.
        out.clear();
        out.extend(self.perm.iter().map(|&pi| b[pi]));
        let x = out;
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solves `Aᵀ·x = b`.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        // Aᵀ = Uᵀ·Lᵀ·P, so solve Uᵀ·z = b, then Lᵀ·w = z, then x = Pᵀ·w.
        let mut z = b.to_vec();
        for i in 0..n {
            let mut acc = z[i];
            for j in 0..i {
                acc -= self.lu[(j, i)] * z[j];
            }
            z[i] = acc / self.lu[(i, i)];
        }
        for i in (0..n).rev() {
            let mut acc = z[i];
            for j in (i + 1)..n {
                acc -= self.lu[(j, i)] * z[j];
            }
            z[i] = acc;
        }
        let mut x = vec![0.0; n];
        for (i, &pi) in self.perm.iter().enumerate() {
            x[pi] = z[i];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `b.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, NumericError> {
        if b.rows() != self.dim() {
            return Err(NumericError::DimensionMismatch {
                expected: self.dim(),
                actual: b.rows(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// The inverse `A⁻¹`, built by solving against the identity.
    ///
    /// Prefer [`Lu::solve`] when only products `A⁻¹·b` are needed; the
    /// explicit inverse is provided for the state-matrix analyses where the
    /// full `A⁻¹` operator is inspected (paper eq. (32)).
    ///
    /// # Errors
    ///
    /// Propagates errors from the column solves.
    pub fn inverse(&self) -> Result<Matrix, NumericError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant via the product of U's diagonal and the permutation sign.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Cheap 1-norm condition-number estimate `‖A‖₁·‖A⁻¹‖₁ (estimated)`.
    ///
    /// Uses a few rounds of the Hager/Higham power-style estimator on
    /// `A⁻¹`; this is the signal the AWE frequency-scaling heuristic
    /// (paper §3.5) consults to decide the moment matrix has become
    /// numerically unstable.
    ///
    /// `a_norm_one` must be the 1-norm of the *original* matrix.
    pub fn condition_estimate(&self, a_norm_one: f64) -> f64 {
        let n = self.dim();
        if n == 0 {
            return 0.0;
        }
        // Hager's estimator for ‖A⁻¹‖₁.
        let mut x = vec![1.0 / n as f64; n];
        let mut est = 0.0;
        for _ in 0..5 {
            let y = match self.solve(&x) {
                Ok(y) => y,
                Err(_) => return f64::INFINITY,
            };
            est = y.iter().map(|v| v.abs()).sum();
            let xi: Vec<f64> = y
                .iter()
                .map(|v| if *v >= 0.0 { 1.0 } else { -1.0 })
                .collect();
            let z = match self.solve_transposed(&xi) {
                Ok(z) => z,
                Err(_) => return f64::INFINITY,
            };
            let (jmax, zmax) = z
                .iter()
                .enumerate()
                .map(|(j, v)| (j, v.abs()))
                .fold((0, 0.0), |acc, it| if it.1 > acc.1 { it } else { acc });
            let zx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
            if zmax <= zx {
                break;
            }
            x = vec![0.0; n];
            x[jmax] = 1.0;
        }
        est * a_norm_one
    }

    /// Smallest absolute pivot of U — a quick singularity indicator.
    pub fn min_pivot(&self) -> f64 {
        (0..self.dim())
            .map(|i| self.lu[(i, i)].abs())
            .fold(f64::INFINITY, f64::min)
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// Propagates [`Lu::factor`] / [`Lu::solve`] errors.
///
/// ```
/// use awe_numeric::{lu_solve, Matrix};
/// # fn main() -> Result<(), awe_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let x = lu_solve(&a, &[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericError> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::vecops::norm_inf;

    #[test]
    fn factor_reusing_is_bitwise_factor() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 2.0], &[0.0, 2.0, 1.0]]);
        let fresh_a = Lu::factor(&a).unwrap();
        let fresh_b = Lu::factor(&b).unwrap();
        // Recycle a's storage into b's factorization: identical results.
        let reused = Lu::factor_reusing(&b, Some(fresh_a)).unwrap();
        assert_eq!(reused.lu, fresh_b.lu);
        assert_eq!(reused.perm, fresh_b.perm);
        assert_eq!(reused.perm_sign, fresh_b.perm_sign);
        // Errors still surface through the reusing path.
        assert!(Lu::factor_reusing(&Matrix::zeros(2, 3), None).is_err());
        assert!(Lu::factor_reusing(&Matrix::zeros(2, 2), None).is_err());
    }

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x);
        norm_inf(&ax.iter().zip(b).map(|(p, q)| p - q).collect::<Vec<_>>())
    }

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = [8.0, -11.0, -3.0];
        let x = lu_solve(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_into_matches_solve_on_a_reused_buffer() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let lu = Lu::factor(&a).unwrap();
        let mut out = Vec::with_capacity(3);
        for trial in 0..3 {
            let b = [8.0 - trial as f64, -11.0, trial as f64];
            lu.solve_into(&b, &mut out).unwrap();
            assert_eq!(out, lu.solve(&b).unwrap());
        }
        assert!(lu.solve_into(&[1.0], &mut out).is_err());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match Lu::factor(&a) {
            Err(NumericError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(NumericError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn solve_dimension_check() {
        let lu = Lu::factor(&Matrix::identity(3)).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(NumericError::DimensionMismatch {
                expected: 3,
                actual: 2
            })
        ));
        assert!(lu.solve_transposed(&[1.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn determinant_with_permutation_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-15);
        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!((Lu::factor(&b).unwrap().det() - 6.0).abs() < 1e-15);
    }

    #[test]
    fn transposed_solve() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 2.0, 1.0], &[0.0, 1.0, 4.0]]);
        let lu = Lu::factor(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = lu.solve_transposed(&b).unwrap();
        let at = a.transpose();
        assert!(residual(&at, &x, &b) < 1e-12);
    }

    #[test]
    fn inverse_reconstructs_identity() {
        let a = Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = &a * &inv;
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn condition_estimate_orders_of_magnitude() {
        // Identity: cond ≈ 1.
        let i = Matrix::identity(4);
        let lu = Lu::factor(&i).unwrap();
        let c = lu.condition_estimate(i.norm_one());
        assert!((0.5..2.0).contains(&c), "cond(I) estimate {c}");

        // A notoriously ill-conditioned Hilbert matrix.
        let h = Matrix::from_fn(8, 8, |i, j| 1.0 / (i + j + 1) as f64);
        let lu = Lu::factor(&h).unwrap();
        let c = lu.condition_estimate(h.norm_one());
        assert!(c > 1e8, "Hilbert(8) cond estimate too small: {c}");
    }

    #[test]
    fn min_pivot_flags_near_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-13]]);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.min_pivot() < 1e-12);
    }

    #[test]
    fn random_round_trips() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [1usize, 2, 5, 10, 20] {
            let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 4.0 } else { 0.0 });
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = lu_solve(&a, &b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-9, "residual too big for n={n}");
        }
    }
}
