//! Golden numerical-health events for a frozen, numerically marginal net.
//!
//! `tests/corpus/rc-mesh-residue-breakdown.sp` is the fuzzer's seed-0
//! case 461: a 10-state RC mesh whose q = 5 Padé model is stable but has
//! moment-matrix condition ≈ 6e19 — garbage residues — while q = 4
//! (condition ≈ 4e10) matches the reference to 1e-5. Building the verify
//! artifacts for it walks the trustworthy-order step-down, and the
//! observability layer must report that walk faithfully: each rejected
//! order is an `order_fallback` event, each solve whose condition tops
//! the 1e14 cap is a `condition_warning`. The exact counts are frozen
//! here; a change means the engine's numerical behavior on this net
//! changed and must be re-justified, not waved through.
//!
//! The counts must also be thread-placement-insensitive: N concurrent
//! replays under one recording see exactly N× the single-replay counts,
//! regardless of which lane each event landed in.

use std::path::PathBuf;
use std::str::FromStr;
use std::sync::Mutex;

use awesim::circuit::parse_deck;
use awesim::obs::Recording;
use awesim::verify::{Artifacts, TopologyClass, WaveKind};

/// One global recording at a time: tests in this binary must not race on
/// the process-wide subscriber.
static RECORD_LOCK: Mutex<()> = Mutex::new(());

/// Frozen event counts for one artifact build of the mesh deck.
/// `for_circuit` walks orders 6 → 4 and accepts q = 4: orders 6 and 5
/// are each one fallback, and both of their solves (condition ≫ 1e14)
/// warn; the accepted q = 4 solve stays under the cap.
const GOLDEN_ORDER_FALLBACKS: usize = 2;
const GOLDEN_CONDITION_WARNINGS: usize = 2;

fn replay_once() {
    let deck = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/rc-mesh-residue-breakdown.sp"),
    )
    .expect("corpus deck readable");
    let circuit = parse_deck(&deck).expect("corpus deck parses");
    let output = circuit.find_node("m1_4").expect("output node exists");
    let artifacts = Artifacts::for_circuit(
        circuit,
        output,
        TopologyClass::from_str("rc-mesh").unwrap(),
        WaveKind::Pulse { width_ratio: 0.059 },
    );
    let approx = artifacts.approx.as_ref().expect("a trustworthy order");
    assert_eq!(approx.order, 4, "step-down must settle on q = 4");
}

/// Counts `(order_fallback, condition_warning)` events across all lanes.
fn health_counts(profile: &awesim::obs::Profile) -> (usize, usize) {
    let mut fallbacks = 0;
    let mut warnings = 0;
    for lane in &profile.lanes {
        for e in &lane.events {
            match e.name {
                "order_fallback" => fallbacks += 1,
                "condition_warning" => warnings += 1,
                _ => {}
            }
        }
    }
    (fallbacks, warnings)
}

#[test]
fn marginal_mesh_emits_golden_health_events() {
    let _guard = RECORD_LOCK.lock().unwrap();
    let rec = Recording::start().expect("no other recording active");
    replay_once();
    let profile = rec.finish();
    let (fallbacks, warnings) = health_counts(&profile);
    assert_eq!(
        fallbacks, GOLDEN_ORDER_FALLBACKS,
        "order_fallback count changed — the trustworthy-order walk moved"
    );
    assert_eq!(
        warnings, GOLDEN_CONDITION_WARNINGS,
        "condition_warning count changed — moment-matrix conditioning moved"
    );
}

#[test]
fn golden_counts_are_order_insensitive_across_threads() {
    let _guard = RECORD_LOCK.lock().unwrap();
    const REPLAYS: usize = 3;
    let rec = Recording::start().expect("no other recording active");
    std::thread::scope(|scope| {
        for _ in 0..REPLAYS {
            scope.spawn(replay_once);
        }
    });
    let profile = rec.finish();
    let (fallbacks, warnings) = health_counts(&profile);
    assert_eq!(fallbacks, REPLAYS * GOLDEN_ORDER_FALLBACKS);
    assert_eq!(warnings, REPLAYS * GOLDEN_CONDITION_WARNINGS);
}
