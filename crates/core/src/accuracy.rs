//! The §3.4 accuracy estimate.
//!
//! The paper measures the quality of a `q`-order approximation against the
//! `(q+1)`-order one (eq. (39)): the exact response is unavailable, but
//! successive orders "creep up on" it, so the inter-order distance is a
//! usable error proxy. The error is the relative `L²` distance of the
//! transients.
//!
//! Two evaluators are provided:
//!
//! * [`relative_l2_error`] — the *exact* integral via the closed-form
//!   inner products of [`ExpSum`]. On modern hardware the `O(q²)` complex
//!   products the paper worried about are free, so this is the default.
//! * [`cauchy_error_bound`] — the paper's Cauchy-inequality upper bound
//!   (eqs. (40)–(46)), which pairs terms and sums the individual pairwise
//!   integrals. Kept as a faithful reproduction and exercised by the
//!   ablation bench; it is provably ≥ the exact error.

use awe_numeric::Complex;

use crate::terms::{ExpSum, ExpTerm};

/// Exact relative `L²` error `‖ref − approx‖ / ‖ref‖` of two transients
/// (eq. (39) with the exact numerator).
///
/// Returns `None` when either sum is unstable (divergent integrals) or the
/// reference has zero norm.
pub fn relative_l2_error(reference: &ExpSum, approx: &ExpSum) -> Option<f64> {
    let num = reference.sub(approx).norm_sqr()?;
    let den = reference.norm_sqr()?;
    if den <= 0.0 {
        return None;
    }
    Some((num.max(0.0) / den).sqrt())
}

/// The paper's Cauchy-inequality bound on the same quantity
/// (eqs. (40)–(44)): terms are paired dominant-first; the surplus
/// reference term is handled by the coefficient split of eqs. (42)–(43).
///
/// Returns `None` when either sum is unstable or the reference has zero
/// norm. The result is an upper bound: `cauchy ≥ exact` up to rounding.
pub fn cauchy_error_bound(reference: &ExpSum, approx: &ExpSum) -> Option<f64> {
    let den = reference.norm_sqr()?;
    if den <= 0.0 {
        return None;
    }
    // Units: single real terms, or conjugate pairs taken together so each
    // unit is a real function and eq. (40) applies.
    let ref_units = units(reference);
    let apx_units = units(approx);
    if ref_units.is_empty() {
        return Some(if apx_units.is_empty() {
            0.0
        } else {
            f64::INFINITY
        });
    }

    let mut total = 0.0f64;
    let n_units = ref_units.len();
    let shared = apx_units.len().min(n_units);
    // Pair the first `shared - 1` units directly…
    let direct = if n_units > apx_units.len() && shared > 0 {
        shared - 1
    } else {
        shared
    };
    for i in 0..direct {
        total += ExpSum::new(ref_units[i].clone())
            .sub(&ExpSum::new(apx_units[i].clone()))
            .norm_sqr()?;
    }
    if n_units > apx_units.len() && shared > 0 {
        // Surplus reference units: split the last approx unit per
        // eqs. (42)–(43) — first against the matching reference unit with
        // the *reference* coefficient, then the leftover coefficient
        // against the extra reference units.
        let last_apx = &apx_units[shared - 1];
        let ref_match = &ref_units[shared - 1];
        let ref_coeff = unit_coeff(ref_match);
        let apx_coeff = unit_coeff(last_apx);
        let scaled_apx = scale_unit(last_apx, ref_coeff / apx_coeff);
        total += ExpSum::new(ref_match.clone())
            .sub(&ExpSum::new(scaled_apx))
            .norm_sqr()?;
        let leftover = scale_unit(last_apx, (apx_coeff - ref_coeff) / apx_coeff);
        let mut extra: Vec<ExpTerm> = Vec::new();
        for unit in &ref_units[shared..] {
            extra.extend(unit.iter().copied());
        }
        total += ExpSum::new(extra).sub(&ExpSum::new(leftover)).norm_sqr()?;
    } else {
        // Extra approximating units (rare): count them whole.
        for unit in &apx_units[shared..] {
            total += ExpSum::new(unit.clone()).norm_sqr()?;
        }
    }
    // Cauchy's inequality introduces the (q+1) unit-count factor (eq. 41).
    let factor = n_units.max(apx_units.len()) as f64;
    Some((factor * total.max(0.0) / den).sqrt())
}

/// Groups terms into real "units": conjugate pairs together, real terms
/// alone. Sorted dominant-first (largest `Re(p)` first).
fn units(sum: &ExpSum) -> Vec<Vec<ExpTerm>> {
    let terms = sum.terms();
    let n = terms.len();
    let mut used = vec![false; n];
    let mut out: Vec<Vec<ExpTerm>> = Vec::new();
    for i in 0..n {
        if used[i] {
            continue;
        }
        if terms[i].pole.im == 0.0 {
            out.push(vec![terms[i]]);
            used[i] = true;
            continue;
        }
        let mut unit = vec![terms[i]];
        used[i] = true;
        for j in i + 1..n {
            if !used[j]
                && terms[j].power == terms[i].power
                && (terms[j].pole - terms[i].pole.conj()).abs()
                    <= 1e-9 * terms[i].pole.abs().max(1.0)
            {
                unit.push(terms[j]);
                used[j] = true;
                break;
            }
        }
        out.push(unit);
    }
    out.sort_by(|a, b| {
        b[0].pole
            .re
            .partial_cmp(&a[0].pole.re)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Representative coefficient of a unit (the first term's).
fn unit_coeff(unit: &[ExpTerm]) -> Complex {
    unit.first().map_or(Complex::ONE, |t| t.coeff)
}

/// Scales every coefficient of a unit (conjugate-consistently for pairs).
fn scale_unit(unit: &[ExpTerm], k: Complex) -> Vec<ExpTerm> {
    unit.iter()
        .enumerate()
        .map(|(i, t)| ExpTerm {
            pole: t.pole,
            coeff: if i == 0 {
                t.coeff * k
            } else {
                t.coeff * k.conj()
            },
            power: t.power,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_term(p: f64, k: f64) -> ExpTerm {
        ExpTerm::simple(Complex::real(p), Complex::real(k))
    }

    #[test]
    fn identical_sums_have_zero_error() {
        let s = ExpSum::new(vec![real_term(-1.0, 2.0), real_term(-5.0, -1.0)]);
        assert!(relative_l2_error(&s, &s).unwrap() < 1e-12);
        assert!(cauchy_error_bound(&s, &s).unwrap() < 1e-12);
    }

    #[test]
    fn error_decreases_as_approx_improves() {
        let reference = ExpSum::new(vec![real_term(-1.0, 2.0), real_term(-8.0, -0.5)]);
        let crude = ExpSum::new(vec![real_term(-1.2, 1.5)]);
        let close = ExpSum::new(vec![real_term(-1.0, 1.98), real_term(-8.0, -0.45)]);
        let e_crude = relative_l2_error(&reference, &crude).unwrap();
        let e_close = relative_l2_error(&reference, &close).unwrap();
        assert!(e_close < e_crude);
        assert!(e_close < 0.05, "e_close = {e_close}");
    }

    #[test]
    fn cauchy_bounds_exact_from_above() {
        // q+1 = 3 reference terms vs q = 2 approx terms — the paper's
        // exact setting.
        let reference = ExpSum::new(vec![
            real_term(-1.0, 2.0),
            real_term(-6.0, -0.8),
            real_term(-30.0, 0.2),
        ]);
        let approx = ExpSum::new(vec![real_term(-1.05, 1.9), real_term(-7.0, -0.6)]);
        let exact = relative_l2_error(&reference, &approx).unwrap();
        let bound = cauchy_error_bound(&reference, &approx).unwrap();
        assert!(
            bound >= exact - 1e-12,
            "bound {bound} must exceed exact {exact}"
        );
        // And not be uselessly loose here (same pole neighborhoods).
        assert!(bound < 30.0 * exact + 1.0);
    }

    #[test]
    fn complex_pair_units_handled() {
        let p = Complex::new(-1.0, 4.0);
        let k = Complex::new(0.3, 0.7);
        let reference = ExpSum::new(vec![
            ExpTerm::simple(p, k),
            ExpTerm::simple(p.conj(), k.conj()),
            real_term(-10.0, 0.1),
        ]);
        let approx = ExpSum::new(vec![
            ExpTerm::simple(p, k * 0.95),
            ExpTerm::simple(p.conj(), (k * 0.95).conj()),
        ]);
        let exact = relative_l2_error(&reference, &approx).unwrap();
        let bound = cauchy_error_bound(&reference, &approx).unwrap();
        assert!(exact.is_finite() && exact > 0.0);
        assert!(bound >= exact - 1e-12);
    }

    #[test]
    fn unstable_rejected() {
        let good = ExpSum::new(vec![real_term(-1.0, 1.0)]);
        let bad = ExpSum::new(vec![real_term(0.5, 1.0)]);
        assert_eq!(relative_l2_error(&good, &bad), None);
        assert_eq!(relative_l2_error(&bad, &good), None);
        assert_eq!(cauchy_error_bound(&good, &bad), None);
    }

    #[test]
    fn zero_reference_rejected() {
        let z = ExpSum::zero();
        let s = ExpSum::new(vec![real_term(-1.0, 1.0)]);
        assert_eq!(relative_l2_error(&z, &s), None);
    }

    #[test]
    fn paper_error_magnitudes() {
        // A dominant-pole-only approximation of a two-pole response whose
        // second pole carries sizeable weight shows tens-of-percent error;
        // matching both poles collapses it — mirroring the 36 % → 1.6 %
        // drop of Figs. 7 → 15.
        let reference = ExpSum::new(vec![real_term(-1.0, -4.0), real_term(-3.0, -1.0)]);
        let first_order = ExpSum::new(vec![real_term(-1.19, -5.0)]);
        let e1 = relative_l2_error(&reference, &first_order).unwrap();
        assert!((0.02..1.0).contains(&e1), "e1 = {e1}");
        let e2 = relative_l2_error(&reference, &reference).unwrap();
        assert!(e2 < 1e-12);
    }
}
