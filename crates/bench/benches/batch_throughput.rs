//! Batch engine throughput: full-design AWE over a 1k-net random RC-tree
//! workload, swept across worker thread counts.
//!
//! Besides the Criterion timings, the bench writes `BENCH_batch.json` at
//! the workspace root: nets/s and speedup-vs-1-thread per thread count,
//! which is the artifact CI and the README table consume.

use std::fmt::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use awe_batch::{BatchEngine, BatchOptions, Design};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn opts(threads: usize) -> BatchOptions {
    BatchOptions {
        threads,
        ..BatchOptions::default()
    }
}

fn bench_batch(c: &mut Criterion) {
    // Under `cargo test` the harness only smoke-runs each body once;
    // shrink the workload so the suite stays fast.
    let quick = std::env::args().any(|a| a == "--test");
    let nets = if quick { 64 } else { 1000 };
    let design = Design::synthetic(nets, 42);

    // Direct cold-cache measurement for the JSON artifact: a fresh engine
    // per run so the cache never serves a net, best-of-`reps` per thread
    // count.
    let reps = if quick { 1 } else { 3 };
    let mut rows = Vec::new();
    for &t in &THREADS {
        let mut best = f64::MAX;
        for _ in 0..reps {
            let engine = BatchEngine::new();
            let start = Instant::now();
            let run = engine.run(&design, &opts(t));
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(run.solves, nets, "cold cache must solve every net");
            best = best.min(secs);
        }
        rows.push((t, nets as f64 / best));
    }
    write_json(&rows, nets);

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    for &t in &THREADS {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| {
                let engine = BatchEngine::new();
                black_box(engine.run(&design, &opts(t)))
            })
        });
    }
    group.finish();
}

fn write_json(rows: &[(usize, f64)], nets: usize) {
    let base = rows.first().map_or(0.0, |&(_, r)| r);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"batch_throughput\",");
    let _ = writeln!(out, "  \"nets\": {nets},");
    out.push_str("  \"results\": [\n");
    for (i, &(threads, nps)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"threads\": {threads}, \"nets_per_sec\": {nps:.1}, \"speedup\": {:.2}}}{comma}",
            if base > 0.0 { nps / base } else { 0.0 }
        );
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_batch
}
criterion_main!(benches);
