* awe-verify regression (master seed 0, case 442)
* oracle=transient class=rlc-ladder wave=step
* params: class=rlc-ladder seed=8428451280643810750 size=1 r=2.962e3:1.244e4 c=1.077e-17:7.181e-12 l=1.162e-8 rs=3.389e-1 k=1.283 vdd=5 wave=step
* detail: Series RLC with Q ~ 3400: rings ~13000 cycles inside the settling
* detail: horizon. The full-order 2-pole Pade model is the exact transfer
* detail: function, but the trapezoidal reference accumulates per-step phase
* detail: error over those cycles and 'disagrees' by 14% L2. The transient
* detail: oracle must skip (reference drift), not fail; replay checks that.
* output n1
V1 in 0 PWL(0 0 0 5)
Rs in nr 0.3388606819989418
L1 nr n1 0.0000000116157410805227
C1 n1 0 0.000000000000008793425979168952
.end
