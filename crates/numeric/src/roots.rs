//! Polynomial root finding.
//!
//! The paper notes (§III, after eq. (25)) that *"for the low orders of
//! approximation that are needed for the intended application of AWE, the
//! roots of `a_c` can be obtained explicitly"*. We therefore provide exact
//! closed forms for degrees 1–3 and resolvent-based degree 4, and fall back
//! to the Aberth–Ehrlich simultaneous iteration (with Newton polish) for
//! higher orders, so arbitrary approximation orders remain available.

use crate::complex::Complex;
use crate::error::NumericError;
use crate::poly::Polynomial;

/// Maximum Aberth–Ehrlich sweeps before declaring non-convergence.
const MAX_ABERTH_ITERS: usize = 200;

/// Finds all complex roots of a real-coefficient polynomial.
///
/// Roots are returned sorted by ascending real part then imaginary part.
/// Exactly-zero leading/trailing structure is handled: trailing zero
/// coefficients never occur (the [`Polynomial`] type is normalized) and
/// roots at the origin (zero constant term) are deflated exactly.
///
/// # Errors
///
/// * [`NumericError::Degenerate`] if the polynomial is zero or constant.
/// * [`NumericError::NoConvergence`] if the iterative fallback stalls.
///
/// # Examples
///
/// ```
/// use awe_numeric::{roots, Polynomial};
/// # fn main() -> Result<(), awe_numeric::NumericError> {
/// let p = Polynomial::from_roots(&[-1.0, -2.0, -3.0, -4.0, -5.0]);
/// let r = roots(&p)?;
/// assert_eq!(r.len(), 5);
/// assert!((r[0].re + 5.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn roots(p: &Polynomial) -> Result<Vec<Complex>, NumericError> {
    if p.is_zero() {
        return Err(NumericError::Degenerate(
            "zero polynomial has no defined roots",
        ));
    }
    if p.degree() == 0 {
        return Err(NumericError::Degenerate("constant polynomial has no roots"));
    }

    // Deflate exact zero roots.
    let mut coeffs = p.coeffs().to_vec();
    let mut zero_roots = 0usize;
    while coeffs.first() == Some(&0.0) {
        coeffs.remove(0);
        zero_roots += 1;
    }

    let mut out = vec![Complex::ZERO; zero_roots];
    if coeffs.len() > 1 {
        let inner = Polynomial::new(coeffs);
        let mut rs = match inner.degree() {
            1 => roots_linear(&inner),
            2 => roots_quadratic(&inner),
            3 => roots_cubic(&inner),
            4 => roots_quartic(&inner),
            _ => roots_aberth(&inner)?,
        };
        // Newton polish against the *original* polynomial for uniform accuracy.
        let dp = inner.derivative();
        for r in &mut rs {
            *r = polish(&inner, &dp, *r);
        }
        out.append(&mut rs);
    }

    out.sort_by(|a, b| {
        a.re.partial_cmp(&b.re)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.im.partial_cmp(&b.im).unwrap_or(std::cmp::Ordering::Equal))
    });
    Ok(out)
}

fn polish(p: &Polynomial, dp: &Polynomial, mut z: Complex) -> Complex {
    for _ in 0..3 {
        let f = p.eval_complex(z);
        let d = dp.eval_complex(z);
        if d.abs() == 0.0 {
            break;
        }
        let step = f / d;
        if !step.is_finite() || step.abs() <= 1e-300 {
            break;
        }
        let z_next = z - step;
        if !z_next.is_finite() {
            break;
        }
        z = z_next;
    }
    z
}

fn roots_linear(p: &Polynomial) -> Vec<Complex> {
    let c = p.coeffs();
    vec![Complex::real(-c[0] / c[1])]
}

/// Numerically-stable quadratic formula (avoids cancellation by computing
/// the larger-magnitude root first and deriving the other from the product).
fn roots_quadratic(p: &Polynomial) -> Vec<Complex> {
    let c = p.coeffs();
    let (a, b, cc) = (c[2], c[1], c[0]);
    let disc = b * b - 4.0 * a * cc;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        let q = -0.5 * (b + if b >= 0.0 { sq } else { -sq });
        let r1 = q / a;
        let r2 = if q != 0.0 { cc / q } else { -b / a - r1 };
        vec![Complex::real(r1), Complex::real(r2)]
    } else {
        let re = -b / (2.0 * a);
        let im = (-disc).sqrt() / (2.0 * a);
        vec![Complex::new(re, -im.abs()), Complex::new(re, im.abs())]
    }
}

/// Cubic roots by the trigonometric/Cardano method.
fn roots_cubic(p: &Polynomial) -> Vec<Complex> {
    let c = p.coeffs();
    // Normalize to monic: x³ + a x² + b x + c.
    let a = c[2] / c[3];
    let b = c[1] / c[3];
    let cc = c[0] / c[3];

    // Depressed cubic t³ + pt + q with x = t - a/3.
    let shift = a / 3.0;
    let pq_p = b - a * a / 3.0;
    let pq_q = 2.0 * a * a * a / 27.0 - a * b / 3.0 + cc;

    let disc = (pq_q / 2.0) * (pq_q / 2.0) + (pq_p / 3.0) * (pq_p / 3.0) * (pq_p / 3.0);
    let mut roots = if disc > 0.0 {
        // One real root, one conjugate pair (Cardano).
        let sq = disc.sqrt();
        let u = cbrt(-pq_q / 2.0 + sq);
        let v = cbrt(-pq_q / 2.0 - sq);
        let t1 = u + v;
        let re = -t1 / 2.0;
        let im = (u - v) * 3.0_f64.sqrt() / 2.0;
        vec![
            Complex::real(t1),
            Complex::new(re, im.abs()),
            Complex::new(re, -im.abs()),
        ]
    } else {
        // Three real roots (trigonometric method, robust for disc ≈ 0).
        let m = (-pq_p / 3.0).max(0.0).sqrt();
        if m == 0.0 {
            vec![Complex::ZERO; 3]
        } else {
            let arg = (3.0 * pq_q / (2.0 * pq_p * m)).clamp(-1.0, 1.0);
            let theta = arg.acos() / 3.0;
            (0..3)
                .map(|k| {
                    Complex::real(
                        2.0 * m * (theta - 2.0 * std::f64::consts::PI * k as f64 / 3.0).cos(),
                    )
                })
                .collect()
        }
    };
    for r in &mut roots {
        *r = *r - shift;
    }
    roots
}

fn cbrt(x: f64) -> f64 {
    x.cbrt()
}

/// Quartic roots via Ferrari's resolvent cubic.
fn roots_quartic(p: &Polynomial) -> Vec<Complex> {
    let c = p.coeffs();
    // Monic: x⁴ + a x³ + b x² + c x + d.
    let a = c[3] / c[4];
    let b = c[2] / c[4];
    let cc = c[1] / c[4];
    let d = c[0] / c[4];

    // Depressed quartic y⁴ + p y² + q y + r with x = y - a/4.
    let shift = a / 4.0;
    let pp = b - 3.0 * a * a / 8.0;
    let qq = cc - a * b / 2.0 + a * a * a / 8.0;
    let rr = d - a * cc / 4.0 + a * a * b / 16.0 - 3.0 * a * a * a * a / 256.0;

    let mut roots = if qq.abs() < 1e-14 * (1.0 + pp.abs() + rr.abs()) {
        // Biquadratic: y⁴ + p y² + r = 0.
        let z = roots_quadratic(&Polynomial::new(vec![rr, pp, 1.0]));
        let mut out = Vec::with_capacity(4);
        for zi in z {
            let s = zi.sqrt();
            out.push(s);
            out.push(-s);
        }
        out
    } else {
        // Resolvent cubic: m³ + p m² + (p²/4 - r) m - q²/8 = 0.
        let resolvent = Polynomial::new(vec![-qq * qq / 8.0, pp * pp / 4.0 - rr, pp, 1.0]);
        let ms = roots_cubic(&resolvent);
        // Pick the real root with the largest positive real part for stability.
        let m = ms
            .iter()
            .filter(|z| z.im.abs() < 1e-9 * z.abs().max(1.0) && z.re > 0.0)
            .map(|z| z.re)
            .fold(f64::NAN, f64::max);
        let m = if m.is_nan() {
            // Fall back to any real root magnitude.
            ms.iter()
                .map(|z| z.re.abs())
                .fold(0.0, f64::max)
                .max(1e-300)
        } else {
            m
        };
        let sqrt2m = (2.0 * m).sqrt();
        // y⁴ + p y² + q y + r = (y² + sqrt2m·y + t1)(y² - sqrt2m·y + t2)
        let t1 = pp / 2.0 + m - qq / (2.0 * sqrt2m);
        let t2 = pp / 2.0 + m + qq / (2.0 * sqrt2m);
        let mut out = roots_quadratic(&Polynomial::new(vec![t1, sqrt2m, 1.0]));
        out.extend(roots_quadratic(&Polynomial::new(vec![t2, -sqrt2m, 1.0])));
        out
    };
    for r in &mut roots {
        *r = *r - shift;
    }
    roots
}

/// Aberth–Ehrlich simultaneous root iteration for arbitrary degree.
fn roots_aberth(p: &Polynomial) -> Result<Vec<Complex>, NumericError> {
    let n = p.degree();
    let dp = p.derivative();
    let c = p.coeffs();

    // Initial guesses: points on a circle of radius given by the Cauchy
    // bound, slightly rotated off the real axis to break symmetry.
    let lead = c[n].abs();
    let radius = 1.0 + c[..n].iter().map(|v| (v / lead).abs()).fold(0.0, f64::max);
    let mut z: Vec<Complex> = (0..n)
        .map(|k| {
            let theta = 2.0 * std::f64::consts::PI * (k as f64 + 0.35) / n as f64 + 0.5;
            Complex::from_polar(radius * 0.8, theta)
        })
        .collect();

    for it in 0..MAX_ABERTH_ITERS {
        let mut max_step = 0.0f64;
        let snapshot = z.clone();
        for i in 0..n {
            let zi = snapshot[i];
            let f = p.eval_complex(zi);
            let d = dp.eval_complex(zi);
            if f.abs() == 0.0 {
                continue;
            }
            let newton = if d.abs() > 0.0 {
                f / d
            } else {
                Complex::new(1e-6, 1e-6)
            };
            let mut repulsion = Complex::ZERO;
            for (j, &zj) in snapshot.iter().enumerate() {
                if j != i {
                    let diff = zi - zj;
                    if diff.abs() > 1e-300 {
                        repulsion += diff.recip();
                    }
                }
            }
            let denom = Complex::ONE - newton * repulsion;
            let step = if denom.abs() > 1e-300 {
                newton / denom
            } else {
                newton
            };
            z[i] = zi - step;
            let rel = step.abs() / zi.abs().max(1.0);
            max_step = max_step.max(rel);
        }
        if max_step < 1e-14 {
            return Ok(z);
        }
        if it == MAX_ABERTH_ITERS - 1 {
            // Accept if residuals are small relative to coefficient scale.
            let scale = p.max_coeff_abs();
            let ok = z
                .iter()
                .all(|&zi| p.eval_complex(zi).abs() <= 1e-6 * scale * radius.powi(n as i32));
            if ok {
                return Ok(z);
            }
        }
    }
    Err(NumericError::NoConvergence {
        iterations: MAX_ABERTH_ITERS,
    })
}

/// Pairs nearly-conjugate roots and snaps them into exact conjugate form,
/// and snaps nearly-real roots onto the real axis.
///
/// The QR/Aberth output for real-coefficient polynomials is conjugate only
/// to rounding; downstream waveform evaluation (paper eq. (15)) relies on
/// exact pairing so the time response is exactly real.
pub fn symmetrize_conjugates(roots: &mut [Complex], tol: f64) {
    let n = roots.len();
    let mut used = vec![false; n];
    for i in 0..n {
        if used[i] {
            continue;
        }
        if roots[i].is_approx_real(tol) {
            roots[i] = Complex::real(roots[i].re);
            used[i] = true;
            continue;
        }
        // Find closest conjugate partner.
        let target = roots[i].conj();
        let mut best: Option<(usize, f64)> = None;
        for (j, r) in roots.iter().enumerate().skip(i + 1) {
            if used[j] {
                continue;
            }
            let d = (*r - target).abs();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((j, d));
            }
        }
        if let Some((j, d)) = best {
            if d <= tol * roots[i].abs().max(1.0) * 10.0 {
                let re = 0.5 * (roots[i].re + roots[j].re);
                let im = 0.5 * (roots[i].im.abs() + roots[j].im.abs());
                let sign = roots[i].im.signum();
                roots[i] = Complex::new(re, sign * im);
                roots[j] = Complex::new(re, -sign * im);
                used[i] = true;
                used[j] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_roots_match(p: &Polynomial, expected: &[Complex], tol: f64) {
        let mut r = roots(p).unwrap();
        assert_eq!(r.len(), expected.len(), "root count mismatch: {r:?}");
        let mut e = expected.to_vec();
        // total_cmp: a degenerate (NaN) root should fail the tolerance
        // assertion below with a readable message, not abort the sort.
        let key =
            |a: &Complex, b: &Complex| a.re.total_cmp(&b.re).then_with(|| a.im.total_cmp(&b.im));
        r.sort_by(key);
        e.sort_by(key);
        for (a, b) in r.iter().zip(&e) {
            assert!(
                (*a - *b).abs() <= tol * b.abs().max(1.0),
                "root {a} != expected {b}"
            );
        }
    }

    #[test]
    fn linear() {
        assert_roots_match(
            &Polynomial::new(vec![6.0, 2.0]),
            &[Complex::real(-3.0)],
            1e-14,
        );
    }

    #[test]
    fn quadratic_real_and_complex() {
        assert_roots_match(
            &Polynomial::from_roots(&[-1.0, -4.0]),
            &[Complex::real(-1.0), Complex::real(-4.0)],
            1e-13,
        );
        // x² + 2x + 5 → -1 ± 2j
        assert_roots_match(
            &Polynomial::new(vec![5.0, 2.0, 1.0]),
            &[Complex::new(-1.0, 2.0), Complex::new(-1.0, -2.0)],
            1e-13,
        );
    }

    #[test]
    fn quadratic_cancellation_stability() {
        // Roots 1e-8 and 1e8: naive formula loses the small root.
        let p = Polynomial::new(vec![1.0, -(1e8 + 1e-8), 1.0]);
        let r = roots(&p).unwrap();
        assert!((r[0].re - 1e-8).abs() < 1e-16);
        assert!((r[1].re - 1e8).abs() < 1e-2);
    }

    #[test]
    fn cubic_all_real() {
        assert_roots_match(
            &Polynomial::from_roots(&[-1.0, -2.0, -5.0]),
            &[
                Complex::real(-1.0),
                Complex::real(-2.0),
                Complex::real(-5.0),
            ],
            1e-11,
        );
    }

    #[test]
    fn cubic_complex_pair() {
        // (x+1)(x² + 2x + 10): roots -1, -1 ± 3j
        let quad = Polynomial::new(vec![10.0, 2.0, 1.0]);
        let p = &Polynomial::new(vec![1.0, 1.0]) * &quad;
        assert_roots_match(
            &p,
            &[
                Complex::real(-1.0),
                Complex::new(-1.0, 3.0),
                Complex::new(-1.0, -3.0),
            ],
            1e-11,
        );
    }

    #[test]
    fn cubic_triple_root() {
        let p = Polynomial::from_roots(&[2.0, 2.0, 2.0]);
        let r = roots(&p).unwrap();
        for z in r {
            assert!((z - Complex::real(2.0)).abs() < 1e-4, "triple root {z}");
        }
    }

    #[test]
    fn quartic_mixed() {
        // (x²+1)(x²+3x+2): roots ±j, -1, -2.
        let p = &Polynomial::new(vec![1.0, 0.0, 1.0]) * &Polynomial::from_roots(&[-1.0, -2.0]);
        assert_roots_match(
            &p,
            &[
                Complex::new(0.0, 1.0),
                Complex::new(0.0, -1.0),
                Complex::real(-1.0),
                Complex::real(-2.0),
            ],
            1e-9,
        );
    }

    #[test]
    fn quartic_biquadratic() {
        // x⁴ - 5x² + 4 = (x²-1)(x²-4).
        let p = Polynomial::new(vec![4.0, 0.0, -5.0, 0.0, 1.0]);
        assert_roots_match(
            &p,
            &[
                Complex::real(-2.0),
                Complex::real(-1.0),
                Complex::real(1.0),
                Complex::real(2.0),
            ],
            1e-10,
        );
    }

    #[test]
    fn quartic_two_complex_pairs() {
        // (x²+2x+5)(x²+4x+13): roots -1±2j, -2±3j.
        let p = &Polynomial::new(vec![5.0, 2.0, 1.0]) * &Polynomial::new(vec![13.0, 4.0, 1.0]);
        assert_roots_match(
            &p,
            &[
                Complex::new(-1.0, 2.0),
                Complex::new(-1.0, -2.0),
                Complex::new(-2.0, 3.0),
                Complex::new(-2.0, -3.0),
            ],
            1e-9,
        );
    }

    #[test]
    fn high_degree_aberth() {
        let rs: Vec<f64> = (1..=8).map(|k| -(k as f64)).collect();
        let p = Polynomial::from_roots(&rs);
        let found = roots(&p).unwrap();
        for (f, e) in found.iter().zip(rs.iter().rev().map(|&r| Complex::real(r))) {
            // found sorted ascending (most negative first): -8, -7, ...
            let _ = e;
            assert!(f.im.abs() < 1e-6, "unexpected complex root {f}");
        }
        for &r in &rs {
            assert!(
                found
                    .iter()
                    .any(|z| (z.re - r).abs() < 1e-6 && z.im.abs() < 1e-6),
                "missing root {r}"
            );
        }
    }

    #[test]
    fn high_degree_with_complex_pairs() {
        // Degree 6 with two complex pairs and two real roots.
        let p1 = Polynomial::new(vec![2.0, 2.0, 1.0]); // -1 ± j
        let p2 = Polynomial::new(vec![25.0, 6.0, 1.0]); // -3 ± 4j
        let p3 = Polynomial::from_roots(&[-0.5, -7.0]);
        let p = &(&p1 * &p2) * &p3;
        let mut r = roots(&p).unwrap();
        symmetrize_conjugates(&mut r, 1e-8);
        assert_eq!(r.len(), 6);
        for target in [
            Complex::new(-1.0, 1.0),
            Complex::new(-3.0, 4.0),
            Complex::real(-0.5),
            Complex::real(-7.0),
        ] {
            assert!(
                r.iter().any(|z| (*z - target).abs() < 1e-6),
                "missing root {target}; got {r:?}"
            );
        }
    }

    #[test]
    fn zero_roots_deflated() {
        // x²(x+3): roots 0, 0, -3.
        let p = Polynomial::new(vec![0.0, 0.0, 3.0, 1.0]);
        let r = roots(&p).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().filter(|z| z.abs() == 0.0).count(), 2);
        assert!(r.iter().any(|z| (z.re + 3.0).abs() < 1e-12));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(matches!(
            roots(&Polynomial::zero()),
            Err(NumericError::Degenerate(_))
        ));
        assert!(matches!(
            roots(&Polynomial::constant(2.0)),
            Err(NumericError::Degenerate(_))
        ));
    }

    #[test]
    fn symmetrize_snaps_real_and_pairs() {
        let mut r = vec![
            Complex::new(-1.0, 1e-13),
            Complex::new(-2.0, 0.5 + 1e-12),
            Complex::new(-2.0 + 1e-12, -0.5),
        ];
        symmetrize_conjugates(&mut r, 1e-9);
        assert_eq!(r[0].im, 0.0);
        assert_eq!(r[1].re, r[2].re);
        assert_eq!(r[1].im, -r[2].im);
    }

    #[test]
    fn widely_spread_roots() {
        // Time-constant-like spread over 6 decades (stiff circuit poles).
        let rs = [-1.0, -1e2, -1e4, -1e6];
        let p = Polynomial::from_roots(&rs);
        let found = roots(&p).unwrap();
        for &r in &rs {
            assert!(
                found
                    .iter()
                    .any(|z| ((z.re - r) / r).abs() < 1e-6 && z.im.abs() < 1e-9 * r.abs()),
                "missing stiff root {r}: {found:?}"
            );
        }
    }
}
