//! The incremental-reanalysis contract, property-tested: for any edit
//! sequence, `analyze` on the *edited, warm* session is bit-identical to
//! a *fresh* `load_design` of the post-edit design — the dirty tracking
//! and cache invalidation may only save work, never change answers.
//!
//! Topologies come from the verify fuzzer's generators (trees, meshes,
//! RLC ladders, coupled lines), so the edits land on the same circuit
//! space the differential oracles patrol.

use awe_batch::{BatchOptions, Design, NetSpec};
use awe_circuit::Circuit;
use awe_serve::{EcoOp, RunOpts, Session};
use awe_verify::{CaseParams, TopologyClass};
use proptest::prelude::*;

const CLASSES: [TopologyClass; 4] = [
    TopologyClass::RcTree,
    TopologyClass::RcMesh,
    TopologyClass::RlcLadder,
    TopologyClass::CoupledLines,
];

fn fuzz_design(class: TopologyClass, seed: u64, nets: usize) -> Design {
    let nets = (0..nets)
        .map(|i| {
            let case = CaseParams::generate(class, seed, i as u64).build();
            NetSpec {
                name: format!("net{:04}", i + 1),
                circuit: case.circuit,
                output: case.output,
            }
        })
        .collect();
    let raw = Design::from_nets(format!("fuzz-{class:?}-{seed}"), nets);
    // Normalize through one deck round-trip so node *ids* follow deck
    // appearance order on both sides of the comparison. The generators
    // create nodes in their own order; ids pick the MNA elimination
    // order, and bit-identity is only promised for identical systems.
    let deck = raw.to_multi_deck();
    let mut normalized = Design::from_deck(raw.name.clone(), &deck).expect("generator deck parses");
    pin_outputs(&raw, &mut normalized);
    normalized
}

/// Copies each net's observation node from `reference` to `target` by
/// node *name* (the deck default — `out`/highest-numbered — does not
/// cover every generator convention).
fn pin_outputs(reference: &Design, target: &mut Design) {
    for net in reference.nets() {
        let out_name = net.circuit.node_name(net.output).to_owned();
        let fresh_net = target.net_mut(&net.name).expect("same nets");
        fresh_net.output = fresh_net
            .circuit
            .find_node(&out_name)
            .expect("deck round-trip keeps node names");
    }
}

/// Derives one always-valid edit from raw fuzz bytes, or `None` when the
/// chosen net has no element of the chosen kind.
fn make_op(
    design: &Design,
    unique: usize,
    kind_sel: u8,
    net_sel: u8,
    elem_sel: u8,
    val: u32,
) -> Option<EcoOp> {
    let nets = design.nets();
    let net = &nets[net_sel as usize % nets.len()];
    let c: &Circuit = &net.circuit;
    let pick = |tag: char| {
        let of_kind: Vec<_> = c.elements_of_kind(tag).collect();
        if of_kind.is_empty() {
            None
        } else {
            Some(of_kind[elem_sel as usize % of_kind.len()].name().to_owned())
        }
    };
    match kind_sel % 3 {
        0 => {
            // Resize a passive element, scaled to its kind.
            let (tag, scale) = [('R', 1.0), ('C', 1e-15), ('L', 1e-9)][elem_sel as usize % 3];
            Some(EcoOp::Resize {
                net: net.name.clone(),
                element: pick(tag)?,
                value: f64::from(val) * scale + scale,
            })
        }
        1 => {
            // Retune an independent source.
            let element = pick('V').or_else(|| pick('I'))?;
            Some(EcoOp::SetSource {
                net: net.name.clone(),
                element,
                source: format!("STEP 0 {}", f64::from(val % 50) / 10.0 + 0.1),
            })
        }
        _ => {
            // Load an existing internal node with a grounded capacitor.
            let id = 1 + val as usize % (c.num_nodes() - 1);
            Some(EcoOp::Add {
                net: net.name.clone(),
                card: format!("CPX{unique} {} 0 {}e-15", c.node_name(id), val % 900 + 1),
            })
        }
    }
}

fn session(label: &str, design: Design) -> Session {
    let opts = BatchOptions {
        threads: 1,
        ..BatchOptions::default()
    };
    Session::new(label, design, opts, RunOpts::default())
}

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

fn pole_bits(poles: &[(f64, f64)]) -> Vec<(u64, u64)> {
    poles
        .iter()
        .map(|&(re, im)| (re.to_bits(), im.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn edited_session_is_bit_identical_to_fresh_load(
        class_ix in 0u8..4,
        seed in 0u64..512,
        edits in proptest::collection::vec((0u8..3, 0u8..8, 0u8..16, 1u32..1000), 0..6),
    ) {
        let design = fuzz_design(CLASSES[class_ix as usize % 4], seed, 3);
        let mut live = session("live", design);
        live.analyze();

        // Build the edit sequence against the pre-edit design (adds only
        // grow it, so every op stays valid), then apply one `eco` per op
        // to exercise repeated reclassification and invalidation.
        let ops: Vec<EcoOp> = edits
            .iter()
            .enumerate()
            .filter_map(|(k, &(a, b, c, v))| make_op(live.design(), k, a, b, c, v))
            .collect();
        for op in &ops {
            live.apply_ops(std::slice::from_ref(op)).expect("generated ops are valid");
        }
        live.analyze();

        // Fresh daemon, fresh session, post-edit deck: parse the design
        // back from its rendered multi-net deck. The deck's default
        // observation-node convention (`out` / highest-numbered) does not
        // cover every generator, so pin outputs by node *name*.
        let deck = live.design().to_multi_deck();
        let mut reloaded = Design::from_deck("fresh", &deck).expect("rendered deck parses");
        pin_outputs(live.design(), &mut reloaded);
        let mut fresh = session("fresh", reloaded);
        fresh.analyze();

        let live_run = live.last_run().expect("analyzed");
        let fresh_run = fresh.last_run().expect("analyzed");
        prop_assert_eq!(live_run.results.len(), fresh_run.results.len());
        for (a, b) in live_run.results.iter().zip(&fresh_run.results) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.hash, b.hash, "{}: deck round-trip is lossless", a.name);
            prop_assert_eq!(a.order, b.order, "{}", a.name);
            prop_assert_eq!(a.stable, b.stable, "{}", a.name);
            prop_assert_eq!(a.rescued, b.rescued, "{}", a.name);
            prop_assert_eq!(opt_bits(a.error_estimate), opt_bits(b.error_estimate), "{}", a.name);
            prop_assert_eq!(opt_bits(a.delay_50), opt_bits(b.delay_50), "{}", a.name);
            prop_assert_eq!(a.final_value.to_bits(), b.final_value.to_bits(), "{}", a.name);
            prop_assert_eq!(pole_bits(&a.poles), pole_bits(&b.poles), "{}", a.name);
            prop_assert_eq!(&a.error, &b.error, "{}", a.name);
        }
    }
}
