//! Prints every regenerated table and figure report in sequence — the
//! source of EXPERIMENTS.md's measured numbers.

fn main() {
    println!("{}", awe_bench::experiments::all());
}
