//! Single-net AWE latency with a factor/refactor/solve stage breakdown.
//!
//! For each workload (random RC tree, RC mesh, RLC ladder; small → large)
//! the bench measures
//!
//! * the **cold** path: MNA assembly + full LU factorization (symbolic
//!   analysis included) + moment recursion + Padé + residues, and
//! * the **warm** path: the same solve on an engine that already holds
//!   the symbolic pattern and a warm moment workspace, so the
//!   factorization is a numeric *refactorization* and the recursion
//!   allocates nothing.
//!
//! It writes `BENCH_awe.json` at the workspace root and then re-reads and
//! validates it, exiting nonzero if the artifact is malformed or any
//! stage that must have run reports a zero/negative wall time — that
//! validation is what the CI bench-smoke job relies on.
//!
//! The bench is also the enforcement point for two observability
//! guarantees:
//!
//! * **Tracing-off overhead < 2%.** Each warm solve is replayed once
//!   under a recording to count the instrumentation sites it crosses
//!   (events + counter bumps + histogram records); a separate probe loop
//!   measures the per-site cost with tracing *off* (one relaxed atomic
//!   load and a branch). The projected overhead — sites × per-site cost
//!   ÷ warm latency — lands in the artifact per case and the validator
//!   fails the run if any case reaches 2%.
//! * **Trace schema.** The smallest case's recorded solve is exported as
//!   `TRACE_awe.json` (Chrome trace-event JSON, Perfetto-loadable) and
//!   re-read through a schema check: well-formed array, only expected
//!   phases, paired `B`/`E` if any ever appear, non-negative and
//!   globally monotone timestamps. Malformed output exits nonzero.
//!
//! `AWE_BENCH_TINY=1` (or the harness's `--test` flag) shrinks the sweep
//! to one case per topology for smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use awe::{AweEngine, AweOptions, StageTimings};
use awe_circuit::generators::{random_rc_tree, rc_line, rc_mesh, rlc_ladder};
use awe_circuit::{reduce, Circuit, NodeId, ReduceOptions, Waveform};
use awe_obs::{Counter, Histogram, Profile, Recording};

const ORDER: usize = 2;

/// Hard ceiling on the projected tracing-off overhead per warm solve.
const OVERHEAD_BUDGET: f64 = 0.02;

/// Minimum cold speedup the reduction pre-pass must buy on a long-chain
/// workload (reduced twin vs full net, reduction time included).
const REDUCTION_SPEEDUP_FLOOR: f64 = 5.0;

/// Tolerance the reduced chain twins run at (relative m₂ defect budget).
const REDUCE_TOL: f64 = 0.02;

struct Case {
    name: String,
    circuit: Circuit,
    output: NodeId,
    /// `Some(tol)` makes the cold path run the RC-chain reduction
    /// pre-pass (timed) and solve the reduced net instead.
    reduce_tol: Option<f64>,
}

struct Row {
    name: String,
    unknowns: usize,
    cold: StageTimings,
    cold_latency: f64,
    refactor_s: f64,
    warm_latency: f64,
    refactored: bool,
    reduced: bool,
    /// Instrumentation sites one warm solve crosses (events recorded +
    /// counter bumps + histogram observations, tallied under a
    /// recording).
    obs_sites: u64,
}

fn cases(tiny: bool) -> Vec<Case> {
    let step = || Waveform::step(0.0, 5.0);
    let mut out = Vec::new();
    let tree_sizes: &[usize] = if tiny { &[32] } else { &[32, 256, 1024] };
    for &n in tree_sizes {
        let g = random_rc_tree(n, (10.0, 500.0), (0.05e-12, 2e-12), 42, step());
        out.push(Case {
            name: format!("rc-tree-{n}"),
            circuit: g.circuit,
            output: g.output,
            reduce_tol: None,
        });
    }
    // 16×16 stays in the tiny sweep: it is the acceptance case for the
    // sparse refactor path (≈258 unknowns, past the sparse threshold).
    let mesh_sizes: &[usize] = if tiny { &[16] } else { &[8, 16, 24] };
    for &m in mesh_sizes {
        let g = rc_mesh(m, m, 100.0, 0.5e-12, step());
        out.push(Case {
            name: format!("rc-mesh-{m}x{m}"),
            circuit: g.circuit,
            output: g.output,
            reduce_tol: None,
        });
    }
    let ladder_sizes: &[usize] = if tiny { &[16] } else { &[16, 64, 128] };
    for &s in ladder_sizes {
        let g = rlc_ladder(s, 50.0, 1e-9, 1e-12, step());
        out.push(Case {
            name: format!("rlc-ladder-{s}"),
            circuit: g.circuit,
            output: g.output,
            reduce_tol: None,
        });
    }
    // Long series chains, in full/reduced twins: the acceptance workload
    // for the reduction pre-pass. The reduced twin runs the chain
    // collapse inside its cold timing and must still come in at least
    // `REDUCTION_SPEEDUP_FLOOR`× cheaper than its full sibling.
    let chain_sizes: &[usize] = if tiny { &[512] } else { &[256, 512, 1024] };
    for &s in chain_sizes {
        let g = rc_line(s, 100.0, 0.5e-12, step());
        out.push(Case {
            name: format!("rc-chain-{s}"),
            circuit: g.circuit.clone(),
            output: g.output,
            reduce_tol: None,
        });
        out.push(Case {
            name: format!("rc-chain-{s}-reduced"),
            circuit: g.circuit,
            output: g.output,
            reduce_tol: Some(REDUCE_TOL),
        });
    }
    out
}

fn measure(case: &Case, reps: usize) -> (Row, Profile) {
    let opts = AweOptions::default();
    let ropts = |tol| ReduceOptions {
        enabled: true,
        tolerance: tol,
    };

    // Cold: fresh engine per rep (assembly + symbolic + numeric factor).
    // For a reduced twin the chain-collapse pre-pass runs *inside* the
    // timer — the reported speedup is end-to-end, reduction included.
    // Keep the stage clocks of the rep with the smallest total latency.
    let mut cold: Option<(f64, StageTimings, usize)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let red;
        let (circuit, output) = match case.reduce_tol {
            Some(tol) => {
                red = reduce(&case.circuit, &[case.output], &ropts(tol));
                let out = red.map_node(case.output).expect("output survives");
                (&red.circuit, out)
            }
            None => (&case.circuit, case.output),
        };
        let engine = AweEngine::new(circuit).expect("assembles");
        let (_, clock) = engine
            .approximate_timed(output, ORDER, opts)
            .expect("solves");
        let latency = t0.elapsed().as_secs_f64();
        let n = engine.system().num_unknowns();
        if cold.as_ref().is_none_or(|(best, _, _)| latency < *best) {
            cold = Some((latency, clock, n));
        }
    }
    let (cold_latency, cold_clock, unknowns) = cold.expect("at least one rep");

    // Warm: one engine, one priming solve (records the pattern, warms the
    // workspace), then timed re-solves that refactor. A reduced twin's
    // warm engine holds the reduced net — reduction happens once, the
    // pattern reuse afterwards is exactly what the cache amortizes.
    let warm_red;
    let (warm_circuit, warm_output) = match case.reduce_tol {
        Some(tol) => {
            warm_red = reduce(&case.circuit, &[case.output], &ropts(tol));
            let out = warm_red.map_node(case.output).expect("output survives");
            (&warm_red.circuit, out)
        }
        None => (&case.circuit, case.output),
    };
    let engine = AweEngine::new(warm_circuit).expect("assembles");
    engine
        .approximate_timed(warm_output, ORDER, opts)
        .expect("solves");
    let mut warm_latency = f64::MAX;
    let mut refactor_s = f64::MAX;
    let mut refactored = false;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, clock) = engine
            .approximate_timed(warm_output, ORDER, opts)
            .expect("solves");
        warm_latency = warm_latency.min(t0.elapsed().as_secs_f64());
        let r = clock.refactor.as_secs_f64();
        if r > 0.0 {
            refactored = true;
            refactor_s = refactor_s.min(r);
        }
    }
    // One more warm solve under a recording: its event/counter/histogram
    // tally is the instrumentation-site count a solve crosses, which the
    // tracing-off overhead projection multiplies by the per-site cost.
    let rec = Recording::start().expect("no other recording active in the bench");
    engine
        .approximate_timed(warm_output, ORDER, opts)
        .expect("solves");
    let profile = rec.finish();
    let obs_sites = profile
        .lanes
        .iter()
        .map(|l| l.events.len() as u64 + l.dropped)
        .sum::<u64>()
        + profile.counters.iter().map(|c| c.value).sum::<u64>()
        + profile.histograms.iter().map(|h| h.count).sum::<u64>();

    let row = Row {
        name: case.name.clone(),
        unknowns,
        cold: cold_clock,
        cold_latency,
        refactor_s: if refactored { refactor_s } else { 0.0 },
        warm_latency,
        refactored,
        reduced: case.reduce_tol.is_some(),
        obs_sites,
    };
    (row, profile)
}

/// Measures the cost of one instrumentation site with tracing **off**:
/// the minimum over a few passes of a span-create/note/drop plus a
/// counter bump plus a histogram record, none of which may do more than
/// a relaxed load and a branch while no recording is active.
fn disabled_site_cost_s() -> f64 {
    static PROBE: Counter = Counter::new("bench.probe");
    static PROBE_HIST: Histogram = Histogram::new("bench.probe_hist");
    assert!(
        !awe_obs::enabled(),
        "the tracing-off probe must run with no recording active"
    );
    const SITES_PER_ITER: usize = 3;
    const ITERS: usize = 1 << 20;
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        for i in 0..ITERS {
            let mut s = awe_obs::span("bench.probe_span");
            s.note(i as f64, 0.0);
            std::hint::black_box(s.is_live());
            drop(s);
            PROBE.incr();
            PROBE_HIST.record(i as f64);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best / (SITES_PER_ITER * ITERS) as f64
}

fn render(rows: &[Row], tiny: bool, site_cost_s: f64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"awe_latency\",");
    let _ = writeln!(out, "  \"order\": {ORDER},");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if tiny { "tiny" } else { "full" }
    );
    let _ = writeln!(out, "  \"tracing_off_site_cost_s\": {site_cost_s:e},");
    out.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let speedup = if r.refactored && r.refactor_s > 0.0 {
            format!("{:.2}", r.cold.factor.as_secs_f64() / r.refactor_s)
        } else {
            "null".to_string()
        };
        // A reduced twin reports its end-to-end cold speedup against the
        // full sibling row (same name minus the `-reduced` suffix).
        let reduction_speedup = r
            .name
            .strip_suffix("-reduced")
            .and_then(|full| rows.iter().find(|o| o.name == full))
            .map_or("null".to_string(), |full| {
                format!("{:.2}", full.cold_latency / r.cold_latency)
            });
        let overhead = r.obs_sites as f64 * site_cost_s / r.warm_latency;
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"unknowns\": {}, \"refactored\": {}, \
             \"reduced\": {}, \
             \"mna_s\": {:e}, \"factor_s\": {:e}, \"refactor_s\": {:e}, \
             \"moments_s\": {:e}, \"pade_s\": {:e}, \"residues_s\": {:e}, \
             \"cold_latency_s\": {:e}, \"warm_latency_s\": {:e}, \
             \"obs_sites_per_solve\": {}, \"tracing_off_overhead_frac\": {overhead:e}, \
             \"reduction_speedup_vs_full\": {reduction_speedup}, \
             \"refactor_speedup\": {speedup}}}{comma}",
            r.name,
            r.unknowns,
            r.refactored,
            r.reduced,
            r.cold.mna.as_secs_f64(),
            r.cold.factor.as_secs_f64(),
            r.refactor_s,
            r.cold.moments.as_secs_f64(),
            r.cold.pade.as_secs_f64(),
            r.cold.residues.as_secs_f64(),
            r.cold_latency,
            r.warm_latency,
            r.obs_sites,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `"key": <number>` from a one-case JSON line.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Validates the written artifact: well-formed (balanced, expected case
/// count) and physically sensible (every stage that ran took strictly
/// positive wall time; refactor time present exactly when refactoring
/// happened). Returns the failures found.
fn validate(json: &str, expected_cases: usize) -> Vec<String> {
    let mut errs = Vec::new();
    for (open, close) in [('{', '}'), ('[', ']')] {
        if json.matches(open).count() != json.matches(close).count() {
            errs.push(format!("unbalanced {open}{close}"));
        }
    }
    let case_lines: Vec<&str> = json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"name\""))
        .collect();
    if case_lines.len() != expected_cases {
        errs.push(format!(
            "expected {expected_cases} cases, artifact has {}",
            case_lines.len()
        ));
    }
    for line in case_lines {
        let name =
            field_f64(line, "unknowns").map_or_else(|| "?".to_string(), |n| format!("case n={n}"));
        for key in [
            "mna_s",
            "factor_s",
            "moments_s",
            "pade_s",
            "residues_s",
            "cold_latency_s",
            "warm_latency_s",
        ] {
            match field_f64(line, key) {
                Some(v) if v > 0.0 => {}
                Some(v) => errs.push(format!("{name}: {key} = {v} (must be > 0)")),
                None => errs.push(format!("{name}: missing {key}")),
            }
        }
        let refactored = line.contains("\"refactored\": true");
        match field_f64(line, "refactor_s") {
            Some(v) if refactored && v <= 0.0 => {
                errs.push(format!("{name}: refactored but refactor_s = {v}"));
            }
            Some(v) if !refactored && v != 0.0 => {
                errs.push(format!("{name}: not refactored but refactor_s = {v}"));
            }
            Some(_) => {}
            None => errs.push(format!("{name}: missing refactor_s")),
        }
        match field_f64(line, "obs_sites_per_solve") {
            Some(v) if v >= 1.0 => {}
            Some(v) => errs.push(format!(
                "{name}: obs_sites_per_solve = {v} (an instrumented solve crosses sites)"
            )),
            None => errs.push(format!("{name}: missing obs_sites_per_solve")),
        }
        // Reduced twins must carry a speedup vs their full sibling, and
        // long-chain twins must clear the reduction acceptance floor.
        if line.contains("\"reduced\": true") {
            match field_f64(line, "reduction_speedup_vs_full") {
                Some(v) if v > 0.0 => {
                    let long_chain = field_str(line, "name").is_some_and(|n| {
                        n.strip_prefix("rc-chain-")
                            .and_then(|rest| rest.strip_suffix("-reduced"))
                            .and_then(|len| len.parse::<usize>().ok())
                            .is_some_and(|len| len >= 256)
                    });
                    if long_chain && v < REDUCTION_SPEEDUP_FLOOR {
                        errs.push(format!(
                            "{name}: reduction speedup {v:.2}x below the \
                             {REDUCTION_SPEEDUP_FLOOR:.0}x long-chain floor"
                        ));
                    }
                }
                Some(v) => errs.push(format!(
                    "{name}: reduction_speedup_vs_full = {v} (must be > 0)"
                )),
                None => errs.push(format!("{name}: missing reduction_speedup_vs_full")),
            }
        } else if field_f64(line, "reduction_speedup_vs_full").is_some() {
            errs.push(format!(
                "{name}: not reduced but carries a reduction speedup"
            ));
        }
        // The tracing-off overhead budget is a release gate, not advice:
        // a case at or past 2% fails the bench.
        match field_f64(line, "tracing_off_overhead_frac") {
            Some(v) if (0.0..OVERHEAD_BUDGET).contains(&v) => {}
            Some(v) => errs.push(format!(
                "{name}: projected tracing-off overhead {:.3}% breaches the {:.0}% budget",
                v * 100.0,
                OVERHEAD_BUDGET * 100.0
            )),
            None => errs.push(format!("{name}: missing tracing_off_overhead_frac")),
        }
    }
    errs
}

/// Extracts `"key": "<string>"` from a one-event JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Validates the Chrome trace-event artifact: a well-formed JSON array
/// of one-line event objects; phases limited to complete (`X`), instant
/// (`i`), metadata (`M`) and — should the sink ever emit them — paired
/// begin/end (`B`/`E`); timestamps and durations non-negative; event
/// order globally monotone in `ts` (the sink sorts before writing).
fn validate_trace(json: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let body = json.trim();
    if !body.starts_with('[') || !body.ends_with(']') {
        errs.push("not a JSON array".to_string());
        return errs;
    }
    for (open, close) in [('{', '}'), ('[', ']')] {
        if json.matches(open).count() != json.matches(close).count() {
            errs.push(format!("unbalanced {open}{close}"));
        }
    }
    let (mut begins, mut ends, mut spans, mut meta) = (0usize, 0usize, 0usize, 0usize);
    let mut last_ts = 0.0f64;
    for (i, raw) in json.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let row = i + 1;
        let Some(ph) = field_str(line, "ph") else {
            errs.push(format!("line {row}: event without a ph field"));
            continue;
        };
        match ph {
            "M" => {
                meta += 1;
                continue; // metadata events carry no timestamp
            }
            "X" => spans += 1,
            "i" => {}
            "B" => begins += 1,
            "E" => ends += 1,
            other => errs.push(format!("line {row}: unexpected phase {other:?}")),
        }
        match field_f64(line, "ts") {
            Some(ts) if ts >= 0.0 => {
                if ts < last_ts {
                    errs.push(format!(
                        "line {row}: ts {ts} breaks monotone order (previous {last_ts})"
                    ));
                }
                last_ts = ts;
            }
            Some(ts) => errs.push(format!("line {row}: negative ts {ts}")),
            None => errs.push(format!("line {row}: missing ts")),
        }
        if ph == "X" {
            match field_f64(line, "dur") {
                Some(d) if d >= 0.0 => {}
                Some(d) => errs.push(format!("line {row}: negative dur {d}")),
                None => errs.push(format!("line {row}: complete event missing dur")),
            }
        }
    }
    if begins != ends {
        errs.push(format!("{begins} B events but {ends} E events (unpaired)"));
    }
    if spans == 0 {
        errs.push("no complete (X) span events".to_string());
    }
    if meta == 0 {
        errs.push("no metadata (M) events — lanes would be unnamed".to_string());
    }
    errs
}

fn main() {
    let tiny = std::env::var("AWE_BENCH_TINY").is_ok() || std::env::args().any(|a| a == "--test");
    let reps = if tiny { 2 } else { 5 };

    // Per-site tracing-off cost, measured before any recording runs.
    let site_cost = disabled_site_cost_s();
    println!("tracing-off probe: {:.2} ns per site", site_cost * 1e9);

    let cases = cases(tiny);
    let mut rows = Vec::with_capacity(cases.len());
    let mut trace_profile: Option<Profile> = None;
    for case in &cases {
        let (row, profile) = measure(case, reps);
        println!(
            "{:<14} n={:<5} cold {:>9.1} us (factor {:>8.1} us)  warm {:>9.1} us \
             (refactor {:>7.1} us)  obs {:>4} sites ({:.3}% off-overhead)",
            row.name,
            row.unknowns,
            row.cold_latency * 1e6,
            row.cold.factor.as_secs_f64() * 1e6,
            row.warm_latency * 1e6,
            row.refactor_s * 1e6,
            row.obs_sites,
            row.obs_sites as f64 * site_cost / row.warm_latency * 100.0,
        );
        // The first (smallest) case's recorded solve becomes the trace
        // artifact.
        trace_profile.get_or_insert(profile);
        rows.push(row);
    }

    let json = render(&rows, tiny, site_cost);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_awe.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");

    let written = std::fs::read_to_string(path).unwrap_or_default();
    let errs = validate(&written, rows.len());
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("BENCH_awe.json validation: {e}");
        }
        std::process::exit(1);
    }
    println!("BENCH_awe.json validated: {} cases", rows.len());

    let trace = trace_profile.expect("at least one case ran").chrome_trace();
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_awe.json");
    if let Err(e) = std::fs::write(trace_path, &trace) {
        eprintln!("cannot write {trace_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {trace_path}");

    let written = std::fs::read_to_string(trace_path).unwrap_or_default();
    let errs = validate_trace(&written);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("TRACE_awe.json validation: {e}");
        }
        std::process::exit(1);
    }
    println!(
        "TRACE_awe.json validated: {} events",
        written
            .lines()
            .filter(|l| l.trim().starts_with('{'))
            .count()
    );
}
