//! Ablation — full AWE pipeline cost by approximation order `q` on the
//! stiff Fig. 16 tree (§4.4: "higher orders of approximation can be
//! obtained at an incremental cost").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use awe::{AweEngine, AweOptions};
use awe_circuit::papers::fig16;
use awe_circuit::Waveform;

fn bench_order_sweep(c: &mut Criterion) {
    let p = fig16(Waveform::step(0.0, 5.0), None);
    let engine = AweEngine::new(&p.circuit).expect("builds");
    let opts = AweOptions {
        error_estimate: false,
        max_escalation: 0,
        ..AweOptions::default()
    };

    let mut group = c.benchmark_group("ablation_order_sweep");
    for q in [1usize, 2, 3, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                let a = engine
                    .approximate_with(black_box(p.output), q, opts)
                    .expect("approximation");
                black_box(a)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_order_sweep
}
criterion_main!(benches);
