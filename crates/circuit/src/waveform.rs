//! Source waveforms.
//!
//! The paper's excitation class (eq. (5)) is `u(t) = u₀ + u₁·t` — any
//! piecewise-linear signal decomposes into a superposition of such infinite
//! ramps (§4.3, Fig. 13: a finite-rise-time step is a positive ramp plus a
//! delayed negative ramp). [`Waveform`] is therefore stored in piecewise-
//! linear form, and [`Waveform::ramps`] produces exactly that superposition
//! for the AWE engine, while [`Waveform::eval`] serves the reference
//! transient simulator.

use std::fmt;

/// One infinite ramp component of a PWL decomposition: a signal that is
/// zero before `start` and grows with `slope` after it, i.e.
/// `slope · (t - start) · 1(t ≥ start)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ramp {
    /// Onset time in seconds.
    pub start: f64,
    /// Slope in units/second (may be negative).
    pub slope: f64,
}

/// A piecewise-linear source waveform.
///
/// The value is `points[0].1` for `t ≤ points[0].0`, linearly interpolated
/// between breakpoints, and constant after the final breakpoint.
///
/// # Examples
///
/// ```
/// use awe_circuit::Waveform;
///
/// // 0 → 5 V with a 1 ns rise starting at t = 0.
/// let w = Waveform::rising_step(0.0, 5.0, 1e-9);
/// assert_eq!(w.eval(-1.0), 0.0);
/// assert_eq!(w.eval(0.5e-9), 2.5);
/// assert_eq!(w.eval(1.0), 5.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Waveform {
    points: Vec<(f64, f64)>,
}

impl Waveform {
    /// A constant (DC) source.
    pub fn dc(value: f64) -> Self {
        Waveform {
            points: vec![(0.0, value)],
        }
    }

    /// An ideal step from `v0` to `v1` at `t = 0`.
    ///
    /// Represented as a PWL with an *instantaneous* transition; the AWE
    /// ramp decomposition treats a zero-width segment as an ideal step
    /// (pure initial-condition change), and the transient simulator
    /// evaluates the post-step value at `t ≥ 0`.
    pub fn step(v0: f64, v1: f64) -> Self {
        Waveform {
            points: vec![(0.0, v0), (0.0, v1)],
        }
    }

    /// A step from `0` (for `t < t0`) to `v1`, with linear rise of duration
    /// `rise` starting at `t0`. `rise == 0` gives an ideal step at `t0`.
    pub fn rising_step(t0: f64, v1: f64, rise: f64) -> Self {
        Waveform {
            points: vec![(t0, 0.0), (t0 + rise, v1)],
        }
    }

    /// An arbitrary piecewise-linear waveform from `(time, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or times are decreasing.
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "PWL waveform needs at least one point");
        for w in points.windows(2) {
            assert!(
                w[1].0 >= w[0].0,
                "PWL breakpoints must have non-decreasing times"
            );
        }
        Waveform { points }
    }

    /// Breakpoints of the waveform.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Value at time `t`.
    ///
    /// Constant before the first and after the last breakpoint. At a
    /// zero-width (ideal-step) transition the *post-step* value is
    /// returned.
    pub fn eval(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t < pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let ((t0, v0), (t1, v1)) = (w[0], w[1]);
            if t < t1 {
                if t1 == t0 {
                    continue;
                }
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
            }
        }
        pts.last().expect("non-empty").1
    }

    /// Initial value (at `t = -∞`, i.e. before the first breakpoint).
    pub fn initial_value(&self) -> f64 {
        self.points[0].1
    }

    /// Final value (after the last breakpoint).
    pub fn final_value(&self) -> f64 {
        self.points.last().expect("non-empty").1
    }

    /// `true` if the waveform never changes value.
    pub fn is_dc(&self) -> bool {
        self.points.iter().all(|p| p.1 == self.points[0].1)
    }

    /// Decomposes the waveform into its initial value, a list of infinite
    /// [`Ramp`]s, and a list of ideal steps `(time, jump)`:
    ///
    /// ```text
    /// u(t) = initial + Σ ramps slopeᵢ·(t-startᵢ)·1(t≥startᵢ)
    ///                + Σ steps jumpⱼ·1(t≥timeⱼ)
    /// ```
    ///
    /// This is the paper's Fig. 13 construction generalized to arbitrary
    /// PWL inputs: the AWE engine superposes one homogeneous solution per
    /// ramp/step.
    pub fn decompose(&self) -> (f64, Vec<Ramp>, Vec<(f64, f64)>) {
        let initial = self.initial_value();
        let mut ramps = Vec::new();
        let mut steps = Vec::new();
        let mut prev_slope = 0.0;
        for w in self.points.windows(2) {
            let ((t0, v0), (t1, v1)) = (w[0], w[1]);
            if t1 == t0 {
                if v1 != v0 {
                    steps.push((t0, v1 - v0));
                }
                continue;
            }
            let slope = (v1 - v0) / (t1 - t0);
            let dslope = slope - prev_slope;
            if dslope != 0.0 {
                ramps.push(Ramp {
                    start: t0,
                    slope: dslope,
                });
            }
            prev_slope = slope;
        }
        // Flatten after the final breakpoint.
        if prev_slope != 0.0 {
            ramps.push(Ramp {
                start: self.points.last().expect("non-empty").0,
                slope: -prev_slope,
            });
        }
        (initial, ramps, steps)
    }

    /// Convenience alias for [`Waveform::decompose`] returning only ramps
    /// (errors if the waveform contains ideal steps are *not* raised —
    /// ideal steps are returned separately by `decompose`).
    pub fn ramps(&self) -> Vec<Ramp> {
        self.decompose().1
    }
}

impl fmt::Display for Waveform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dc() {
            return write!(f, "DC {}", self.points[0].1);
        }
        write!(f, "PWL(")?;
        for (i, (t, v)) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t} {v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(3.3);
        assert_eq!(w.eval(-1e9), 3.3);
        assert_eq!(w.eval(1e9), 3.3);
        assert!(w.is_dc());
        assert_eq!(w.initial_value(), 3.3);
        assert_eq!(w.final_value(), 3.3);
        let (init, ramps, steps) = w.decompose();
        assert_eq!(init, 3.3);
        assert!(ramps.is_empty());
        assert!(steps.is_empty());
    }

    #[test]
    fn ideal_step() {
        let w = Waveform::step(0.0, 5.0);
        assert_eq!(w.eval(-1e-12), 0.0);
        assert_eq!(w.eval(0.0), 5.0);
        assert_eq!(w.eval(1.0), 5.0);
        let (init, ramps, steps) = w.decompose();
        assert_eq!(init, 0.0);
        assert!(ramps.is_empty());
        assert_eq!(steps, vec![(0.0, 5.0)]);
    }

    #[test]
    fn finite_rise_decomposes_into_two_ramps() {
        // The paper's Fig. 13: step with 1 ms rise = +ramp at 0, −ramp at 1 ms.
        let w = Waveform::rising_step(0.0, 5.0, 1e-3);
        let (init, ramps, steps) = w.decompose();
        assert_eq!(init, 0.0);
        assert!(steps.is_empty());
        assert_eq!(ramps.len(), 2);
        assert_eq!(
            ramps[0],
            Ramp {
                start: 0.0,
                slope: 5e3
            }
        );
        assert_eq!(
            ramps[1],
            Ramp {
                start: 1e-3,
                slope: -5e3
            }
        );
        // Reconstruct and compare against eval.
        for &t in &[-1e-3, 0.0, 2.5e-4, 9.9e-4, 1e-3, 5e-3] {
            let recon: f64 = init
                + ramps
                    .iter()
                    .filter(|r| t >= r.start)
                    .map(|r| r.slope * (t - r.start))
                    .sum::<f64>();
            assert!((recon - w.eval(t)).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn pwl_multi_segment() {
        let w = Waveform::pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 1.0), (4.0, 1.0)]);
        assert_eq!(w.eval(0.5), 1.0);
        assert_eq!(w.eval(2.0), 1.5);
        assert_eq!(w.eval(3.5), 1.0);
        assert_eq!(w.eval(10.0), 1.0);
        let (init, ramps, steps) = w.decompose();
        assert_eq!(init, 0.0);
        assert!(steps.is_empty());
        // Slopes: 2, -0.5, 0 → ramp deltas +2 at 0, -2.5 at 1, +0.5 at 3.
        assert_eq!(ramps.len(), 3);
        for &t in &[0.25, 1.5, 2.9, 3.2, 8.0] {
            let recon: f64 = init
                + ramps
                    .iter()
                    .filter(|r| t >= r.start)
                    .map(|r| r.slope * (t - r.start))
                    .sum::<f64>();
            assert!((recon - w.eval(t)).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn step_mid_pwl() {
        let w = Waveform::pwl(vec![(0.0, 1.0), (1.0, 1.0), (1.0, 4.0), (2.0, 4.0)]);
        assert_eq!(w.eval(0.5), 1.0);
        assert_eq!(w.eval(1.0), 4.0);
        let (_, ramps, steps) = w.decompose();
        assert!(ramps.is_empty());
        assert_eq!(steps, vec![(1.0, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_pwl_panics() {
        let _ = Waveform::pwl(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_times_panic() {
        let _ = Waveform::pwl(vec![(1.0, 0.0), (0.0, 1.0)]);
    }

    #[test]
    fn display() {
        assert_eq!(Waveform::dc(5.0).to_string(), "DC 5");
        let w = Waveform::rising_step(0.0, 5.0, 1e-9);
        assert!(w.to_string().starts_with("PWL("));
    }
}
