//! Prints the regenerated report for the paper experiment `baselines`.
//! See DESIGN.md §2 for the experiment index.

fn main() {
    println!("{}", awe_bench::experiments::baselines());
}
