//! Real-matrix eigenvalues via balancing, Hessenberg reduction, and the
//! Francis double-shift QR iteration.
//!
//! AWE's validation path needs the *exact* natural frequencies of a circuit
//! (the "actual" columns of the paper's Tables I and II). Those are the
//! eigenvalues of the state matrix `A = -C⁻¹G`, which for the stiff
//! interconnect circuits of interest spread over many decades — hence the
//! balancing pass, which equilibrates row/column norms by powers of two
//! (exact in binary floating point) before iterating.

use crate::complex::Complex;
use crate::error::NumericError;
use crate::hessenberg::hessenberg;
use crate::matrix::Matrix;

/// Maximum QR iterations per eigenvalue before declaring non-convergence.
const MAX_ITER_PER_EIGENVALUE: usize = 60;

/// Balances a matrix by a diagonal similarity with power-of-two entries
/// (EISPACK `balanc`-style). Balancing is exact — no rounding — and can
/// dramatically improve eigenvalue accuracy for stiff circuits whose
/// element values span many orders of magnitude.
pub fn balance(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut m = a.clone();
    let radix: f64 = 2.0;
    let sqrdx = radix * radix;
    let mut done = false;
    while !done {
        done = true;
        for i in 0..n {
            let mut r = 0.0;
            let mut c = 0.0;
            for j in 0..n {
                if j != i {
                    c += m[(j, i)].abs();
                    r += m[(i, j)].abs();
                }
            }
            if c != 0.0 && r != 0.0 {
                let mut g = r / radix;
                let mut f = 1.0;
                let s = c + r;
                let mut c2 = c;
                while c2 < g {
                    f *= radix;
                    c2 *= sqrdx;
                }
                g = r * radix;
                while c2 > g {
                    f /= radix;
                    c2 /= sqrdx;
                }
                if (c2 + r / f) / f < 0.95 * s {
                    done = false;
                    let ginv = 1.0 / f;
                    for j in 0..n {
                        m[(i, j)] *= ginv;
                    }
                    for j in 0..n {
                        m[(j, i)] *= f;
                    }
                }
            }
        }
    }
    m
}

/// Computes all eigenvalues of a square real matrix.
///
/// Eigenvalues are returned sorted by ascending real part, then ascending
/// imaginary part (so for stable circuits the most negative — fastest —
/// poles come first; callers interested in the *dominant* pole take the
/// last entries).
///
/// # Errors
///
/// * [`NumericError::NotSquare`] for non-square input.
/// * [`NumericError::NoConvergence`] if the QR iteration stalls.
///
/// # Examples
///
/// ```
/// use awe_numeric::{eigenvalues, Matrix};
/// # fn main() -> Result<(), awe_numeric::NumericError> {
/// // Companion matrix of λ² - 3λ + 2: eigenvalues 1 and 2.
/// let a = Matrix::from_rows(&[&[0.0, -2.0], &[1.0, 3.0]]);
/// let eig = eigenvalues(&a)?;
/// assert!((eig[0].re - 1.0).abs() < 1e-10);
/// assert!((eig[1].re - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>, NumericError> {
    if !a.is_square() {
        return Err(NumericError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let balanced = balance(a);
    let h = hessenberg(&balanced)?;
    let mut eig = hqr(h)?;
    eig.sort_by(|x, y| {
        x.re.partial_cmp(&y.re)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.im.partial_cmp(&y.im).unwrap_or(std::cmp::Ordering::Equal))
    });
    Ok(eig)
}

/// Francis double-shift QR on an upper Hessenberg matrix, returning all
/// eigenvalues. Classic EISPACK `hqr` logic, 0-indexed.
fn hqr(mut h: Matrix) -> Result<Vec<Complex>, NumericError> {
    let n = h.rows();
    let mut eig = Vec::with_capacity(n);
    if n == 0 {
        return Ok(eig);
    }

    // Overall norm used for negligibility tests.
    let mut anorm = 0.0f64;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += h[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        // Zero matrix: all eigenvalues zero.
        return Ok(vec![Complex::ZERO; n]);
    }

    let mut nn = n as isize - 1;
    let mut t = 0.0f64;
    let mut total_iters = 0usize;

    while nn >= 0 {
        let mut its = 0;
        loop {
            // Find small subdiagonal element: l such that h[l, l-1] negligible.
            let mut l = nn;
            while l >= 1 {
                let s = h[((l - 1) as usize, (l - 1) as usize)].abs()
                    + h[(l as usize, l as usize)].abs();
                let s = if s == 0.0 { anorm } else { s };
                if h[(l as usize, (l - 1) as usize)].abs() <= f64::EPSILON * s {
                    h[(l as usize, (l - 1) as usize)] = 0.0;
                    break;
                }
                l -= 1;
            }
            let x = h[(nn as usize, nn as usize)];
            if l == nn {
                // One real root found.
                eig.push(Complex::real(x + t));
                nn -= 1;
                break;
            }
            let y = h[((nn - 1) as usize, (nn - 1) as usize)];
            let w = h[(nn as usize, (nn - 1) as usize)] * h[((nn - 1) as usize, nn as usize)];
            if l == nn - 1 {
                // Two roots found: solve the 2x2 block.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                let x_sh = x + t;
                if q >= 0.0 {
                    // Real pair.
                    let z = p + if p >= 0.0 { z } else { -z };
                    eig.push(Complex::real(x_sh + z));
                    if z != 0.0 {
                        eig.push(Complex::real(x_sh - w / z));
                    } else {
                        eig.push(Complex::real(x_sh));
                    }
                } else {
                    // Complex conjugate pair.
                    eig.push(Complex::new(x_sh + p, z));
                    eig.push(Complex::new(x_sh + p, -z));
                }
                nn -= 2;
                break;
            }
            // No root yet: perform a double-shift QR sweep.
            if its == MAX_ITER_PER_EIGENVALUE {
                return Err(NumericError::NoConvergence {
                    iterations: total_iters,
                });
            }
            let (mut x, mut y, mut w) = (x, y, w);
            if its == 10 || its == 20 {
                // Exceptional shift to break cycling.
                t += x;
                for i in 0..=(nn as usize) {
                    h[(i, i)] -= x;
                }
                let s = h[(nn as usize, (nn - 1) as usize)].abs()
                    + h[((nn - 1) as usize, (nn - 2) as usize)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;
            total_iters += 1;

            // Look for two consecutive small subdiagonal elements.
            let mut m = nn - 2;
            let (mut p, mut q, mut r) = (0.0f64, 0.0f64, 0.0f64);
            while m >= l {
                let mu = m as usize;
                let z = h[(mu, mu)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / h[(mu + 1, mu)] + h[(mu, mu + 1)];
                q = h[(mu + 1, mu + 1)] - z - rr - ss;
                r = h[(mu + 2, mu + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = h[(mu, mu - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs() * (h[(mu - 1, mu - 1)].abs() + z.abs() + h[(mu + 1, mu + 1)].abs());
                if u <= f64::EPSILON * v {
                    break;
                }
                m -= 1;
            }
            let m = m.max(l) as usize;
            for i in m + 2..=(nn as usize) {
                h[(i, i - 2)] = 0.0;
                if i > m + 2 {
                    h[(i, i - 3)] = 0.0;
                }
            }
            // Double QR step on rows/columns m..=nn.
            let nnu = nn as usize;
            for k in m..nnu {
                if k != m {
                    p = h[(k, k - 1)];
                    q = h[(k + 1, k - 1)];
                    r = if k != nnu - 1 { h[(k + 2, k - 1)] } else { 0.0 };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let mut s = (p * p + q * q + r * r).sqrt();
                if p < 0.0 {
                    s = -s;
                }
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if l as usize != m {
                        h[(k, k - 1)] = -h[(k, k - 1)];
                    }
                } else {
                    h[(k, k - 1)] = -s * x;
                }
                p += s;
                x = p / s;
                y = q / s;
                let z = r / s;
                q /= p;
                r /= p;
                // Row modification.
                for j in k..=nnu {
                    let mut pj = h[(k, j)] + q * h[(k + 1, j)];
                    if k != nnu - 1 {
                        pj += r * h[(k + 2, j)];
                        h[(k + 2, j)] -= pj * z;
                    }
                    h[(k + 1, j)] -= pj * y;
                    h[(k, j)] -= pj * x;
                }
                // Column modification.
                let mmin = nnu.min(k + 3);
                for i in l as usize..=mmin {
                    let mut pi = x * h[(i, k)] + y * h[(i, k + 1)];
                    if k != nnu - 1 {
                        pi += z * h[(i, k + 2)];
                        h[(i, k + 2)] -= pi * r;
                    }
                    h[(i, k + 1)] -= pi * q;
                    h[(i, k)] -= pi;
                }
            }
        }
    }
    Ok(eig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = eigenvalues(&a).unwrap();
        let re: Vec<f64> = e.iter().map(|z| z.re).collect();
        assert!((re[0] + 1.0).abs() < 1e-12);
        assert!((re[1] - 2.0).abs() < 1e-12);
        assert!((re[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn complex_pair() {
        // Rotation-like matrix: eigenvalues ±j.
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let e = eigenvalues(&a).unwrap();
        assert!((e[0] - Complex::new(0.0, -1.0)).abs() < 1e-12);
        assert!((e[1] - Complex::new(0.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let e = eigenvalues(&Matrix::zeros(3, 3)).unwrap();
        assert!(e.iter().all(|z| z.abs() < 1e-15));
    }

    #[test]
    fn companion_matrix_known_roots() {
        // Companion of (λ+1)(λ+2)(λ+5)(λ+10) =
        // λ⁴ + 18λ³ + 97λ² + 180λ + 100.
        let coeffs = [100.0, 180.0, 97.0, 18.0];
        let n = coeffs.len();
        let mut a = Matrix::zeros(n, n);
        for i in 1..n {
            a[(i, i - 1)] = 1.0;
        }
        for (i, &c) in coeffs.iter().enumerate() {
            a[(i, n - 1)] = -c;
        }
        let e = eigenvalues(&a).unwrap();
        for want in [-10.0, -5.0, -2.0, -1.0] {
            assert!(
                e.iter()
                    .any(|z| (z.re - want).abs() < 1e-8 && z.im.abs() < 1e-8),
                "missing eigenvalue {want}: {e:?}"
            );
        }
    }

    #[test]
    fn stiff_spectrum_with_balancing() {
        // Diagonal spread over 10 decades, mixed by a similarity that
        // badly skews the norms; balancing must recover the spectrum.
        let d = [-1.0, -1e3, -1e6, -1e10];
        let n = d.len();
        // A = S·D·S⁻¹ with S unit lower triangular (easy exact inverse).
        let mut s = Matrix::identity(n);
        for i in 1..n {
            for j in 0..i {
                s[(i, j)] = ((i + j) % 3) as f64 - 1.0;
            }
        }
        let mut s_inv = Matrix::identity(n);
        // Invert unit lower triangular by forward substitution.
        for i in 1..n {
            for j in 0..i {
                let mut acc = 0.0;
                for k in j..i {
                    acc += s[(i, k)] * s_inv[(k, j)];
                }
                s_inv[(i, j)] = -acc;
            }
        }
        let a = &(&s * &Matrix::from_diag(&d)) * &s_inv;
        let e = eigenvalues(&a).unwrap();
        // Accuracy is relative to the spectral spread (norm ~1e10), so
        // the smallest eigenvalue carries a few ulps of the largest.
        for &want in &d {
            assert!(
                e.iter()
                    .any(|z| ((z.re - want) / want).abs() < 1e-4 && z.im.abs() < 1e-4 * want.abs()),
                "missing stiff eigenvalue {want}: {e:?}"
            );
        }
    }

    #[test]
    fn defective_matrix_jordan_block() {
        // A Jordan block: repeated eigenvalue -2 with multiplicity 3.
        let mut a = Matrix::from_diag(&[-2.0, -2.0, -2.0]);
        a[(0, 1)] = 1.0;
        a[(1, 2)] = 1.0;
        let e = eigenvalues(&a).unwrap();
        for z in &e {
            // Defective eigenvalues are recovered to ~eps^(1/3).
            assert!((*z - Complex::real(-2.0)).abs() < 1e-4, "{z}");
        }
    }

    #[test]
    fn mixed_real_and_complex() {
        // Block diagonal: rotation (±2j) ⊕ [-3] ⊕ damped spiral (-1 ± j).
        let mut a = Matrix::zeros(5, 5);
        a[(0, 1)] = -2.0;
        a[(1, 0)] = 2.0;
        a[(2, 2)] = -3.0;
        a[(3, 3)] = -1.0;
        a[(3, 4)] = -1.0;
        a[(4, 3)] = 1.0;
        a[(4, 4)] = -1.0;
        let e = eigenvalues(&a).unwrap();
        for want in [
            Complex::new(0.0, 2.0),
            Complex::new(0.0, -2.0),
            Complex::real(-3.0),
            Complex::new(-1.0, 1.0),
            Complex::new(-1.0, -1.0),
        ] {
            assert!(
                e.iter().any(|z| (*z - want).abs() < 1e-8),
                "missing {want}: {e:?}"
            );
        }
    }

    #[test]
    fn balance_preserves_eigenvalues() {
        let a = Matrix::from_rows(&[&[1.0, 1e8, 0.0], &[1e-8, 2.0, 1e8], &[0.0, 1e-8, 3.0]]);
        let b = balance(&a);
        // Balancing is a similarity: eigenvalue sums (traces) agree.
        assert!((a.trace().unwrap() - b.trace().unwrap()).abs() < 1e-9);
        // And the balanced matrix has vastly better norm symmetry.
        assert!(b.max_abs() < a.max_abs() / 1e3);
    }

    #[test]
    fn one_by_one() {
        let e = eigenvalues(&Matrix::from_rows(&[&[4.5]])).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0], Complex::real(4.5));
    }

    #[test]
    fn rejects_non_square() {
        assert!(eigenvalues(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn random_trace_determinant_consistency() {
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [2usize, 4, 7, 10] {
            let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 2.0 } else { 0.0 });
            let e = eigenvalues(&a).unwrap();
            let sum: f64 = e.iter().map(|z| z.re).sum();
            assert!(
                (sum - a.trace().unwrap()).abs() < 1e-7 * a.trace().unwrap().abs().max(1.0),
                "n={n}"
            );
            let prod = e.iter().fold(Complex::ONE, |acc, &z| acc * z);
            let det = crate::lu::Lu::factor(&a).unwrap().det();
            assert!(
                (prod.re - det).abs() < 1e-6 * det.abs().max(1.0),
                "n={n}: {prod} vs {det}"
            );
            assert!(prod.im.abs() < 1e-6 * det.abs().max(1.0));
        }
    }
}
