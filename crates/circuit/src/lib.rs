//! # awe-circuit
//!
//! Circuit substrate for the AWEsim workspace: netlist data model,
//! SPICE-like deck parsing, structural classification, spanning-tree
//! machinery, and the circuits of the paper's figures plus synthetic
//! workload generators.
//!
//! The element class is exactly the one the paper's AWE targets (§I):
//! resistors, grounded *and* floating capacitors, inductors, independent
//! sources with piecewise-linear waveforms, and linear controlled sources.
//!
//! ## Example
//!
//! ```
//! use awe_circuit::{parse_deck, topology};
//!
//! # fn main() -> Result<(), awe_circuit::CircuitError> {
//! let ckt = parse_deck(
//!     "V1 in 0 STEP 0 5
//!      R1 in n1 1k
//!      C1 n1 0 1p
//!      R2 n1 n2 2k
//!      C2 n2 0 0.5p",
//! )?;
//! let report = topology::analyze(&ckt);
//! assert!(report.is_rc_tree());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod element;
pub mod generators;
mod graph;
mod netlist;
pub mod papers;
mod parser;
pub mod pdn;
pub mod reduce;
pub mod stage;
pub mod topology;
mod waveform;

pub use element::{Element, NodeId, GROUND};
pub use graph::SpanningTree;
pub use netlist::{Circuit, CircuitError};
pub use parser::{
    parse_card_into, parse_deck, parse_multi_deck, parse_source_spec, parse_value, NamedNet,
};
pub use reduce::{reduce, ChainReduction, ReduceOptions, Reduced, ReductionReport};
pub use topology::{analyze, TopologyReport};
pub use waveform::{Ramp, Waveform};
