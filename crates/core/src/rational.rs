//! Rational (pole–zero) form of a reduced model.
//!
//! Control theory states the model-order reduction problem in terms of a
//! rational transfer function (the paper's eq. (30)); AWE works in
//! partial-fraction form instead, so zeros are never computed directly
//! (§3.3: "AWE differs in that the zeros are not found directly"). For
//! users who *do* want the `[q-1/q]` rational view — e.g. to inspect the
//! low-frequency zero that initial conditions introduce (§5.2) — this
//! module reassembles `X̂(s) = N(s)/D(s)` from the poles and residues and
//! extracts the approximating zeros.

use awe_numeric::{roots, Complex, Polynomial};

use crate::error::AweError;
use crate::terms::ExpSum;

/// The `[q-1/q]` rational form of a simple-pole exponential sum:
/// `X̂(s) = numerator(s) / denominator(s)` with real coefficients and a
/// monic denominator `∏ (s - pᵢ)`.
///
/// # Errors
///
/// * [`AweError::BadOrder`] for an empty sum or one containing
///   repeated-pole (`t^d`) terms — convert those models by splitting the
///   confluent terms first.
/// * [`AweError::Numeric`] if the poles cannot be conjugate-paired (a
///   malformed sum).
///
/// # Examples
///
/// ```
/// use awe::rational::rational_form;
/// use awe::{ExpSum, ExpTerm};
/// use awe_numeric::Complex;
///
/// # fn main() -> Result<(), awe::AweError> {
/// // 1/(s+1) - 1/(s+2) = 1 / (s² + 3s + 2): one finite zero... none!
/// let sum = ExpSum::new(vec![
///     ExpTerm::simple(Complex::real(-1.0), Complex::real(1.0)),
///     ExpTerm::simple(Complex::real(-2.0), Complex::real(-1.0)),
/// ]);
/// let (num, den) = rational_form(&sum)?;
/// assert_eq!(den.degree(), 2);
/// assert_eq!(num.degree(), 0); // constant numerator: no finite zeros
/// # Ok(())
/// # }
/// ```
pub fn rational_form(sum: &ExpSum) -> Result<(Polynomial, Polynomial), AweError> {
    let terms = sum.terms();
    if terms.is_empty() || terms.iter().any(|t| t.power > 0) {
        return Err(AweError::BadOrder { order: terms.len() });
    }
    let poles: Vec<Complex> = terms.iter().map(|t| t.pole).collect();

    // Denominator: monic product of (s - pᵢ), real by conjugate pairing.
    let den = Polynomial::from_conjugate_roots(&poles, 1e-7);

    // Numerator: Σᵢ kᵢ·∏_{j≠i} (s - pⱼ), accumulated in complex
    // coefficients and then verified real.
    let q = poles.len();
    let mut num_c = vec![Complex::ZERO; q];
    for (i, term) in terms.iter().enumerate() {
        // ∏_{j≠i} (s - pⱼ) by sequential convolution.
        let mut part = vec![Complex::ONE];
        for (j, &p) in poles.iter().enumerate() {
            if j == i {
                continue;
            }
            let mut next = vec![Complex::ZERO; part.len() + 1];
            for (k, &c) in part.iter().enumerate() {
                next[k + 1] += c;
                next[k] += c * (-p);
            }
            part = next;
        }
        for (k, &c) in part.iter().enumerate() {
            num_c[k] += term.coeff * c;
        }
    }
    let scale = num_c.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
    if num_c.iter().any(|c| c.im.abs() > 1e-7 * scale.max(1e-300)) {
        return Err(AweError::Numeric(awe_numeric::NumericError::Degenerate(
            "unpaired complex residues: numerator is not real",
        )));
    }
    let num = Polynomial::new(num_c.iter().map(|c| c.re).collect());
    Ok((num, den))
}

/// The finite approximating zeros of a simple-pole exponential sum — the
/// roots of its rational numerator.
///
/// # Errors
///
/// Propagates [`rational_form`] failures; a constant numerator yields an
/// empty zero list.
pub fn zeros(sum: &ExpSum) -> Result<Vec<Complex>, AweError> {
    let (num, _) = rational_form(sum)?;
    if num.degree() == 0 {
        return Ok(Vec::new());
    }
    Ok(roots(&num)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::ExpTerm;

    fn sum(pairs: &[(f64, f64)]) -> ExpSum {
        ExpSum::new(
            pairs
                .iter()
                .map(|&(p, k)| ExpTerm::simple(Complex::real(p), Complex::real(k)))
                .collect(),
        )
    }

    #[test]
    fn reconstructs_partial_fractions() {
        // k1/(s-p1) + k2/(s-p2) evaluated both ways at probe points.
        let s = sum(&[(-1.0, 2.0), (-5.0, -0.7)]);
        let (num, den) = rational_form(&s).unwrap();
        for &x in &[0.0, 1.0, -0.3, 2.5] {
            let direct: f64 = s.terms().iter().map(|t| t.coeff.re / (x - t.pole.re)).sum();
            let rat = num.eval(x) / den.eval(x);
            assert!((rat - direct).abs() < 1e-10, "x={x}: {rat} vs {direct}");
        }
    }

    #[test]
    fn zero_location_two_pole() {
        // k1/(s-p1)+k2/(s-p2) has its zero at (k1 p2 + k2 p1)/(k1+k2).
        let (p1, k1, p2, k2) = (-1.0, 1.0, -4.0, 2.0);
        let s = sum(&[(p1, k1), (p2, k2)]);
        let z = zeros(&s).unwrap();
        assert_eq!(z.len(), 1);
        let want = (k1 * p2 + k2 * p1) / (k1 + k2);
        assert!((z[0].re - want).abs() < 1e-10, "{} vs {want}", z[0].re);
    }

    #[test]
    fn complex_pair_gives_real_polynomials() {
        let p = Complex::new(-2.0, 3.0);
        let k = Complex::new(0.5, -1.5);
        let s = ExpSum::new(vec![
            ExpTerm::simple(p, k),
            ExpTerm::simple(p.conj(), k.conj()),
        ]);
        let (num, den) = rational_form(&s).unwrap();
        assert_eq!(den.degree(), 2);
        assert!(num.degree() <= 1);
        // den = s² + 4s + 13.
        assert!((den.coeffs()[0] - 13.0).abs() < 1e-10);
        assert!((den.coeffs()[1] - 4.0).abs() < 1e-10);
    }

    #[test]
    fn ic_low_frequency_zero_visible() {
        // §5.2's phenomenon end to end: precharging C6 of the Fig. 16
        // tree introduces a low-frequency zero in the reduced model that
        // partially cancels a pole.
        use crate::engine::AweEngine;
        use awe_circuit::papers::fig16;
        use awe_circuit::Waveform;
        let p = fig16(Waveform::step(0.0, 5.0), Some(5.0));
        let engine = AweEngine::new(&p.circuit).unwrap();
        let approx = engine.approximate(p.output, 2).unwrap();
        let z = zeros(&approx.pieces[0].transient).unwrap();
        // The q=2 model has one finite zero, and it sits at a *lower*
        // frequency than the second pole (the cancellation the paper
        // describes in Table I's discussion).
        assert_eq!(z.len(), 1);
        let poles = approx.poles();
        assert!(z[0].re < 0.0, "stable-side zero: {z:?}");
        assert!(
            z[0].re.abs() < poles[1].re.abs(),
            "zero {} should undercut the second pole {}",
            z[0].re,
            poles[1].re
        );
    }

    #[test]
    fn rejects_repeated_pole_terms() {
        let s = ExpSum::new(vec![ExpTerm {
            pole: Complex::real(-1.0),
            coeff: Complex::ONE,
            power: 1,
        }]);
        assert!(rational_form(&s).is_err());
        assert!(rational_form(&ExpSum::zero()).is_err());
    }
}
