//! Property-based tests for MNA assembly and moment generation.

use proptest::prelude::*;

use awe_circuit::generators::{random_rc_tree, rc_mesh};
use awe_circuit::Waveform;
use awe_mna::{MnaSystem, MomentEngine, PieceKind};
use awe_numeric::vecops;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The DC solution satisfies `G·x = B·u` to rounding.
    #[test]
    fn dc_residual_is_small(n in 1usize..20, seed in 0u64..500) {
        let g = random_rc_tree(n, (1.0, 1e3), (1e-14, 1e-12), seed, Waveform::dc(3.3));
        let sys = MnaSystem::build(&g.circuit).expect("builds");
        let eng = MomentEngine::new(&sys).expect("nonsingular");
        let u = sys.source_values_at(0.0);
        let x = eng.dc(&u).expect("dc");
        let gx = sys.g.mul_vec(&x);
        let bu = sys.b_times(&u);
        let r = vecops::norm_inf(&vecops::sub(&gx, &bu));
        prop_assert!(r < 1e-9 * vecops::norm_inf(&bu).max(1.0), "residual {r}");
    }

    /// The moment recursion satisfies `G·m_{k+1} = -C·m_k` exactly (this
    /// is the §3.2 invariant in descriptor form).
    #[test]
    fn moment_recursion_invariant(n in 1usize..15, seed in 0u64..500) {
        let g = random_rc_tree(
            n,
            (1.0, 1e3),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, 5.0),
        );
        let sys = MnaSystem::build(&g.circuit).expect("builds");
        let eng = MomentEngine::new(&sys).expect("nonsingular");
        let dec = eng.decompose(6).expect("moments");
        let piece = &dec.pieces[0];
        for k in 1..piece.moments.len() - 1 {
            let lhs = sys.g.mul_vec(&piece.moments[k + 1]);
            let rhs: Vec<f64> = sys
                .c_times(&piece.moments[k])
                .iter()
                .map(|v| -v)
                .collect();
            let scale = vecops::norm_inf(&rhs).max(1e-300);
            let r = vecops::norm_inf(&vecops::sub(&lhs, &rhs));
            prop_assert!(r < 1e-9 * scale, "k={k}: residual {r} vs scale {scale}");
        }
    }

    /// For an RC tree driven by a step, the step piece's `m₋₁` equals the
    /// negated jump at every capacitive node and `m₀` is `jump · T_D ≥ 0`.
    #[test]
    fn step_moments_match_elmore_signs(n in 1usize..15, seed in 0u64..500) {
        let jump = 2.5;
        let g = random_rc_tree(
            n,
            (1.0, 1e3),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, jump),
        );
        let sys = MnaSystem::build(&g.circuit).expect("builds");
        let eng = MomentEngine::new(&sys).expect("nonsingular");
        let dec = eng.decompose(2).expect("moments");
        prop_assert_eq!(dec.pieces.len(), 1);
        let piece = &dec.pieces[0];
        let is_step = matches!(piece.kind, PieceKind::Step { .. });
        prop_assert!(is_step);
        for &node in &g.nodes {
            let i = sys.unknown_of_node(node).expect("unknown exists");
            prop_assert!((piece.moments[0][i] + jump).abs() < 1e-9);
            prop_assert!(piece.moments[1][i] > 0.0, "m_0 must be positive (Elmore)");
        }
    }

    /// Meshes (resistor loops) keep the same invariants.
    #[test]
    fn mesh_moments_invariant(rows in 1usize..4, cols in 1usize..4) {
        let g = rc_mesh(rows, cols, 10.0, 1e-13, Waveform::step(0.0, 1.0));
        let sys = MnaSystem::build(&g.circuit).expect("builds");
        let eng = MomentEngine::new(&sys).expect("nonsingular");
        let dec = eng.decompose(4).expect("moments");
        let piece = &dec.pieces[0];
        let lhs = sys.g.mul_vec(&piece.moments[2]);
        let rhs: Vec<f64> = sys.c_times(&piece.moments[1]).iter().map(|v| -v).collect();
        let r = vecops::norm_inf(&vecops::sub(&lhs, &rhs));
        prop_assert!(r < 1e-9 * vecops::norm_inf(&rhs).max(1e-300));
    }

    /// The instantaneous solve honors frozen capacitor voltages.
    #[test]
    fn instantaneous_respects_state(n in 2usize..10, seed in 0u64..200, vc in -3.0f64..3.0) {
        let g = random_rc_tree(
            n,
            (1.0, 1e3),
            (1e-14, 1e-12),
            seed,
            Waveform::dc(0.0),
        );
        let sys = MnaSystem::build(&g.circuit).expect("builds");
        let eng = MomentEngine::new(&sys).expect("nonsingular");
        let mut state = eng.initial_state().expect("state");
        // Freeze one capacitor at vc.
        state.cap_voltages[0] = vc;
        let x = eng.instantaneous(&state, &[0.0]).expect("solvable");
        let got = sys.cap_voltage(&sys.caps[0], &x);
        prop_assert!((got - vc).abs() < 1e-9, "{got} vs {vc}");
    }

    /// Particular solutions satisfy `G·a + C·b = B·u0` and `G·b = B·u1`.
    #[test]
    fn particular_solution_invariant(n in 1usize..12, seed in 0u64..200, slope in 0.1f64..10.0) {
        let g = random_rc_tree(
            n,
            (1.0, 1e3),
            (1e-14, 1e-12),
            seed,
            Waveform::dc(0.0),
        );
        let sys = MnaSystem::build(&g.circuit).expect("builds");
        let eng = MomentEngine::new(&sys).expect("nonsingular");
        let u0 = vec![1.0];
        let u1 = vec![slope];
        let (a, b) = eng.particular(&u0, &u1).expect("particular");
        let r1 = {
            let mut lhs = sys.g.mul_vec(&b);
            let rhs = sys.b_times(&u1);
            for (x, y) in lhs.iter_mut().zip(&rhs) {
                *x -= y;
            }
            vecops::norm_inf(&lhs)
        };
        prop_assert!(r1 < 1e-9 * slope.max(1.0));
        let r2 = {
            let mut lhs = sys.g.mul_vec(&a);
            let cb = sys.c_times(&b);
            let rhs = sys.b_times(&u0);
            for ((x, y), z) in lhs.iter_mut().zip(&cb).zip(&rhs) {
                *x += y;
                *x -= z;
            }
            vecops::norm_inf(&lhs)
        };
        prop_assert!(r2 < 1e-9);
    }
}

/// The sparse path (engaged above the size threshold) must agree with the
/// tree walk, which is independently validated — a three-way consistency
/// anchor at scale.
#[test]
fn sparse_path_matches_tree_walk_at_scale() {
    use awe_treelink::TreeAnalysis;
    let g = random_rc_tree(
        400, // well beyond the sparse threshold
        (1.0, 300.0),
        (1e-14, 1e-12),
        2024,
        Waveform::step(0.0, 5.0),
    );
    let sys = MnaSystem::build(&g.circuit).expect("builds");
    let eng = MomentEngine::new(&sys).expect("factors");
    let dec = eng.decompose(4).expect("moments");
    let ta = TreeAnalysis::new(&g.circuit).expect("tree");
    let walk = ta.step_moments(&[5.0], 4).expect("walk");
    let piece = &dec.pieces[0];
    for &node in g.nodes.iter().step_by(17) {
        let i = sys.unknown_of_node(node).expect("unknown");
        for (k, wk) in walk.iter().enumerate() {
            let a = wk[node];
            let b = piece.moments[k][i];
            assert!(
                (a - b).abs() <= 1e-8 * b.abs().max(1e-18),
                "node {node} moment {k}: walk {a} vs sparse-mna {b}"
            );
        }
    }
}
