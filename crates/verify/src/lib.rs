//! Differential-oracle verification for the AWE engine.
//!
//! The paper's central claim (§III–§V) — a q-pole Padé model tracks the
//! exact lumped-RLC response to within tight waveform error — is checked
//! here by *machine-generated* evidence rather than hand-picked cases:
//!
//! 1. [`fuzz`] — a seeded, deterministic circuit fuzzer over the
//!    `circuit::generators` families, sweeping topology class, size,
//!    element-value spread and stimulus waveform. Every case regenerates
//!    from `(class, master_seed, index)`.
//! 2. [`oracle`] — a stack of independent oracles (trapezoidal transient,
//!    dense eigensolve, Penfield–Rubinstein bounds, dense-vs-sparse LU,
//!    tree-walk-vs-MNA moments, reduced-net-vs-full-net AWE), each with a
//!    documented tolerance ladder.
//! 3. [`minimize`] — parameter-level shrinking of failing cases down to
//!    minimal SPICE decks for `tests/corpus/`.
//! 4. [`campaign`] — parallel fuzz campaigns (on `awe_batch`'s pool) with
//!    pass/fail census, worst-case waveform error, and corpus replay.
//!
//! The `awesim verify` subcommand is a thin wrapper over [`campaign`].

#![warn(missing_docs)]

pub mod campaign;
pub mod fuzz;
pub mod minimize;
pub mod oracle;

pub use campaign::{
    json_report, replay_deck, run_campaign, text_report, CampaignOptions, CampaignResult,
    CaseOutcome, FailureRecord, Tally,
};
pub use fuzz::{CaseParams, FuzzCase, TopologyClass, WaveKind};
pub use minimize::{corpus_deck, minimize, Minimized};
pub use oracle::{Artifacts, OracleKind, OracleReport, Verdict, DEFAULT_REDUCE_TOLERANCE};
