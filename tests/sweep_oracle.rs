//! Sweep-vs-simulator oracle: the worst-delay corner a sweep reports is
//! re-derived from `(base, spec, corner)` alone and checked against the
//! trapezoidal reference simulator — the sweep's headline number is a
//! real circuit answer, not an artifact of the tape replay path.

use awesim::batch::{corner_circuit, pdn_design, sweep, BatchEngine, BatchOptions, CornerSpec};
use awesim::circuit::pdn::PdnSpec;
use awesim::sim::{simulate, TransientOptions};

#[test]
fn worst_corner_delay_matches_trapezoidal_sim() {
    // Small mesh so the dense transient simulation stays tractable;
    // enough corners for the worst one to be a genuine extreme draw.
    let pdn = PdnSpec::square(10);
    let base = pdn_design("oracle", &pdn);
    let spec = CornerSpec::new(12, 0.08, 2026);
    let run = sweep(
        &BatchEngine::new(),
        &base,
        &spec,
        &BatchOptions {
            threads: 1,
            ..BatchOptions::default()
        },
    );
    assert!(run.rejected.is_empty(), "σ=0.08 should accept all corners");

    for (node, net) in run.nodes.iter().zip(base.nets()) {
        let corner = node.worst_corner.expect("worst corner attributed");
        let worst = node.worst_delay.expect("worst delay recorded");

        // Corner purity: rebuild the exact corner circuit from the spec
        // and ask the reference simulator for the same 50% delay.
        let circuit = corner_circuit(&net.circuit, &spec, corner).expect("accepted corner");
        // Horizon: several× the worst AWE delay bounds the settling time
        // of the dominant pole comfortably.
        let sim = simulate(&circuit, TransientOptions::new(12.0 * worst)).expect("sim");
        let d_sim = sim.delay_50(net.output).expect("rising response");

        assert!(
            ((worst - d_sim) / d_sim).abs() < 0.05,
            "{}: sweep worst-corner delay {worst:e} vs trapezoidal {d_sim:e}",
            node.node
        );
    }
}
