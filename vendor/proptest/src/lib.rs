//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in containers without network access, so the external
//! `proptest` dependency is replaced by this std-only crate implementing the
//! subset of the API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], [`prop_oneof!`],
//! * range strategies over `f64`/`usize`/`u64`/... and tuples of strategies,
//! * [`collection::vec`], [`bool::ANY`], [`strategy::Strategy::prop_map`],
//!   [`strategy::Strategy::prop_flat_map`] (and the `prop` prelude alias),
//! * `&str` regex-subset strategies (`[class]{m,n}`, `\PC`, literals).
//!
//! Semantics: each test body runs for `cases` accepted inputs drawn from a
//! deterministic per-test RNG. There is **no shrinking** — on failure the
//! offending inputs are reported as generated. `prop_assume!` rejects the
//! case without counting it (with an attempt cap so a hostile filter cannot
//! loop forever).

#![forbid(unsafe_code)]

/// Runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    /// Outcome of a single generated test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case did not satisfy a `prop_assume!` precondition.
        Reject(String),
        /// A `prop_assert!`-family assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection with a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG driving generation (xoshiro256++ seeded from the
    /// test name, so every test is reproducible run to run).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from an arbitrary label (the macro passes the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut sm = h;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    ///
    /// This offline stub generates without shrinking, so a strategy is just
    /// a seeded function from RNG state to a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Maps each generated value to a *strategy* and draws from it —
        /// the dependent-generation combinator (e.g. pick a size, then
        /// generate data shaped by that size).
        fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies of one value type — the
    /// strategy behind [`crate::prop_oneof!`]. (The real proptest takes
    /// weights; the offline stub chooses uniformly.)
    pub struct Union<T> {
        variants: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `variants` (must be non-empty).
        pub fn new(variants: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!variants.is_empty(), "empty prop_oneof!");
            Union { variants }
        }

        /// Boxes one variant — a helper for the macro, so type inference
        /// unifies the variants' value types without naming them.
        pub fn boxed<S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
            Box::new(s)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.variants.len() as u64) as usize;
            self.variants[i].generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, i64, i32, u8, i8);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &str {
        type Value = String;

        /// Interprets the string as the regex subset proptest test-suites
        /// conventionally use: literal chars, `[...]` classes (with ranges),
        /// `\PC` (any printable char), each optionally followed by `{n}` or
        /// `{m,n}` repetition.
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// `&str` pattern generation (regex subset).
pub mod string {
    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        Printable,
    }

    fn parse(pattern: &str) -> Vec<(Atom, u32, u32)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' => {
                    i += 3;
                    Atom::Printable
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .expect("unterminated character class");
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(ranges)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional {n} / {m,n} quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .expect("unterminated quantifier");
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad quantifier"),
                        n.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(a, b)| (b as u64).saturating_sub(a as u64) + 1)
                    .sum();
                let mut k = rng.below(total.max(1));
                for &(a, b) in ranges {
                    let span = (b as u64) - (a as u64) + 1;
                    if k < span {
                        return char::from_u32(a as u32 + k as u32).unwrap_or(a);
                    }
                    k -= span;
                }
                ranges[0].0
            }
            Atom::Printable => {
                // Mostly ASCII printable, occasionally beyond-ASCII, to give
                // parsers realistic hostile input without control chars.
                let k = rng.below(100);
                if k < 90 {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' ')
                } else {
                    const EXOTIC: &[char] = &['é', 'Ω', '✓', '中', '🙂', 'ß', '¼', '£'];
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                }
            }
        }
    }

    /// Generates a string matching `pattern` (regex subset, see module doc).
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pattern) {
            let n = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..n {
                out.push(gen_char(&atom, rng));
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy: `vec(element_strategy, len)` where `len` is an exact
    /// length or a `usize` range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The any-boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __attempts: u64 = 0;
            let __max_attempts: u64 = (__config.cases as u64) * 20 + 100;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest: too many prop_assume! rejections \
                     ({} attempts for {} accepted cases)",
                    __attempts,
                    __accepted
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                // The closure gives `prop_assert!`'s early `return Err`
                // a function boundary to return through.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => { __accepted += 1; }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case #{} failed: {}\n  inputs: {}",
                            __accepted + 1, __msg, __case_desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body (fails the case, with
/// the generated inputs reported, instead of panicking outright).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Uniform choice between strategies yielding the same value type.
/// (No weight syntax — the offline stub chooses uniformly.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::boxed($strat)),+
        ])
    };
}

/// Discards the current case (uncounted) unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn exact_vec_length(v in crate::collection::vec(0.0f64..1.0, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn tuples_and_map(
            p in (0.0f64..1.0, 10.0f64..20.0).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((10.0..21.0).contains(&p));
        }

        #[test]
        fn string_classes(s in "[a-z0-9]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }

        #[test]
        fn printable_strings(s in "\\PC{0,50}") {
            prop_assert!(s.chars().count() <= 50);
            prop_assert!(!s.chars().any(|c| c.is_control()));
        }

        #[test]
        fn assume_filters(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn bool_any(b in crate::bool::ANY) {
            let _ = b;
        }

        #[test]
        fn oneof_picks_from_every_arm(x in prop_oneof![0u64..10, 100u64..110]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }

        #[test]
        fn flat_map_generates_dependently(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n..n + 1)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::deterministic("label");
        let mut r2 = crate::test_runner::TestRng::deterministic("label");
        let s = 0.0f64..1.0;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut r1).to_bits(), s.generate(&mut r2).to_bits());
        }
    }
}
