//! The classical RC-tree baselines (paper §II).
//!
//! * [`elmore_delay`] — the Elmore delay `T_D` by the `O(n)` tree walk
//!   (eq. (1) evaluated structurally, eq. (50)).
//! * [`elmore_approximation`] — the Penfield–Rubinstein single-exponential
//!   model `v(t) = v(∞)·(1 - e^{-t/T_D})` (eq. (2)), generalized with the
//!   grounded-resistor scaling of eq. (3): the delay is normalized by the
//!   actual voltage transition when the steady state is below the rail.
//!
//! These are the *baselines* the paper positions AWE against; a
//! first-order AWE run reproduces them exactly (§IV), which the tests
//! assert.

use awe_circuit::{Circuit, NodeId};
use awe_numeric::Complex;
use awe_treelink::TreeAnalysis;

use crate::error::AweError;
use crate::response::{AweApproximation, ResponsePiece};
use crate::terms::{ExpSum, ExpTerm};

/// Elmore delay at every node of a strict RC tree, by one `O(n)` walk.
///
/// # Errors
///
/// Tree/link errors for non-RC-tree circuits.
pub fn elmore_delays(circuit: &Circuit) -> Result<Vec<f64>, AweError> {
    let ta = TreeAnalysis::new(circuit)?;
    Ok(ta.elmore_delays()?)
}

/// Elmore delay at one node.
///
/// # Errors
///
/// Tree/link errors for non-RC-tree circuits.
pub fn elmore_delay(circuit: &Circuit, node: NodeId) -> Result<f64, AweError> {
    Ok(elmore_delays(circuit)?[node])
}

/// The Penfield–Rubinstein single-exponential approximation at `node` for
/// a step of the circuit's sources from their initial to their final
/// values. Handles grounded resistors via the §2.2 scaling (eq. (3)):
/// `T_D = m_0-area / (v(∞) - v(0))`.
///
/// # Errors
///
/// Tree/link errors for circuits outside the R/C/V class.
pub fn elmore_approximation(circuit: &Circuit, node: NodeId) -> Result<AweApproximation, AweError> {
    let ta = TreeAnalysis::new(circuit)?;
    // Source jumps: final minus initial values.
    let mut u0 = Vec::new();
    let mut jumps = Vec::new();
    for e in circuit.elements() {
        if let awe_circuit::Element::VoltageSource { waveform, .. } = e {
            u0.push(waveform.initial_value());
            jumps.push(waveform.final_value() - waveform.initial_value());
        }
    }
    let baseline = ta.dc(&u0)?;
    let m = ta.step_moments(&jumps, 2)?;
    // First-order model from (m_{-1}, m_0): pole p = m_{-1}/m_0,
    // residue k = m_{-1}. For a strict tree with unit swing this is
    // exactly 1/T_D; with grounded resistors m_{-1} is the scaled swing,
    // giving eq. (3)'s normalization automatically.
    let m_minus1 = m[0][node];
    let m0 = m[1][node];
    let transient = if m_minus1 == 0.0 || m0 == 0.0 {
        ExpSum::zero()
    } else {
        let pole = m_minus1 / m0;
        if pole >= 0.0 {
            return Err(AweError::Unstable { order: 1 });
        }
        ExpSum::new(vec![ExpTerm::simple(
            Complex::real(pole),
            Complex::real(m_minus1),
        )])
    };
    Ok(AweApproximation {
        order: 1,
        baseline: baseline[node],
        pieces: vec![ResponsePiece {
            onset: 0.0,
            a: -m_minus1,
            b: 0.0,
            transient,
        }],
        error_estimate: None,
        condition: 1.0,
        stable: true,
        discarded: 0,
        moment_tail: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AweEngine;
    use awe_circuit::papers::{fig4, fig9};
    use awe_circuit::Waveform;

    fn step5() -> Waveform {
        Waveform::step(0.0, 5.0)
    }

    #[test]
    fn fig4_delays() {
        let p = fig4(step5());
        let d = elmore_delays(&p.circuit).unwrap();
        assert!((d[p.output] - 7e-4).abs() < 1e-15);
        assert!((elmore_delay(&p.circuit, p.nodes[0]).unwrap() - 4e-4).abs() < 1e-15);
    }

    #[test]
    fn pr_model_equals_first_order_awe() {
        // §IV's headline claim, verified numerically: the baseline
        // single-exponential equals first-order AWE on an RC tree.
        let p = fig4(step5());
        let pr = elmore_approximation(&p.circuit, p.output).unwrap();
        let engine = AweEngine::new(&p.circuit).unwrap();
        let awe1 = engine.approximate(p.output, 1).unwrap();
        for i in 0..=20 {
            let t = i as f64 * 2e-4;
            assert!(
                (pr.eval(t) - awe1.eval(t)).abs() < 1e-9,
                "t = {t}: {} vs {}",
                pr.eval(t),
                awe1.eval(t)
            );
        }
    }

    #[test]
    fn grounded_resistor_scaling_eq3() {
        // Fig. 9: swing is 4 V; the §2.2-scaled model settles at 4 V and
        // equals first-order AWE.
        let p = fig9(step5());
        let pr = elmore_approximation(&p.circuit, p.output).unwrap();
        assert!((pr.final_value() - 4.0).abs() < 1e-9);
        assert!(pr.initial_value().abs() < 1e-9);
        let engine = AweEngine::new(&p.circuit).unwrap();
        let awe1 = engine.approximate(p.output, 1).unwrap();
        let d_pr = pr.delay_50().unwrap();
        let d_awe = awe1.delay_50().unwrap();
        assert!(((d_pr - d_awe) / d_awe).abs() < 1e-6, "{d_pr} vs {d_awe}");
    }

    #[test]
    fn non_tree_rejected() {
        use awe_circuit::papers::fig25;
        let p = fig25(step5());
        assert!(elmore_delays(&p.circuit).is_err());
    }
}
