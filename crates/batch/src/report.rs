//! Rendering a batch run as a text report and as machine-readable JSON.
//!
//! The text report has two parts: a *deterministic* per-net section
//! (identical bytes for identical inputs regardless of thread count or
//! cache temperature) and an optional timing section. Determinism tests
//! render with `include_timings = false` and compare bytes.

use std::fmt::Write as _;
use std::time::Duration;

use crate::engine::{BatchRun, NetResult};
use crate::metrics::{RunMetrics, SweepMetrics};
use crate::sweep::SweepRun;

/// Renders the run as a human-readable text report.
///
/// With `include_timings = false` only the deterministic section is
/// emitted: design name, per-net results, and the result census. Wall
/// times, throughput, latency percentiles, and scheduler stats (thread
/// and steal counts) are all timing-dependent and only appear with
/// `include_timings = true`.
pub fn text_report(run: &BatchRun, include_timings: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "batch report: {}", run.design);
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>5} {:>3} {:>4} {:>6} {:>12} {:>12}  status",
        "net", "nodes", "elems", "q", "esc", "stable", "err-est", "delay-50"
    );
    for r in &run.results {
        let _ = writeln!(out, "{}", net_line(r));
    }
    let m = RunMetrics::of(run);
    let _ = writeln!(
        out,
        "nets {}  solves {}  cache-hits {} ({:.1} %)  failures {}  escalated {}  rescued {}",
        m.nets,
        m.solves,
        m.cache_hits,
        100.0 * m.hit_rate(),
        m.failures,
        m.escalated,
        m.rescued
    );
    if let Some(worst) = m.worst_error {
        let _ = writeln!(out, "worst error estimate {}", sci(worst));
    }
    if include_timings {
        let _ = writeln!(
            out,
            "wall {}  parse {}  throughput {:.1} nets/s",
            dur(m.wall),
            dur(m.parse_time),
            m.nets_per_sec
        );
        let _ = writeln!(
            out,
            "latency p50 {}  p95 {}  p99 {}",
            dur(m.p50),
            dur(m.p95),
            dur(m.p99)
        );
        let _ = writeln!(out, "stages (cpu):  {}", stage_line(&m.stages_cpu));
        let _ = writeln!(out, "stages (wall): {}", stage_line(&m.stages_wall));
        let _ = writeln!(out, "pattern-hits {}", m.pattern_hits);
        let _ = writeln!(
            out,
            "tapes compiled {}  replays {}  lane-occupancy {}  scalar-fallbacks {}",
            m.tapes_compiled,
            m.tape_replays,
            m.lane_occupancy
                .map_or("-".to_string(), |o| format!("{:.0} %", 100.0 * o)),
            m.scalar_fallbacks
        );
        let _ = writeln!(
            out,
            "threads {}  steals {}  per-worker {:?}",
            run.pool.threads,
            run.pool.total_steals(),
            run.pool.executed
        );
    }
    out
}

fn stage_line(s: &awe::StageTimings) -> String {
    format!(
        "mna {}  factor {}  refactor {}  moments {}  pade {}  residues {}",
        dur(s.mna),
        dur(s.factor),
        dur(s.refactor),
        dur(s.moments),
        dur(s.pade),
        dur(s.residues)
    )
}

fn net_line(r: &NetResult) -> String {
    let status = match (&r.error, r.cache_hit) {
        (Some(e), _) => format!("FAIL: {e}"),
        (None, true) => "cached".to_string(),
        (None, false) => "solved".to_string(),
    };
    format!(
        "{:<10} {:>5} {:>5} {:>3} {:>4} {:>6} {:>12} {:>12}  {}",
        r.name,
        r.nodes,
        r.elements,
        r.order,
        r.escalations,
        if r.stable { "yes" } else { "NO" },
        r.error_estimate.map_or("-".to_string(), sci),
        r.delay_50.map_or("-".to_string(), sci),
        status
    )
}

/// Renders the run as machine-readable JSON (hand-rolled — the workspace
/// carries no serde).
///
/// Timing fields (`wall_s`, per-stage seconds, latency percentiles,
/// scheduler stats) are included only with `include_timings = true`; the
/// remainder is deterministic.
pub fn json_report(run: &BatchRun, include_timings: bool) -> String {
    let m = RunMetrics::of(run);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"design\": {},", json_str(&run.design));
    let _ = writeln!(out, "  \"nets\": {},", m.nets);
    let _ = writeln!(out, "  \"solves\": {},", m.solves);
    let _ = writeln!(out, "  \"cache_hits\": {},", m.cache_hits);
    let _ = writeln!(out, "  \"failures\": {},", m.failures);
    let _ = writeln!(out, "  \"escalated\": {},", m.escalated);
    let _ = writeln!(out, "  \"rescued\": {},", m.rescued);
    let _ = writeln!(out, "  \"worst_error\": {},", json_opt_f64(m.worst_error));
    if include_timings {
        let _ = writeln!(out, "  \"wall_s\": {},", json_f64(m.wall.as_secs_f64()));
        let _ = writeln!(
            out,
            "  \"parse_s\": {},",
            json_f64(m.parse_time.as_secs_f64())
        );
        let _ = writeln!(out, "  \"nets_per_sec\": {},", json_f64(m.nets_per_sec));
        let _ = writeln!(
            out,
            "  \"latency_s\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}},",
            json_f64(m.p50.as_secs_f64()),
            json_f64(m.p95.as_secs_f64()),
            json_f64(m.p99.as_secs_f64())
        );
        let _ = writeln!(out, "  \"stages_cpu_s\": {},", stage_json(&m.stages_cpu));
        let _ = writeln!(out, "  \"stages_wall_s\": {},", stage_json(&m.stages_wall));
        let _ = writeln!(out, "  \"pattern_hits\": {},", m.pattern_hits);
        let _ = writeln!(
            out,
            "  \"tape\": {{\"compiled\": {}, \"replays\": {}, \"lane_occupancy\": {}, \
             \"scalar_fallbacks\": {}}},",
            m.tapes_compiled,
            m.tape_replays,
            json_opt_f64(m.lane_occupancy),
            m.scalar_fallbacks
        );
        let _ = writeln!(
            out,
            "  \"pool\": {{\"threads\": {}, \"steals\": {}}},",
            run.pool.threads,
            run.pool.total_steals()
        );
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in run.results.iter().enumerate() {
        let comma = if i + 1 < run.results.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", net_json(r));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders a corner sweep as a human-readable text report.
///
/// Like [`text_report`], the default section is deterministic (identical
/// bytes for identical base design + spec at any thread count or corner
/// order — the trailing digest line makes that checkable from a shell);
/// wall times and throughput only appear with `include_timings = true`.
pub fn sweep_text_report(sweep: &SweepRun, include_timings: bool) -> String {
    let m = SweepMetrics::of(sweep);
    let mut out = String::new();
    let _ = writeln!(out, "sweep report: {}", sweep.design);
    let _ = writeln!(
        out,
        "corners {}  sigma {}  seed {}  members {}  rejected {}",
        m.corners, sweep.spec.sigma, sweep.spec.seed, m.members, m.rejected
    );
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12}  worst-corner",
        "node", "samples", "failed", "p50", "p95", "p99", "worst"
    );
    for n in &sweep.nodes {
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12}  {}",
            n.node,
            n.samples,
            n.failed,
            n.p50.map_or("-".to_string(), sci),
            n.p95.map_or("-".to_string(), sci),
            n.p99.map_or("-".to_string(), sci),
            n.worst_delay.map_or("-".to_string(), sci),
            n.worst_corner
                .map_or("-".to_string(), |c| format!("c{c:04}")),
        );
    }
    for r in &sweep.rejected {
        let _ = writeln!(out, "rejected {r}");
    }
    let _ = writeln!(
        out,
        "solves {}  pattern-hits {}  new-symbolic {} (after donor {})",
        m.batch.solves, m.batch.pattern_hits, m.new_symbolic, m.new_symbolic_after_donor
    );
    let _ = writeln!(out, "digest {:016x}", sweep.digest());
    if include_timings {
        let _ = writeln!(
            out,
            "wall {}  generate {}  {:.2} corners/s  ({:.1} members/s)",
            dur(sweep.run.wall),
            dur(sweep.generate_wall),
            m.corners_per_sec,
            m.batch.nets_per_sec
        );
        let _ = writeln!(out, "stages (cpu):  {}", stage_line(&m.batch.stages_cpu));
        let _ = writeln!(
            out,
            "tapes compiled {}  replays {}  lane-occupancy {}  scalar-fallbacks {}",
            m.batch.tapes_compiled,
            m.batch.tape_replays,
            m.batch
                .lane_occupancy
                .map_or("-".to_string(), |o| format!("{:.0} %", 100.0 * o)),
            m.batch.scalar_fallbacks
        );
        let _ = writeln!(
            out,
            "threads {}  steals {}",
            sweep.run.pool.threads,
            sweep.run.pool.total_steals()
        );
    }
    out
}

/// Renders a corner sweep as machine-readable JSON (hand-rolled — the
/// workspace carries no serde). Timing fields are gated behind
/// `include_timings`; everything else, digest included, is
/// deterministic.
pub fn sweep_json_report(sweep: &SweepRun, include_timings: bool) -> String {
    let m = SweepMetrics::of(sweep);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"design\": {},", json_str(&sweep.design));
    let _ = writeln!(out, "  \"corners\": {},", m.corners);
    let _ = writeln!(out, "  \"sigma\": {},", json_f64(sweep.spec.sigma));
    let _ = writeln!(out, "  \"seed\": {},", sweep.spec.seed);
    let _ = writeln!(out, "  \"members\": {},", m.members);
    let _ = writeln!(out, "  \"solves\": {},", m.batch.solves);
    let _ = writeln!(out, "  \"cache_hits\": {},", m.batch.cache_hits);
    let _ = writeln!(out, "  \"pattern_hits\": {},", m.batch.pattern_hits);
    let _ = writeln!(out, "  \"new_symbolic\": {},", m.new_symbolic);
    let _ = writeln!(
        out,
        "  \"new_symbolic_after_donor\": {},",
        m.new_symbolic_after_donor
    );
    let _ = writeln!(out, "  \"failures\": {},", m.batch.failures);
    let _ = writeln!(out, "  \"digest\": \"{:016x}\",", sweep.digest());
    if include_timings {
        let _ = writeln!(
            out,
            "  \"wall_s\": {},",
            json_f64(sweep.run.wall.as_secs_f64())
        );
        let _ = writeln!(
            out,
            "  \"generate_s\": {},",
            json_f64(sweep.generate_wall.as_secs_f64())
        );
        let _ = writeln!(
            out,
            "  \"corners_per_sec\": {},",
            json_f64(m.corners_per_sec)
        );
        let _ = writeln!(
            out,
            "  \"tape\": {{\"compiled\": {}, \"replays\": {}, \"lane_occupancy\": {}, \
             \"scalar_fallbacks\": {}}},",
            m.batch.tapes_compiled,
            m.batch.tape_replays,
            json_opt_f64(m.batch.lane_occupancy),
            m.batch.scalar_fallbacks
        );
        let _ = writeln!(
            out,
            "  \"pool\": {{\"threads\": {}, \"steals\": {}}},",
            sweep.run.pool.threads,
            sweep.run.pool.total_steals()
        );
    }
    out.push_str("  \"rejected\": [\n");
    for (i, r) in sweep.rejected.iter().enumerate() {
        let comma = if i + 1 < sweep.rejected.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"corner\": {}, \"net\": {}, \"element\": {}, \"value\": {}}}{comma}",
            r.corner,
            json_str(&r.net),
            json_str(&r.element),
            json_f64(r.value)
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"nodes\": [\n");
    for (i, n) in sweep.nodes.iter().enumerate() {
        let comma = if i + 1 < sweep.nodes.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"node\": {}, \"samples\": {}, \"failed\": {}, \"p50\": {}, \"p95\": {}, \
             \"p99\": {}, \"worst_corner\": {}, \"worst_delay\": {}}}{comma}",
            json_str(&n.node),
            n.samples,
            n.failed,
            json_opt_f64(n.p50),
            json_opt_f64(n.p95),
            json_opt_f64(n.p99),
            n.worst_corner.map_or("null".to_string(), |c| c.to_string()),
            json_opt_f64(n.worst_delay)
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn stage_json(s: &awe::StageTimings) -> String {
    format!(
        "{{\"mna\": {}, \"factor\": {}, \"refactor\": {}, \
         \"moments\": {}, \"pade\": {}, \"residues\": {}}}",
        json_f64(s.mna.as_secs_f64()),
        json_f64(s.factor.as_secs_f64()),
        json_f64(s.refactor.as_secs_f64()),
        json_f64(s.moments.as_secs_f64()),
        json_f64(s.pade.as_secs_f64()),
        json_f64(s.residues.as_secs_f64())
    )
}

fn net_json(r: &NetResult) -> String {
    let poles: Vec<String> = r
        .poles
        .iter()
        .map(|(re, im)| format!("[{}, {}]", json_f64(*re), json_f64(*im)))
        .collect();
    format!(
        "{{\"name\": {}, \"hash\": \"{:016x}\", \"nodes\": {}, \"elements\": {}, \
         \"requested_order\": {}, \"order\": {}, \"escalations\": {}, \"stable\": {}, \
         \"rescued\": {}, \"error_estimate\": {}, \"delay_50\": {}, \"final_value\": {}, \
         \"poles\": [{}], \"cache_hit\": {}, \"error\": {}}}",
        json_str(&r.name),
        r.hash,
        r.nodes,
        r.elements,
        r.requested_order,
        r.order,
        r.escalations,
        r.stable,
        r.rescued,
        json_opt_f64(r.error_estimate),
        json_opt_f64(r.delay_50),
        json_f64(r.final_value),
        poles.join(", "),
        r.cache_hit,
        r.error.as_deref().map_or("null".to_string(), json_str)
    )
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number from an `f64` (shortest round-trip; non-finite → null,
/// which JSON cannot represent as a number).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or("null".to_string(), json_f64)
}

/// Scientific notation with fixed precision (deterministic).
fn sci(v: f64) -> String {
    format!("{v:.4e}")
}

/// Human duration: µs/ms/s with three significant-ish digits.
fn dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use crate::engine::{BatchEngine, BatchOptions};

    #[test]
    fn deterministic_report_is_stable_across_threads() {
        let design = Design::synthetic(16, 9);
        let report = |threads| {
            let run = BatchEngine::new().run(
                &design,
                &BatchOptions {
                    threads,
                    ..BatchOptions::default()
                },
            );
            text_report(&run, false)
        };
        assert_eq!(report(1), report(4));
    }

    #[test]
    fn timing_section_gated() {
        let design = Design::synthetic(3, 1);
        let run = BatchEngine::new().run(&design, &BatchOptions::default());
        let bare = text_report(&run, false);
        let full = text_report(&run, true);
        assert!(!bare.contains("latency"));
        assert!(!bare.contains("threads"));
        assert!(full.contains("latency"));
        assert!(full.contains("nets/s"));
    }

    #[test]
    fn json_shape() {
        let design = Design::synthetic(2, 4);
        let run = BatchEngine::new().run(&design, &BatchOptions::default());
        let j = json_report(&run, true);
        assert!(j.contains("\"design\": \"synthetic-2\""));
        assert!(j.contains("\"nets\": 2"));
        assert!(j.contains("\"nets_per_sec\""));
        assert!(j.contains("\"name\": \"net0001\""));
        let bare = json_report(&run, false);
        assert!(!bare.contains("nets_per_sec"));
        // Balanced braces/brackets as a cheap well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j.matches(open).count(),
                j.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_opt_f64(None), "null");
        assert_eq!(json_opt_f64(Some(0.5)), "0.5");
    }
}
