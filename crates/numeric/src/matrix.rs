//! Dense row-major matrices and vectors over `f64`.
//!
//! The circuits AWE targets (interconnect stages) produce small-to-medium
//! dense systems after modified nodal analysis, and the moment-matching step
//! itself works on tiny `q×q` systems (paper eq. (24), with `q` rarely above
//! 8). A straightforward, well-tested dense representation is therefore the
//! right substrate; sparsity is exploited structurally (tree walks in
//! `awe-treelink`) rather than through a sparse matrix type.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::error::NumericError;

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use awe_numeric::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(&a * &b, a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Reshapes this matrix to `rows × cols` and zeroes every entry,
    /// reusing the existing allocation when it is large enough. The
    /// in-place twin of [`Matrix::zeros`] for buffers that are rebuilt
    /// per net (MNA restamping in the batch tape replay).
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrites this matrix with a copy of `src`, reusing the existing
    /// allocation when it is large enough (unlike `clone`, which always
    /// allocates fresh storage).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// ```
    /// use awe_numeric::Matrix;
    /// let i = Matrix::identity(3);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds an `n × n` matrix by evaluating `f(i, j)` at every entry.
    ///
    /// ```
    /// use awe_numeric::Matrix;
    /// let h = Matrix::from_fn(3, 3, |i, j| 1.0 / (i + j + 1) as f64); // Hilbert
    /// assert_eq!(h[(2, 2)], 0.2);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A column copied out as a `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix–vector product `A·x` into a caller-owned buffer (cleared and
    /// resized in place; no allocation once the buffer is at capacity).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut Vec<f64>) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        y.clear();
        y.resize(self.rows, 0.0);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
    }

    /// Transposed matrix–vector product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn mul_vec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows,
            "dimension mismatch in mul_vec_transposed"
        );
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            for (yj, a) in y.iter_mut().zip(row) {
                *yj += a * x[i];
            }
        }
        y
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Induced 1-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Induced ∞-norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotSquare`] for non-square matrices.
    pub fn trace(&self) -> Result<f64, NumericError> {
        if !self.is_square() {
            return Err(NumericError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, k: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_in_place(k);
        m
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Extracts the square submatrix with the given row/column index set.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(row_idx.len(), col_idx.len());
        for (i, &ri) in row_idx.iter().enumerate() {
            for (j, &cj) in col_idx.iter().enumerate() {
                m[(i, j)] = self[(ri, cj)];
            }
        }
        m
    }

    /// `true` if `self` and `other` agree entrywise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: stream through rhs rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += aik * r;
                }
            }
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, k: f64) -> Matrix {
        self.scaled(k)
    }
}

/// Vector helpers used throughout the workspace.
pub mod vecops {
    /// Euclidean norm.
    pub fn norm2(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// ∞-norm.
    pub fn norm_inf(v: &[f64]) -> f64 {
        v.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// `y ← y + k·x`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn axpy(k: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += k * xi;
        }
    }

    /// Elementwise difference `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(a.len(), b.len(), "sub length mismatch");
        a.iter().zip(b).map(|(x, y)| x - y).collect()
    }

    /// Scales a vector.
    pub fn scaled(v: &[f64], k: f64) -> Vec<f64> {
        v.iter().map(|x| x * k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::vecops::*;
    use super::*;

    #[test]
    fn constructors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i.trace().unwrap(), 3.0);

        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);

        let f = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(f[(1, 1)], 3.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent row lengths")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_identity_and_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(&a * &Matrix::identity(2), a);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matvec_products() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.mul_vec_transposed(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert_eq!(a.norm_frobenius(), 5.0);
        assert_eq!(a.norm_one(), 4.0);
        assert_eq!(a.norm_inf(), 4.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn row_swap() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        a.swap_rows(0, 2);
        assert_eq!(a.row(0), &[5.0, 6.0]);
        assert_eq!(a.row(2), &[1.0, 2.0]);
        a.swap_rows(1, 1); // no-op
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn submatrix_extraction() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.submatrix(&[1, 3], &[0, 2]);
        assert_eq!(s, Matrix::from_rows(&[&[4.0, 6.0], &[12.0, 14.0]]));
    }

    #[test]
    fn elementwise_and_assign_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let mut c = a.clone();
        c += &b;
        c -= &b;
        assert_eq!(c, a);
        assert_eq!((&a * 2.0)[(1, 1)], 8.0);
        assert_eq!((-&b)[(0, 0)], -1.0);
    }

    #[test]
    fn trace_non_square_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(a.trace().is_err());
    }

    #[test]
    fn vec_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        assert_eq!(sub(&[3.0, 5.0], &[1.0, 1.0]), vec![2.0, 4.0]);
        assert_eq!(scaled(&[1.0, -2.0], -2.0), vec![-2.0, 4.0]);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::identity(2);
        let mut b = a.clone();
        b[(0, 0)] += 1e-12;
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-14));
        assert!(!a.approx_eq(&Matrix::zeros(3, 3), 1.0));
    }
}
