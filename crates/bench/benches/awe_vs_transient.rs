//! The headline economics (paper §I: RC-tree methods run "faster than
//! 1000× the speed" of SPICE): AWE reduction vs a full tight-tolerance
//! transient simulation on the paper's circuits.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use awe::{AweEngine, AweOptions};
use awe_circuit::papers::{fig16, fig25, fig4};
use awe_circuit::Waveform;
use awe_sim::{simulate, TransientOptions};

fn bench_awe_vs_sim(c: &mut Criterion) {
    let step = || Waveform::step(0.0, 5.0);
    let cases = [
        ("fig4", fig4(step()), 8e-3, 2usize),
        ("fig16", fig16(step(), None), 6e-9, 3),
        ("fig25", fig25(step()), 2e-8, 4),
    ];

    let mut group = c.benchmark_group("awe_vs_transient");
    group.sample_size(10);

    for (name, p, t_stop, order) in cases {
        let engine = AweEngine::new(&p.circuit).expect("builds");
        let opts = AweOptions {
            error_estimate: false,
            ..AweOptions::default()
        };
        group.bench_function(format!("awe_{name}"), |b| {
            b.iter(|| {
                let a = engine
                    .approximate_with(black_box(p.output), order, opts)
                    .expect("approximation");
                black_box(a)
            })
        });
        group.bench_function(format!("transient_{name}"), |b| {
            b.iter(|| {
                let r =
                    simulate(black_box(&p.circuit), TransientOptions::new(t_stop)).expect("sim");
                black_box(r)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_awe_vs_sim);
criterion_main!(benches);
