//! Corner-sweep throughput on a power-grid mesh: cold per-corner
//! analysis (fresh engine, one corner, full symbolic factorization)
//! versus warm corners/sec inside one sweep, where every corner after
//! the donor replays the compiled stamp-program/lane tape.
//!
//! Writes `BENCH_sweep.json` at the workspace root: mesh size, cold and
//! warm per-corner wall times, the warm/cold speedup (gated ≥5× in full
//! mode), the symbolic-work ledger (`new_symbolic_after_donor` must be
//! zero), and a per-thread-count digest table proving byte-identical
//! sweep outcomes. Thread counts are *requested*; rows whose grant fell
//! short of the request are `"capped": true, "measured": false` and
//! carry no scaling claim.
//!
//! `AWE_BENCH_TINY=1` (or `--test`) shrinks the mesh for smoke runs; the
//! tiny mesh stays above the sparse threshold (192 unknowns) so the
//! pattern-cache/tape path is still the one being measured.

use std::fmt::Write as _;
use std::time::Instant;

use awe_batch::{pdn_design, sweep, BatchEngine, BatchOptions, CornerSpec, SweepRun};
use awe_circuit::pdn::PdnSpec;

fn opts(threads: usize) -> BatchOptions {
    BatchOptions {
        threads,
        ..BatchOptions::default()
    }
}

struct ThreadRow {
    requested: usize,
    granted: usize,
    digest: u64,
    corners_per_sec: f64,
}

fn main() {
    let tiny = std::env::var("AWE_BENCH_TINY").is_ok() || std::env::args().any(|a| a == "--test");
    // Full mode: 100×100 mesh + strap lattice = 10 401 nodes, the
    // ISSUE's ≥10k-node floor. Tiny: 15×15 = 242 nodes, still above the
    // sparse threshold.
    let (mesh, corners, cold_reps) = if tiny { (15, 4, 2) } else { (100, 8, 2) };
    let pdn = PdnSpec {
        strap_pitch: 5,
        ..PdnSpec::square(mesh)
    };
    let design = pdn_design(format!("pdn-{mesh}x{mesh}"), &pdn);
    let nodes = pdn.node_count();
    let spec = CornerSpec::new(corners, 0.05, 2711);
    println!(
        "pdn {mesh}x{mesh}: {nodes} nodes, {} taps, {corners} corners",
        pdn.taps
    );

    // Cold: a fresh engine analyzing ONE corner (all taps) — every run
    // pays parse-free corner generation plus the full symbolic factor.
    // Best-of-reps over distinct corners so no cache could help even in
    // principle.
    let mut cold_best = f64::MAX;
    for k in 0..cold_reps {
        let one = CornerSpec::new(1, 0.05, spec.seed.wrapping_add(k as u64));
        let engine = BatchEngine::new();
        let start = Instant::now();
        let run = sweep(&engine, &design, &one, &opts(1));
        let secs = start.elapsed().as_secs_f64();
        assert!(run.rejected.is_empty());
        assert_eq!(run.run.solves, design.nets().len());
        cold_best = cold_best.min(secs);
        println!("cold corner {k}: {secs:.3} s");
    }

    // Warm: one sweep over all corners; per-corner wall includes the
    // donor's symbolic work, so the speedup below is the honest
    // amortized number a caller sees.
    let engine = BatchEngine::new();
    let run = sweep(&engine, &design, &spec, &opts(1));
    assert!(run.rejected.is_empty());
    let warm_per_corner = run.run.wall.as_secs_f64() / corners as f64;
    assert_eq!(
        run.new_symbolic_after_donor, 0,
        "every corner after the donor must replay the cached pattern"
    );
    let speedup = cold_best / warm_per_corner;
    println!(
        "cold {cold_best:.3} s/corner, warm {warm_per_corner:.3} s/corner -> {speedup:.1}x \
         (new_symbolic {} / after donor {})",
        run.new_symbolic, run.new_symbolic_after_donor
    );
    if !tiny {
        assert!(
            speedup >= 5.0,
            "warm corners/sec must be >=5x cold per-corner analysis, got {speedup:.2}x"
        );
    }

    // Determinism table: the same sweep at 1/2/4 requested workers must
    // agree on the digest bit-for-bit. Run on a thread-check mesh small
    // enough to keep the bench bounded but still on the sparse path.
    let tdesign = if tiny {
        design.clone()
    } else {
        pdn_design("pdn-20x20", &PdnSpec::square(20))
    };
    let mut threads = Vec::new();
    for &t in &[1usize, 2, 4] {
        let engine = BatchEngine::new();
        let r = sweep(&engine, &tdesign, &spec, &opts(t));
        threads.push(ThreadRow {
            requested: t,
            granted: r.run.pool.threads,
            digest: r.digest(),
            corners_per_sec: r.corners_per_sec(),
        });
    }
    for row in &threads[1..] {
        assert_eq!(
            threads[0].digest, row.digest,
            "sweep digest must be identical at any thread count"
        );
    }
    println!("thread digests agree: {:016x}", threads[0].digest);

    write_json(
        &run,
        nodes,
        cold_best,
        warm_per_corner,
        speedup,
        &threads,
        tiny,
    );
}

fn write_json(
    run: &SweepRun,
    nodes: usize,
    cold: f64,
    warm: f64,
    speedup: f64,
    threads: &[ThreadRow],
    tiny: bool,
) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"sweep_corners\",");
    let _ = writeln!(out, "  \"tiny\": {tiny},");
    let _ = writeln!(out, "  \"pdn_nodes\": {nodes},");
    let _ = writeln!(out, "  \"taps\": {},", run.nodes.len());
    let _ = writeln!(out, "  \"corners\": {},", run.spec.corners);
    let _ = writeln!(out, "  \"sigma\": {},", run.spec.sigma);
    let _ = writeln!(out, "  \"seed\": {},", run.spec.seed);
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let _ = writeln!(out, "  \"cold_per_corner_s\": {cold:.6},");
    let _ = writeln!(out, "  \"warm_per_corner_s\": {warm:.6},");
    let _ = writeln!(out, "  \"warm_vs_cold_speedup\": {speedup:.2},");
    let _ = writeln!(out, "  \"new_symbolic\": {},", run.new_symbolic);
    let _ = writeln!(
        out,
        "  \"new_symbolic_after_donor\": {},",
        run.new_symbolic_after_donor
    );
    out.push_str("  \"threads\": [\n");
    for (i, t) in threads.iter().enumerate() {
        let comma = if i + 1 < threads.len() { "," } else { "" };
        let capped = t.granted < t.requested;
        // Same capped-row contract as BENCH_batch.json: a row that did
        // not get its requested workers makes no scaling claim.
        let _ = writeln!(
            out,
            "    {{\"requested_threads\": {}, \"granted_threads\": {}, \"capped\": {capped}, \
             \"measured\": {}, \"digest\": \"{:016x}\", \"corners_per_sec\": {:.3}}}{comma}",
            t.requested, t.granted, !capped, t.digest, t.corners_per_sec,
        );
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
