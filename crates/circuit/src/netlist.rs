//! The circuit netlist: named nodes plus a list of elements.

use std::collections::HashMap;
use std::fmt;

use crate::element::{Element, NodeId, GROUND};
use crate::waveform::Waveform;

/// Errors arising while building or validating a circuit.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// An element value was non-positive where positivity is required.
    NonPositiveValue {
        /// Element name.
        element: String,
        /// The offending value.
        value: f64,
    },
    /// Duplicate element name.
    DuplicateName(String),
    /// An element references a node id that was never created.
    UnknownNode {
        /// Element name.
        element: String,
        /// The missing node id.
        node: NodeId,
    },
    /// A controlled source references a controlling element that does not
    /// exist or is not a voltage source.
    UnknownControl {
        /// Element name.
        element: String,
        /// Name of the missing controlling source.
        control: String,
    },
    /// Both terminals of an element are the same node.
    ShortedElement(String),
    /// Parse error from the deck parser, with 1-based line number.
    Parse {
        /// Line number in the deck.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An edit referenced an element that does not exist.
    NoSuchElement(String),
    /// An element cannot be removed because a current-controlled source
    /// still references it.
    ControlInUse {
        /// The element being removed.
        element: String,
        /// The F/H source that controls through it.
        dependent: String,
    },
    /// An edit targeted an element kind it does not apply to (e.g.
    /// resizing a voltage source or re-sourcing a resistor).
    WrongKind {
        /// Element name.
        element: String,
        /// What the edit expected.
        expected: &'static str,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::NonPositiveValue { element, value } => {
                write!(f, "element {element} has non-positive value {value}")
            }
            CircuitError::DuplicateName(name) => {
                write!(f, "duplicate element name {name}")
            }
            CircuitError::UnknownNode { element, node } => {
                write!(f, "element {element} references unknown node {node}")
            }
            CircuitError::UnknownControl { element, control } => {
                write!(
                    f,
                    "element {element} references unknown controlling source {control}"
                )
            }
            CircuitError::ShortedElement(name) => {
                write!(f, "element {name} has both terminals on the same node")
            }
            CircuitError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            CircuitError::NoSuchElement(name) => {
                write!(f, "no element named {name}")
            }
            CircuitError::ControlInUse { element, dependent } => {
                write!(
                    f,
                    "element {element} still controls {dependent}; remove {dependent} first"
                )
            }
            CircuitError::WrongKind { element, expected } => {
                write!(f, "element {element} is not {expected}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A linear(ized) RLC circuit: named nodes and a list of elements.
///
/// Node 0 is always ground (named `"0"`). Construction goes through the
/// builder-style `add_*` methods, which validate values eagerly
/// (C-VALIDATE) so downstream analyses can assume well-formed data.
///
/// # Examples
///
/// Build the simplest RC stage and inspect it:
///
/// ```
/// use awe_circuit::{Circuit, Waveform};
///
/// # fn main() -> Result<(), awe_circuit::CircuitError> {
/// let mut c = Circuit::new();
/// let n_in = c.node("in");
/// let n1 = c.node("n1");
/// c.add_vsource("V1", n_in, 0, Waveform::step(0.0, 5.0))?;
/// c.add_resistor("R1", n_in, n1, 1e3)?;
/// c.add_capacitor("C1", n1, 0, 1e-12)?;
/// assert_eq!(c.num_nodes(), 3); // ground, in, n1
/// assert_eq!(c.elements().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_id: HashMap<String, NodeId>,
    elements: Vec<Element>,
    element_names: HashMap<String, usize>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: Vec::new(),
            name_to_id: HashMap::new(),
            elements: Vec::new(),
            element_names: HashMap::new(),
        };
        let g = c.node("0");
        debug_assert_eq!(g, GROUND);
        c
    }

    /// Returns the id for a named node, creating it if necessary.
    /// The names `"0"`, `"gnd"` and `"GND"` all map to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let canonical = if name.eq_ignore_ascii_case("gnd") {
            "0"
        } else {
            name
        };
        if let Some(&id) = self.name_to_id.get(canonical) {
            return id;
        }
        let id = self.node_names.len();
        self.node_names.push(canonical.to_owned());
        self.name_to_id.insert(canonical.to_owned(), id);
        id
    }

    /// Looks up an existing node id by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        let canonical = if name.eq_ignore_ascii_case("gnd") {
            "0"
        } else {
            name
        };
        self.name_to_id.get(canonical).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id]
    }

    /// Total number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Finds an element by name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.element_names.get(name).map(|&i| &self.elements[i])
    }

    /// Iterator over elements of a given kind tag (`'R'`, `'C'`, …).
    pub fn elements_of_kind(&self, kind: char) -> impl Iterator<Item = &Element> {
        self.elements.iter().filter(move |e| e.kind() == kind)
    }

    /// Number of energy-storage elements (state variables before any
    /// degeneracy, i.e. the order `n` of the paper's eq. (4)).
    pub fn num_states(&self) -> usize {
        self.elements.iter().filter(|e| e.is_storage()).count()
    }

    fn check_common(
        &self,
        name: &str,
        nodes: &[NodeId],
        value: f64,
        require_positive: bool,
    ) -> Result<(), CircuitError> {
        if self.element_names.contains_key(name) {
            return Err(CircuitError::DuplicateName(name.to_owned()));
        }
        for &n in nodes {
            if n >= self.num_nodes() {
                return Err(CircuitError::UnknownNode {
                    element: name.to_owned(),
                    node: n,
                });
            }
        }
        if require_positive && value <= 0.0 {
            return Err(CircuitError::NonPositiveValue {
                element: name.to_owned(),
                value,
            });
        }
        Ok(())
    }

    fn push(&mut self, e: Element) {
        self.element_names
            .insert(e.name().to_owned(), self.elements.len());
        self.elements.push(e);
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names, unknown nodes, non-positive resistance, and
    /// shorted terminals.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<(), CircuitError> {
        self.check_common(name, &[a, b], ohms, true)?;
        if a == b {
            return Err(CircuitError::ShortedElement(name.to_owned()));
        }
        self.push(Element::Resistor {
            name: name.to_owned(),
            a,
            b,
            ohms,
        });
        Ok(())
    }

    /// Adds a capacitor with equilibrium initial condition.
    ///
    /// # Errors
    ///
    /// Same validation as [`Circuit::add_resistor`].
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<(), CircuitError> {
        self.add_capacitor_ic(name, a, b, farads, None)
    }

    /// Adds a capacitor, optionally with a nonequilibrium initial voltage
    /// (paper §5.2).
    ///
    /// # Errors
    ///
    /// Same validation as [`Circuit::add_resistor`].
    pub fn add_capacitor_ic(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
        initial_voltage: Option<f64>,
    ) -> Result<(), CircuitError> {
        self.check_common(name, &[a, b], farads, true)?;
        if a == b {
            return Err(CircuitError::ShortedElement(name.to_owned()));
        }
        self.push(Element::Capacitor {
            name: name.to_owned(),
            a,
            b,
            farads,
            initial_voltage,
        });
        Ok(())
    }

    /// Adds an inductor with equilibrium initial current.
    ///
    /// # Errors
    ///
    /// Same validation as [`Circuit::add_resistor`].
    pub fn add_inductor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        henries: f64,
    ) -> Result<(), CircuitError> {
        self.add_inductor_ic(name, a, b, henries, None)
    }

    /// Adds an inductor, optionally with a nonequilibrium initial current.
    ///
    /// # Errors
    ///
    /// Same validation as [`Circuit::add_resistor`].
    pub fn add_inductor_ic(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        henries: f64,
        initial_current: Option<f64>,
    ) -> Result<(), CircuitError> {
        self.check_common(name, &[a, b], henries, true)?;
        if a == b {
            return Err(CircuitError::ShortedElement(name.to_owned()));
        }
        self.push(Element::Inductor {
            name: name.to_owned(),
            a,
            b,
            henries,
            initial_current,
        });
        Ok(())
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and unknown nodes.
    pub fn add_vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: Waveform,
    ) -> Result<(), CircuitError> {
        self.check_common(name, &[pos, neg], 1.0, false)?;
        self.push(Element::VoltageSource {
            name: name.to_owned(),
            pos,
            neg,
            waveform,
        });
        Ok(())
    }

    /// Adds an independent current source.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and unknown nodes.
    pub fn add_isource(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        waveform: Waveform,
    ) -> Result<(), CircuitError> {
        self.check_common(name, &[from, to], 1.0, false)?;
        self.push(Element::CurrentSource {
            name: name.to_owned(),
            from,
            to,
            waveform,
        });
        Ok(())
    }

    /// Adds a voltage-controlled current source (`G` element).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and unknown nodes.
    pub fn add_vccs(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        cpos: NodeId,
        cneg: NodeId,
        gm: f64,
    ) -> Result<(), CircuitError> {
        self.check_common(name, &[from, to, cpos, cneg], 1.0, false)?;
        self.push(Element::Vccs {
            name: name.to_owned(),
            from,
            to,
            cpos,
            cneg,
            gm,
        });
        Ok(())
    }

    /// Adds a voltage-controlled voltage source (`E` element).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and unknown nodes.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        cpos: NodeId,
        cneg: NodeId,
        gain: f64,
    ) -> Result<(), CircuitError> {
        self.check_common(name, &[pos, neg, cpos, cneg], 1.0, false)?;
        self.push(Element::Vcvs {
            name: name.to_owned(),
            pos,
            neg,
            cpos,
            cneg,
            gain,
        });
        Ok(())
    }

    /// Adds a current-controlled current source (`F` element). The
    /// controlling element must be an existing voltage source.
    ///
    /// # Errors
    ///
    /// Additionally rejects a missing or non-V controlling element.
    pub fn add_cccs(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        control: &str,
        gain: f64,
    ) -> Result<(), CircuitError> {
        self.check_common(name, &[from, to], 1.0, false)?;
        self.check_control(name, control)?;
        self.push(Element::Cccs {
            name: name.to_owned(),
            from,
            to,
            control: control.to_owned(),
            gain,
        });
        Ok(())
    }

    /// Adds a current-controlled voltage source (`H` element). The
    /// controlling element must be an existing voltage source.
    ///
    /// # Errors
    ///
    /// Additionally rejects a missing or non-V controlling element.
    pub fn add_ccvs(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        control: &str,
        r: f64,
    ) -> Result<(), CircuitError> {
        self.check_common(name, &[pos, neg], 1.0, false)?;
        self.check_control(name, control)?;
        self.push(Element::Ccvs {
            name: name.to_owned(),
            pos,
            neg,
            control: control.to_owned(),
            r,
        });
        Ok(())
    }

    fn check_control(&self, name: &str, control: &str) -> Result<(), CircuitError> {
        match self.element(control) {
            Some(Element::VoltageSource { .. }) => Ok(()),
            _ => Err(CircuitError::UnknownControl {
                element: name.to_owned(),
                control: control.to_owned(),
            }),
        }
    }

    /// Removes the element named `name` (an ECO-style edit), returning it.
    ///
    /// Nodes the element referenced stay in the circuit even if nothing
    /// else touches them — node ids are stable across edits.
    ///
    /// # Errors
    ///
    /// [`CircuitError::NoSuchElement`] if absent;
    /// [`CircuitError::ControlInUse`] if a current-controlled source (`F`
    /// or `H`) still names it as its controlling element.
    pub fn remove_element(&mut self, name: &str) -> Result<Element, CircuitError> {
        let idx = *self
            .element_names
            .get(name)
            .ok_or_else(|| CircuitError::NoSuchElement(name.to_owned()))?;
        if let Some(dependent) = self.elements.iter().find_map(|e| match e {
            Element::Cccs {
                name: dep, control, ..
            }
            | Element::Ccvs {
                name: dep, control, ..
            } if control == name => Some(dep.clone()),
            _ => None,
        }) {
            return Err(CircuitError::ControlInUse {
                element: name.to_owned(),
                dependent,
            });
        }
        self.element_names.remove(name);
        let removed = self.elements.remove(idx);
        // Indices after the removed slot shift down by one.
        for i in self.element_names.values_mut() {
            if *i > idx {
                *i -= 1;
            }
        }
        Ok(removed)
    }

    /// Resizes a passive or controlled-source element in place (an
    /// ECO-style value-only edit): R/C/L values, VCCS `gm`, VCVS gain,
    /// CCCS gain, CCVS transresistance. Topology (terminals, element
    /// kind, initial conditions) is untouched, so the circuit's sparsity
    /// pattern — and its symbolic LU — survive the edit.
    ///
    /// # Errors
    ///
    /// [`CircuitError::NoSuchElement`] if absent;
    /// [`CircuitError::WrongKind`] for independent sources (change their
    /// waveform with [`Circuit::set_source`]);
    /// [`CircuitError::NonPositiveValue`] for a non-positive R/C/L value.
    pub fn set_value(&mut self, name: &str, value: f64) -> Result<(), CircuitError> {
        let idx = *self
            .element_names
            .get(name)
            .ok_or_else(|| CircuitError::NoSuchElement(name.to_owned()))?;
        let positive = matches!(
            self.elements[idx],
            Element::Resistor { .. } | Element::Capacitor { .. } | Element::Inductor { .. }
        );
        if positive && value <= 0.0 {
            return Err(CircuitError::NonPositiveValue {
                element: name.to_owned(),
                value,
            });
        }
        match &mut self.elements[idx] {
            Element::Resistor { ohms, .. } => *ohms = value,
            Element::Capacitor { farads, .. } => *farads = value,
            Element::Inductor { henries, .. } => *henries = value,
            Element::Vccs { gm, .. } => *gm = value,
            Element::Vcvs { gain, .. } => *gain = value,
            Element::Cccs { gain, .. } => *gain = value,
            Element::Ccvs { r, .. } => *r = value,
            Element::VoltageSource { .. } | Element::CurrentSource { .. } => {
                return Err(CircuitError::WrongKind {
                    element: name.to_owned(),
                    expected: "a resizable element (R/C/L/G/E/F/H)",
                })
            }
        }
        Ok(())
    }

    /// Replaces the waveform of an independent V/I source in place (an
    /// ECO-style value-only edit — the MNA structure does not change).
    ///
    /// # Errors
    ///
    /// [`CircuitError::NoSuchElement`] if absent;
    /// [`CircuitError::WrongKind`] for anything but a V/I source.
    pub fn set_source(&mut self, name: &str, new_waveform: Waveform) -> Result<(), CircuitError> {
        let idx = *self
            .element_names
            .get(name)
            .ok_or_else(|| CircuitError::NoSuchElement(name.to_owned()))?;
        match &mut self.elements[idx] {
            Element::VoltageSource { waveform, .. } | Element::CurrentSource { waveform, .. } => {
                *waveform = new_waveform;
                Ok(())
            }
            _ => Err(CircuitError::WrongKind {
                element: name.to_owned(),
                expected: "an independent source (V/I)",
            }),
        }
    }

    /// Renders the circuit as a SPICE-like deck (one element per line).
    pub fn to_deck(&self) -> String {
        let mut out = String::new();
        for e in &self.elements {
            // Re-map ids to names for readability.
            let line = match e {
                Element::Resistor { name, a, b, ohms } => {
                    format!(
                        "{name} {} {} {ohms}",
                        self.node_name(*a),
                        self.node_name(*b)
                    )
                }
                Element::Capacitor {
                    name,
                    a,
                    b,
                    farads,
                    initial_voltage,
                } => {
                    let mut s = format!(
                        "{name} {} {} {farads}",
                        self.node_name(*a),
                        self.node_name(*b)
                    );
                    if let Some(ic) = initial_voltage {
                        s.push_str(&format!(" IC={ic}"));
                    }
                    s
                }
                Element::Inductor {
                    name,
                    a,
                    b,
                    henries,
                    initial_current,
                } => {
                    let mut s = format!(
                        "{name} {} {} {henries}",
                        self.node_name(*a),
                        self.node_name(*b)
                    );
                    if let Some(ic) = initial_current {
                        s.push_str(&format!(" IC={ic}"));
                    }
                    s
                }
                Element::VoltageSource {
                    name,
                    pos,
                    neg,
                    waveform,
                } => format!(
                    "{name} {} {} {waveform}",
                    self.node_name(*pos),
                    self.node_name(*neg)
                ),
                Element::CurrentSource {
                    name,
                    from,
                    to,
                    waveform,
                } => format!(
                    "{name} {} {} {waveform}",
                    self.node_name(*from),
                    self.node_name(*to)
                ),
                other => other.to_string(),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(".end\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_stage() -> Circuit {
        let mut c = Circuit::new();
        let n_in = c.node("in");
        let n1 = c.node("n1");
        c.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 5.0))
            .unwrap();
        c.add_resistor("R1", n_in, n1, 1e3).unwrap();
        c.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
        c
    }

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), GROUND);
        assert_eq!(c.node("gnd"), GROUND);
        assert_eq!(c.node("GND"), GROUND);
        assert_eq!(c.find_node("Gnd"), Some(GROUND));
        assert_eq!(c.num_nodes(), 1);
    }

    #[test]
    fn node_creation_and_lookup() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.find_node("missing"), None);
    }

    #[test]
    fn builds_rc_stage() {
        let c = rc_stage();
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.elements().len(), 3);
        assert_eq!(c.num_states(), 1);
        assert!(c.element("R1").is_some());
        assert!(c.element("X9").is_none());
        assert_eq!(c.elements_of_kind('C').count(), 1);
    }

    #[test]
    fn rejects_bad_values() {
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        assert!(matches!(
            c.add_resistor("R1", n1, GROUND, 0.0),
            Err(CircuitError::NonPositiveValue { .. })
        ));
        assert!(matches!(
            c.add_capacitor("C1", n1, GROUND, -1e-12),
            Err(CircuitError::NonPositiveValue { .. })
        ));
        assert!(matches!(
            c.add_inductor("L1", n1, GROUND, 0.0),
            Err(CircuitError::NonPositiveValue { .. })
        ));
    }

    #[test]
    fn rejects_duplicates_and_shorts() {
        let mut c = rc_stage();
        let n1 = c.find_node("n1").unwrap();
        assert!(matches!(
            c.add_resistor("R1", n1, GROUND, 1.0),
            Err(CircuitError::DuplicateName(_))
        ));
        assert!(matches!(
            c.add_resistor("R2", n1, n1, 1.0),
            Err(CircuitError::ShortedElement(_))
        ));
    }

    #[test]
    fn rejects_unknown_nodes() {
        let mut c = Circuit::new();
        assert!(matches!(
            c.add_resistor("R1", 5, GROUND, 1.0),
            Err(CircuitError::UnknownNode { node: 5, .. })
        ));
    }

    #[test]
    fn controlled_sources() {
        let mut c = rc_stage();
        let n1 = c.find_node("n1").unwrap();
        let n_in = c.find_node("in").unwrap();
        c.add_vccs("G1", n1, GROUND, n_in, GROUND, 1e-3).unwrap();
        let n_out = c.node("out");
        c.add_vcvs("E1", n_out, GROUND, n1, GROUND, 2.0).unwrap();
        c.add_cccs("F1", n1, GROUND, "V1", 0.5).unwrap();
        let n_h = c.node("h");
        c.add_ccvs("H1", n_h, GROUND, "V1", 10.0).unwrap();
        assert_eq!(c.elements().len(), 7);
        // Controlling element must be a V source.
        assert!(matches!(
            c.add_cccs("F2", n1, GROUND, "R1", 1.0),
            Err(CircuitError::UnknownControl { .. })
        ));
        assert!(matches!(
            c.add_ccvs("H2", n1, GROUND, "Vmissing", 1.0),
            Err(CircuitError::UnknownControl { .. })
        ));
    }

    #[test]
    fn deck_rendering() {
        let c = rc_stage();
        let deck = c.to_deck();
        assert!(deck.contains("R1 in n1 1000"));
        assert!(deck.contains("C1 n1 0"));
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    fn error_display() {
        let e = CircuitError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error on line 3: bad token");
        assert_eq!(
            CircuitError::NoSuchElement("R9".into()).to_string(),
            "no element named R9"
        );
    }

    #[test]
    fn remove_element_edits() {
        let mut c = rc_stage();
        let gone = c.remove_element("C1").unwrap();
        assert_eq!(gone.name(), "C1");
        assert!(c.element("C1").is_none());
        assert_eq!(c.elements().len(), 2);
        // Name→index map re-aligned after the shift: lookups still work
        // and the freed name is reusable.
        let n1 = c.find_node("n1").unwrap();
        assert!(matches!(c.element("R1"), Some(Element::Resistor { .. })));
        c.add_capacitor("C1", n1, GROUND, 2e-12).unwrap();
        assert!(c.element("C1").is_some());
        assert!(matches!(
            c.remove_element("X9"),
            Err(CircuitError::NoSuchElement(_))
        ));
    }

    #[test]
    fn remove_element_respects_control_dependencies() {
        let mut c = rc_stage();
        let n1 = c.find_node("n1").unwrap();
        c.add_cccs("F1", n1, GROUND, "V1", 0.5).unwrap();
        assert!(matches!(
            c.remove_element("V1"),
            Err(CircuitError::ControlInUse { element, dependent })
                if element == "V1" && dependent == "F1"
        ));
        // Dependent first, then the controlling source.
        c.remove_element("F1").unwrap();
        c.remove_element("V1").unwrap();
        assert_eq!(c.elements().len(), 2);
    }

    #[test]
    fn set_value_edits() {
        let mut c = rc_stage();
        c.set_value("R1", 2.2e3).unwrap();
        assert!(matches!(
            c.element("R1"),
            Some(Element::Resistor { ohms, .. }) if *ohms == 2.2e3
        ));
        assert!(matches!(
            c.set_value("R1", 0.0),
            Err(CircuitError::NonPositiveValue { .. })
        ));
        assert!(matches!(
            c.set_value("V1", 3.0),
            Err(CircuitError::WrongKind { .. })
        ));
        assert!(matches!(
            c.set_value("X9", 1.0),
            Err(CircuitError::NoSuchElement(_))
        ));
    }

    #[test]
    fn set_source_edits() {
        let mut c = rc_stage();
        c.set_source("V1", Waveform::step(0.0, 3.3)).unwrap();
        assert!(matches!(
            c.element("V1"),
            Some(Element::VoltageSource { waveform, .. }) if waveform.final_value() == 3.3
        ));
        assert!(matches!(
            c.set_source("R1", Waveform::dc(1.0)),
            Err(CircuitError::WrongKind { .. })
        ));
    }
}
