//! Sparse matrices in compressed-sparse-column (CSC) form.
//!
//! MNA conductance matrices are extremely sparse — a handful of entries
//! per row regardless of circuit size — and the paper's cost model
//! (factor once, resubstitute per moment, §3.2) only delivers its `O(n)`
//! promise when the factorization respects that sparsity. This module
//! provides the storage type; [`crate::sparse_lu`] provides the
//! left-looking LU.

use crate::error::NumericError;
use crate::matrix::Matrix;

/// A sparse matrix in compressed-sparse-column form.
///
/// # Examples
///
/// ```
/// use awe_numeric::SparseMatrix;
///
/// // [2 0; 1 3] from triplets (duplicates sum).
/// let m = SparseMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 2.0), (1, 1, 1.0)]);
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![2.0, 4.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Column pointers: entries of column `j` live at
    /// `indices/values[col_ptr[j]..col_ptr[j+1]]`, rows sorted ascending.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds from `(row, col, value)` triplets; duplicate coordinates are
    /// summed, exact zeros (after summing) are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
        }
        // Count, bucket, sort within columns, sum duplicates.
        let mut per_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); cols];
        for &(r, c, v) in triplets {
            per_col[c].push((r, v));
        }
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        col_ptr.push(0);
        for col in &mut per_col {
            col.sort_by_key(|e| e.0);
            let mut k = 0;
            while k < col.len() {
                let row = col[k].0;
                let mut acc = 0.0;
                while k < col.len() && col[k].0 == row {
                    acc += col[k].1;
                    k += 1;
                }
                if acc != 0.0 {
                    row_idx.push(row);
                    values.push(acc);
                }
            }
            col_ptr.push(row_idx.len());
        }
        SparseMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut triplets = Vec::new();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let v = m[(i, j)];
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        SparseMatrix::from_triplets(m.rows(), m.cols(), &triplets)
    }

    /// Refills this matrix's values from a dense matrix that must have
    /// exactly this sparsity pattern, in place and allocation-free.
    ///
    /// Semantically equivalent to `*self = SparseMatrix::from_dense(m)`
    /// when the patterns agree — same row-major scan, so the stored value
    /// order matches a fresh conversion bit for bit. Returns `false`
    /// (leaving `self` partially updated — rebuild it from scratch) when
    /// `m`'s nonzero pattern differs, including the case where an entry
    /// that was structurally present now cancels to exact zero. This is
    /// the tape-replay fast path: structure-group members share a pattern,
    /// so re-deriving CSC structure per member is pure overhead.
    pub fn refill_from_dense(&mut self, m: &Matrix) -> bool {
        if m.rows() != self.rows || m.cols() != self.cols {
            return false;
        }
        for j in 0..self.cols {
            let mut k = self.col_ptr[j];
            let end = self.col_ptr[j + 1];
            for i in 0..self.rows {
                let v = m[(i, j)];
                if v != 0.0 {
                    if k == end || self.row_idx[k] != i {
                        return false;
                    }
                    self.values[k] = v;
                    k += 1;
                }
            }
            if k != end {
                return false;
            }
        }
        true
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                m[(self.row_idx[k], j)] = self.values[k];
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(row indices, values)` of one column.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        assert!(j < self.cols, "column out of range");
        let span = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_idx[span.clone()], &self.values[span])
    }

    /// Storage slot of entry `(row, col)`, or `None` if the coordinate is
    /// not structurally present. Binary search within the column, so a
    /// compiled stamp program can resolve every element contribution to a
    /// direct index into [`SparseMatrix::values_mut`] once and replay it
    /// with plain stores thereafter.
    pub fn slot_of(&self, row: usize, col: usize) -> Option<usize> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        let span = self.col_ptr[col]..self.col_ptr[col + 1];
        self.row_idx[span.clone()]
            .binary_search(&row)
            .ok()
            .map(|k| span.start + k)
    }

    /// The stored values, in CSC storage order (the order
    /// [`SparseMatrix::slot_of`] indexes).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values, in CSC storage order (the
    /// order [`SparseMatrix::slot_of`] indexes). The sparsity pattern is
    /// fixed; only magnitudes may change. Writing an exact zero is the
    /// caller's responsibility to avoid — a structural entry holding 0.0
    /// no longer round-trips through [`SparseMatrix::from_dense`].
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix–vector product `A·x` into a caller-owned output, so the
    /// moment recursion's steady state allocates nothing (`y` is cleared
    /// and resized; with sufficient capacity no allocation occurs).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut Vec<f64>) {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        y.clear();
        y.resize(self.rows, 0.0);
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                y[self.row_idx[k]] += self.values[k] * xj;
            }
        }
    }

    /// FNV-1a hash of the sparsity pattern (dimensions, column pointers,
    /// row indices — values excluded). Two matrices share a fingerprint
    /// exactly when they have byte-identical CSC structure, which is the
    /// precondition for numeric refactorization against a stored symbolic
    /// analysis.
    pub fn pattern_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fnv1a(h, self.rows as u64);
        h = fnv1a(h, self.cols as u64);
        for &p in &self.col_ptr {
            h = fnv1a(h, p as u64);
        }
        for &r in &self.row_idx {
            h = fnv1a(h, r as u64);
        }
        h
    }

    /// Symmetric permutation `P·A·Pᵀ`: entry `(i, j)` moves to
    /// `(perm_new_of_old[i], perm_new_of_old[j])`.
    ///
    /// # Panics
    ///
    /// Panics unless the matrix is square and `perm` is a permutation of
    /// `0..n`.
    pub fn permute_symmetric(&self, new_of_old: &[usize]) -> SparseMatrix {
        assert_eq!(self.rows, self.cols, "square required");
        assert_eq!(new_of_old.len(), self.rows, "permutation length");
        let mut seen = vec![false; self.rows];
        for &p in new_of_old {
            assert!(p < self.rows && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut triplets = Vec::with_capacity(self.nnz());
        for j in 0..self.cols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                triplets.push((new_of_old[self.row_idx[k]], new_of_old[j], self.values[k]));
            }
        }
        SparseMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// Reverse Cuthill–McKee ordering of the symmetrized sparsity pattern
    /// — a classic bandwidth/fill-reducing permutation for the tree- and
    /// mesh-like structures circuit matrices have. Returns `new_of_old`.
    ///
    /// # Errors
    ///
    /// [`NumericError::NotSquare`] for non-square matrices.
    pub fn rcm_ordering(&self) -> Result<Vec<usize>, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        // Symmetrized adjacency (pattern of A + Aᵀ, sans diagonal).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                let i = self.row_idx[k];
                if i != j {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Process components, starting each from a minimum-degree node.
        loop {
            let start = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree[v]);
            let Some(start) = start else { break };
            let mut queue = std::collections::VecDeque::new();
            visited[start] = true;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                let mut nbrs: Vec<usize> =
                    adj[u].iter().copied().filter(|&v| !visited[v]).collect();
                nbrs.sort_by_key(|&v| degree[v]);
                for v in nbrs {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
        // Reverse for RCM; convert old-order list to new_of_old.
        order.reverse();
        let mut new_of_old = vec![0usize; n];
        for (new, &old) in order.iter().enumerate() {
            new_of_old[old] = new;
        }
        Ok(new_of_old)
    }
}

/// One FNV-1a step over the eight bytes of `v`.
fn fnv1a(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_and_drop_zeros() {
        let m = SparseMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 0, 2.0),
                (1, 1, 5.0),
                (1, 1, -5.0),
                (2, 0, 4.0),
            ],
        );
        assert_eq!(m.nnz(), 2); // (0,0)=3 and (2,0)=4; (1,1) cancelled
        let d = m.to_dense();
        assert_eq!(d[(0, 0)], 3.0);
        assert_eq!(d[(1, 1)], 0.0);
        assert_eq!(d[(2, 0)], 4.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn triplets_validate_range() {
        let _ = SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn dense_round_trip() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let d = Matrix::from_fn(5, 5, |i, j| {
            if (i + 2 * j) % 3 == 0 {
                (i + j + 1) as f64
            } else {
                0.0
            }
        });
        let s = SparseMatrix::from_dense(&d);
        let x = [1.0, -2.0, 0.5, 3.0, -1.0];
        assert_eq!(s.mul_vec(&x), d.mul_vec(&x));
    }

    #[test]
    fn column_access() {
        let m = SparseMatrix::from_triplets(3, 2, &[(0, 1, 7.0), (2, 1, 9.0)]);
        let (rows, vals) = m.col(1);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[7.0, 9.0]);
        let (rows0, _) = m.col(0);
        assert!(rows0.is_empty());
    }

    #[test]
    fn symmetric_permutation() {
        let d = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]);
        let s = SparseMatrix::from_dense(&d);
        // Swap 0 and 2.
        let p = s.permute_symmetric(&[2, 1, 0]).to_dense();
        assert_eq!(p[(2, 2)], 1.0);
        assert_eq!(p[(2, 1)], 2.0);
        assert_eq!(p[(0, 2)], 4.0);
        assert_eq!(p[(0, 0)], 5.0);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_a_path() {
        // A path graph numbered badly: 0-4-1-3-2 chain.
        let edges = [(0usize, 4usize), (4, 1), (1, 3), (3, 2)];
        let mut t = Vec::new();
        for &(a, b) in &edges {
            t.push((a, b, 1.0));
            t.push((b, a, 1.0));
        }
        for i in 0..5 {
            t.push((i, i, 4.0));
        }
        let s = SparseMatrix::from_triplets(5, 5, &t);
        let perm = s.rcm_ordering().unwrap();
        let p = s.permute_symmetric(&perm);
        // Bandwidth of the permuted matrix should be 1 (a path renumbered
        // consecutively).
        let d = p.to_dense();
        let mut bw = 0usize;
        for i in 0..5 {
            for j in 0..5 {
                if d[(i, j)] != 0.0 {
                    bw = bw.max(i.abs_diff(j));
                }
            }
        }
        assert_eq!(bw, 1, "permuted matrix should be tridiagonal");
    }

    #[test]
    fn fingerprint_tracks_structure_not_values() {
        let a = SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0)]);
        let same_structure =
            SparseMatrix::from_triplets(3, 3, &[(0, 0, 9.0), (1, 1, -4.0), (2, 0, 0.5)]);
        let different = SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 2.0), (2, 1, 3.0)]);
        assert_eq!(
            a.pattern_fingerprint(),
            same_structure.pattern_fingerprint()
        );
        assert_ne!(a.pattern_fingerprint(), different.pattern_fingerprint());
        // Dimensions participate even with identical entry lists.
        let wider = SparseMatrix::from_triplets(3, 4, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0)]);
        assert_ne!(a.pattern_fingerprint(), wider.pattern_fingerprint());
    }

    #[test]
    fn mul_vec_into_matches_and_reuses_capacity() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]);
        let s = SparseMatrix::from_dense(&d);
        let x = [1.0, -2.0, 0.5];
        let mut y = Vec::with_capacity(8);
        let cap = y.capacity();
        s.mul_vec_into(&x, &mut y);
        assert_eq!(y, s.mul_vec(&x));
        assert_eq!(y.capacity(), cap, "reused buffer must not reallocate");
        // Stale contents are overwritten on reuse.
        s.mul_vec_into(&[0.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    fn refill_from_dense_matches_fresh_conversion() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]);
        let mut s = SparseMatrix::from_dense(&d);
        let d2 = Matrix::from_rows(&[&[9.0, 0.0, 8.0], &[0.0, 7.0, 0.0], &[6.0, 0.0, 5.5]]);
        assert!(s.refill_from_dense(&d2));
        assert_eq!(s, SparseMatrix::from_dense(&d2));
        // New fill rejected.
        let grew = Matrix::from_rows(&[&[9.0, 1.0, 8.0], &[0.0, 7.0, 0.0], &[6.0, 0.0, 5.5]]);
        assert!(!s.refill_from_dense(&grew));
        // A structural entry cancelling to exact zero is also a pattern
        // change (from_dense would drop it).
        let mut s2 = SparseMatrix::from_dense(&d);
        let shrank = Matrix::from_rows(&[&[9.0, 0.0, 8.0], &[0.0, 0.0, 0.0], &[6.0, 0.0, 5.5]]);
        assert!(!s2.refill_from_dense(&shrank));
        // Dimension changes rejected outright.
        let mut s3 = SparseMatrix::from_dense(&d);
        assert!(!s3.refill_from_dense(&Matrix::zeros(2, 2)));
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        let s = SparseMatrix::from_triplets(
            4,
            4,
            &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)],
        );
        let perm = s.rcm_ordering().unwrap();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
