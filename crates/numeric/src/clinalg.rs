//! Dense complex linear systems.
//!
//! The residue-determining systems of the paper — the Vandermonde system of
//! eq. (20) and its confluent variant for repeated poles, eq. (29) — have
//! *complex* coefficients whenever the approximating poles are complex
//! (underdamped RLC interconnect, §5.4). The orders involved are tiny
//! (`q ≤ 8` in practice), so straightforward Gaussian elimination with
//! partial pivoting over [`Complex`] is both adequate and robust.

use crate::complex::Complex;
use crate::error::NumericError;

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use awe_numeric::{CMatrix, Complex};
///
/// let mut m = CMatrix::zeros(2, 2);
/// m[(0, 0)] = Complex::ONE;
/// m[(1, 1)] = Complex::new(0.0, 1.0);
/// assert_eq!(m[(1, 1)].im, 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows × cols` complex matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` complex identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self[(i, j)] * x[j])
                    .fold(Complex::ZERO, |a, b| a + b)
            })
            .collect()
    }

    /// Solves `A·x = b` by Gaussian elimination with partial pivoting
    /// (pivot by magnitude). Consumes a copy of the matrix.
    ///
    /// # Errors
    ///
    /// * [`NumericError::NotSquare`] if the matrix is not square.
    /// * [`NumericError::DimensionMismatch`] if `b` has the wrong length.
    /// * [`NumericError::Singular`] on a zero pivot.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        let mut a = self.clone();
        let mut x = b.to_vec();

        for k in 0..n {
            // Partial pivot by magnitude.
            let mut p = k;
            let mut pmax = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 {
                return Err(NumericError::Singular { pivot: k });
            }
            if p != k {
                for j in k..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
                x.swap(k, p);
            }
            let pivot = a[(k, k)];
            for i in (k + 1)..n {
                let m = a[(i, k)] / pivot;
                if m.abs() == 0.0 {
                    continue;
                }
                a[(i, k)] = Complex::ZERO;
                for j in (k + 1)..n {
                    let akj = a[(k, j)];
                    a[(i, j)] -= m * akj;
                }
                let xk = x[k];
                x[i] -= m * xk;
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= a[(i, j)] * x[j];
            }
            x[i] = acc / a[(i, i)];
        }
        Ok(x)
    }

    /// [`CMatrix::solve`] with row/column equilibration: rows and columns
    /// are brought to unit inf-norm by exact powers of two (no rounding
    /// introduced) before elimination, and the solution is unscaled on the
    /// way out. Residue (Vandermonde/confluent) systems in reciprocal
    /// poles have rows that shrink geometrically with the moment index;
    /// equilibration keeps the partial-pivot choices meaningful there.
    ///
    /// # Errors
    ///
    /// Identical to [`CMatrix::solve`].
    pub fn solve_equilibrated(&self, b: &[Complex]) -> Result<Vec<Complex>, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        let pow2 = |v: f64| -> f64 {
            if v > 0.0 && v.is_finite() {
                (-v.log2().floor()).exp2()
            } else {
                1.0
            }
        };
        let r: Vec<f64> = (0..n)
            .map(|i| pow2((0..n).map(|j| self[(i, j)].abs()).fold(0.0, f64::max)))
            .collect();
        let c: Vec<f64> = (0..n)
            .map(|j| {
                pow2(
                    (0..n)
                        .map(|i| r[i] * self[(i, j)].abs())
                        .fold(0.0, f64::max),
                )
            })
            .collect();
        let scaled = CMatrix::from_fn(n, n, |i, j| self[(i, j)] * Complex::real(r[i] * c[j]));
        let rb: Vec<Complex> = b
            .iter()
            .zip(&r)
            .map(|(v, ri)| *v * Complex::real(*ri))
            .collect();
        let y = scaled.solve(&rb)?;
        Ok(y.into_iter()
            .zip(&c)
            .map(|(v, cj)| v * Complex::real(*cj))
            .collect())
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn solve_real_system_embedded() {
        let a = CMatrix::from_fn(2, 2, |i, j| Complex::real([[2.0, 1.0], [1.0, 3.0]][i][j]));
        let x = a.solve(&[Complex::real(3.0), Complex::real(4.0)]).unwrap();
        assert!((x[0] - Complex::ONE).abs() < 1e-13);
        assert!((x[1] - Complex::ONE).abs() < 1e-13);
    }

    #[test]
    fn solve_complex_system() {
        // [ 1+j  2 ] [x0]   [ 3+j  ]
        // [ 0    j ] [x1] = [ 2j   ]  → x1 = 2, x0 = (3+j-4)/(1+j)
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = c(1.0, 1.0);
        a[(0, 1)] = c(2.0, 0.0);
        a[(1, 1)] = c(0.0, 1.0);
        let b = [c(3.0, 1.0), c(0.0, 2.0)];
        let x = a.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((*ri - *bi).abs() < 1e-13);
        }
        assert!((x[1] - c(2.0, 0.0)).abs() < 1e-13);
    }

    #[test]
    fn pivoting_required() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 1)] = Complex::ONE;
        a[(1, 0)] = Complex::ONE;
        let x = a.solve(&[c(5.0, 0.0), c(7.0, 0.0)]).unwrap();
        assert!((x[0] - c(7.0, 0.0)).abs() < 1e-15);
        assert!((x[1] - c(5.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn singular_detected() {
        let a = CMatrix::zeros(2, 2);
        assert!(matches!(
            a.solve(&[Complex::ZERO, Complex::ZERO]),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn shape_errors() {
        let a = CMatrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[Complex::ZERO; 2]),
            Err(NumericError::NotSquare { .. })
        ));
        let b = CMatrix::identity(3);
        assert!(matches!(
            b.solve(&[Complex::ZERO; 2]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_complex_round_trip() {
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [1usize, 3, 6, 10] {
            let a = CMatrix::from_fn(n, n, |i, j| {
                c(next() + if i == j { 3.0 } else { 0.0 }, next())
            });
            let b: Vec<Complex> = (0..n).map(|_| c(next(), next())).collect();
            let x = a.solve(&b).unwrap();
            let r = a.mul_vec(&x);
            for (ri, bi) in r.iter().zip(&b) {
                assert!((*ri - *bi).abs() < 1e-10, "residual too large for n={n}");
            }
        }
    }
}
