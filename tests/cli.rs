//! Integration tests for the `awesim` command-line tool, driving the real
//! binary via `CARGO_BIN_EXE`.

use std::io::Write;
use std::process::Command;

fn awesim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_awesim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_deck(content: &str) -> tempfile::NamedTempPath {
    tempfile::NamedTempPath::new(content)
}

/// Minimal self-contained temp-file helper (no external crates).
mod tempfile {
    use std::path::PathBuf;

    pub struct NamedTempPath(PathBuf);

    impl NamedTempPath {
        pub fn new(content: &str) -> Self {
            let mut path = std::env::temp_dir();
            let unique = format!(
                "awesim-test-{}-{:?}.sp",
                std::process::id(),
                std::thread::current().id()
            );
            path.push(unique);
            std::fs::write(&path, content).expect("temp write");
            NamedTempPath(path)
        }

        pub fn as_str(&self) -> &str {
            self.0.to_str().expect("utf8 path")
        }
    }

    impl Drop for NamedTempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

const DECK: &str = "V1 in 0 STEP 0 5
Rdrv in n1 100
C1 n1 0 1p
Rw n1 out 200
Cout out 0 0.5p
.end
";

#[test]
fn check_reports_topology() {
    let deck = write_deck(DECK);
    let (ok, stdout, _) = awesim(&["check", deck.as_str()]);
    assert!(ok);
    assert!(stdout.contains("is RC tree: true"));
    assert!(stdout.contains("states (C + L): 2"));
}

#[test]
fn analyze_prints_poles_and_delay() {
    let deck = write_deck(DECK);
    let (ok, stdout, _) = awesim(&[
        "analyze",
        deck.as_str(),
        "--node",
        "out",
        "--order",
        "2",
        "--threshold",
        "4.0",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("order: 2"));
    assert!(stdout.contains("stable: true"));
    assert!(stdout.contains("50% delay:"));
    assert!(stdout.contains("4 V threshold:"));
    // Two poles listed.
    assert_eq!(stdout.matches("rad/s").count(), 2, "{stdout}");
}

#[test]
fn analyze_auto_escalates() {
    let deck = write_deck(DECK);
    let (ok, stdout, _) = awesim(&["analyze", deck.as_str(), "--node", "out", "--auto", "0.001"]);
    assert!(ok);
    assert!(stdout.contains("auto order selection"));
    assert!(stdout.contains("q=1"));
}

#[test]
fn poles_and_elmore_agree_with_analyze() {
    let deck = write_deck(DECK);
    let (ok, poles_out, _) = awesim(&["poles", deck.as_str()]);
    assert!(ok);
    assert!(poles_out.contains("2 natural frequencies"));
    let (ok, elmore_out, _) = awesim(&["elmore", deck.as_str()]);
    assert!(ok);
    assert!(elmore_out.contains("out"));
    assert!(elmore_out.contains("T_D"));
}

#[test]
fn sim_prints_waveform() {
    let deck = write_deck(DECK);
    let (ok, stdout, _) = awesim(&[
        "sim",
        deck.as_str(),
        "--node",
        "out",
        "--tstop",
        "2e-9",
        "--samples",
        "4",
    ]);
    assert!(ok);
    assert!(stdout.lines().count() >= 6, "{stdout}");
    assert!(stdout.contains("50% delay:"));
}

#[test]
fn export_macromodel_round_trips() {
    let deck = write_deck(DECK);
    let (ok, text, _) = awesim(&["export", deck.as_str(), "--node", "out"]);
    assert!(ok);
    assert!(text.starts_with("awe-macromodel v1"));
    let model = awesim::core::macromodel::parse_pole_residue_text(&text).expect("parses");
    assert!((model.final_value() - 5.0).abs() < 1e-6);
    // PWL form too.
    let (ok, pwl, _) = awesim(&["export", deck.as_str(), "--node", "out", "--pwl", "8"]);
    assert!(ok);
    assert!(pwl.trim().starts_with("PWL("));
    assert!(pwl.trim().ends_with(')'));
}

#[test]
fn batch_parse_failure_names_deck_and_exits_nonzero() {
    // A multi-net deck whose second member is garbage: the run must fail
    // with the offending deck path on stderr, and must not dump usage
    // (the invocation was fine; the data was not).
    let deck = write_deck(
        "* NET good\n\
         V1 in 0 STEP 0 1\n\
         R1 in out 100\n\
         C1 out 0 1p\n\
         * NET bad\n\
         Q1 a b 1k\n",
    );
    let (ok, _, stderr) = awesim(&["batch", deck.as_str()]);
    assert!(!ok, "parse failure must exit nonzero");
    assert!(
        stderr.contains(deck.as_str()),
        "stderr must name the offending deck: {stderr}"
    );
    assert!(
        !stderr.contains("usage:"),
        "data errors must not dump usage: {stderr}"
    );
}

#[test]
fn batch_trace_and_metrics_flags_write_files() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("awesim-trace-{}.json", std::process::id()));
    let metrics = dir.join(format!("awesim-metrics-{}.json", std::process::id()));
    let (ok, stdout, stderr) = awesim(&[
        "batch",
        "--synthetic",
        "6",
        "--trace",
        trace.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("wrote trace"), "{stdout}");

    let t = std::fs::read_to_string(&trace).expect("trace written");
    // Chrome trace-event JSON array with thread metadata and complete
    // ("X") span events; the bench schema check does the deep validation.
    assert!(t.trim_start().starts_with('['), "not a JSON array");
    assert!(t.trim_end().ends_with(']'), "unterminated array");
    assert!(t.contains("\"ph\": \"M\""), "missing metadata events");
    assert!(t.contains("\"ph\": \"X\""), "missing span events");
    assert!(t.contains("thread_name"), "missing lane names");
    assert!(t.contains("batch.net"), "missing per-net spans");

    let m = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(m.contains("awe-obs-metrics-v1"), "{m}");
    assert!(m.contains("engine.solve"), "{m}");

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn errors_are_clean() {
    let (ok, _, stderr) = awesim(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));

    let (ok, _, stderr) = awesim(&["analyze", "/nonexistent/deck.sp", "--node", "x"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));

    let deck = write_deck(DECK);
    let (ok, _, stderr) = awesim(&["analyze", deck.as_str(), "--node", "missing"]);
    assert!(!ok);
    assert!(stderr.contains("not found"));

    let mut bad = std::env::temp_dir();
    bad.push(format!("awesim-bad-{}.sp", std::process::id()));
    let mut f = std::fs::File::create(&bad).unwrap();
    writeln!(f, "Q1 a b 1k").unwrap();
    let (ok, _, stderr) = awesim(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
    let _ = std::fs::remove_file(&bad);
}
