//! One function per table/figure of the paper's evaluation. Each returns
//! a formatted report with the regenerated rows/series and the paper's
//! reference numbers alongside, so EXPERIMENTS.md can quote them directly.

use std::fmt::Write as _;
use std::time::Instant;

use awe::elmore::elmore_delays;
use awe::twopole::two_pole_approximation;
use awe::{AweEngine, AweOptions};
use awe_circuit::generators::random_rc_tree;
use awe_circuit::papers::{fig16, fig22, fig22_victim, fig25, fig4, fig9, VDD};
use awe_circuit::Waveform;
use awe_mna::{MnaSystem, MomentEngine};
use awe_sim::{exact_poles, relative_l2_vs_sim, simulate, TransientOptions};
use awe_treelink::TreeAnalysis;

use crate::format::{percent, pole, seconds, waveform_table};
use crate::plot::{render, Series};

fn step5() -> Waveform {
    Waveform::step(0.0, VDD)
}

fn strict(order_bump: bool) -> AweOptions {
    AweOptions {
        max_escalation: 0,
        allow_order_bump: order_bump,
        ..AweOptions::default()
    }
}

/// **Fig. 7** — first-order AWE vs the reference simulation for the
/// Fig. 4 RC tree step response.
pub fn fig07() -> String {
    let p = fig4(step5());
    let engine = AweEngine::new(&p.circuit).expect("fig4 builds");
    let awe1 = engine.approximate(p.output, 1).expect("order 1");
    let sim = simulate(&p.circuit, TransientOptions::new(8e-3)).expect("sim");

    let times: Vec<f64> = (0..=12).map(|i| i as f64 * 3.5e-4).collect();
    let awe_v: Vec<f64> = times.iter().map(|&t| awe1.eval(t)).collect();
    let sim_v: Vec<f64> = times.iter().map(|&t| sim.value_at(p.output, t)).collect();

    let err = relative_l2_vs_sim(&sim, p.output, |t| awe1.eval(t)).unwrap_or(f64::NAN);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 7 — first-order AWE step response, Fig. 4 RC tree"
    );
    let _ = writeln!(out, "paper: visible error at first order (error term 36 %)");
    let _ = writeln!(out, "measured relative L2 error vs sim: {}", percent(err));
    let _ = writeln!(
        out,
        "pole: {} (reciprocal Elmore delay -1/T_D = {:.4e})",
        pole(awe1.poles()[0]),
        -1.0 / 7e-4
    );
    out.push_str(&waveform_table(
        &["t", "AWE-1 [V]", "sim [V]"],
        &times,
        &[awe_v, sim_v],
    ));
    out.push_str(&render(
        &[
            Series::sampled("awe-1", 0.0, 4.2e-3, 72, |t| awe1.eval(t)),
            Series::sampled("sim", 0.0, 4.2e-3, 72, |t| sim.value_at(p.output, t)),
        ],
        72,
        16,
    ));
    out
}

/// **Fig. 12** — first-order AWE with the grounded resistor of Fig. 9.
pub fn fig12() -> String {
    let p = fig9(step5());
    let engine = AweEngine::new(&p.circuit).expect("fig9 builds");
    let awe1 = engine.approximate(p.output, 1).expect("order 1");
    let sim = simulate(&p.circuit, TransientOptions::new(6e-3)).expect("sim");

    let times: Vec<f64> = (0..=12).map(|i| i as f64 * 2.5e-4).collect();
    let awe_v: Vec<f64> = times.iter().map(|&t| awe1.eval(t)).collect();
    let sim_v: Vec<f64> = times.iter().map(|&t| sim.value_at(p.output, t)).collect();

    let mut out = String::new();
    let _ = writeln!(out, "Fig. 12 — grounded resistor (Fig. 9, R5 = 4 Ω at n1)");
    let _ = writeln!(
        out,
        "steady state scales to V·R5/(R1+R5) = 4 V (paper eq. (3) regime)"
    );
    let _ = writeln!(
        out,
        "AWE final value: {:.4} V | sim final: {:.4} V | 50% delay: AWE {} vs sim {}",
        awe1.final_value(),
        sim.value_at(p.output, 6e-3),
        seconds(awe1.delay_50().unwrap_or(f64::NAN)),
        seconds(sim.delay_50(p.output).unwrap_or(f64::NAN)),
    );
    out.push_str(&waveform_table(
        &["t", "AWE-1 [V]", "sim [V]"],
        &times,
        &[awe_v, sim_v],
    ));
    out
}

/// **Fig. 14** — first-order ramp response (1 ms rise) by two-ramp
/// superposition.
pub fn fig14() -> String {
    let p = fig4(Waveform::rising_step(0.0, VDD, 1e-3));
    let engine = AweEngine::new(&p.circuit).expect("fig4 builds");
    let awe1 = engine.approximate(p.output, 1).expect("order 1");
    let sim = simulate(&p.circuit, TransientOptions::new(6e-3)).expect("sim");

    let times: Vec<f64> = (0..=15).map(|i| i as f64 * 2.5e-4).collect();
    let input: Vec<f64> = times
        .iter()
        .map(|&t| Waveform::rising_step(0.0, VDD, 1e-3).eval(t))
        .collect();
    let awe_v: Vec<f64> = times.iter().map(|&t| awe1.eval(t)).collect();
    let sim_v: Vec<f64> = times.iter().map(|&t| sim.value_at(p.output, t)).collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 14 — ramp response (5 V / 1 ms rise), Fig. 4 tree"
    );
    let _ = writeln!(
        out,
        "paper: good delay prediction; largest error near t = 0 (initial slope \
         glitch unless m_-2 is matched)"
    );
    let _ = writeln!(
        out,
        "initial slope of AWE-1 at t=0: {:+.3e} V/s (a small negative start is \
         the documented artifact)",
        (awe1.eval(1e-6) - awe1.eval(0.0)) / 1e-6
    );
    // §4.3's remedy: trade the highest moment condition for m_-2.
    let matched = engine
        .approximate_with(
            p.output,
            1,
            AweOptions {
                match_initial_slope: true,
                error_estimate: false,
                ..AweOptions::default()
            },
        )
        .expect("slope-matched order 1");
    let _ = writeln!(
        out,
        "with m_-2 matching (this implementation's §4.3 option): initial slope \
         {:+.3e} V/s — glitch removed",
        (matched.eval(1e-6) - matched.eval(0.0)) / 1e-6
    );
    let _ = writeln!(
        out,
        "50% delay: AWE {} vs sim {}",
        seconds(awe1.delay_50().unwrap_or(f64::NAN)),
        seconds(sim.delay_50(p.output).unwrap_or(f64::NAN)),
    );
    out.push_str(&waveform_table(
        &["t", "input [V]", "AWE-1 [V]", "sim [V]"],
        &times,
        &[input, awe_v, sim_v],
    ));
    out
}

/// **Fig. 15** — second-order step response of the Fig. 4 tree.
pub fn fig15() -> String {
    let p = fig4(step5());
    let engine = AweEngine::new(&p.circuit).expect("fig4 builds");
    let sim = simulate(&p.circuit, TransientOptions::new(8e-3)).expect("sim");

    let mut out = String::new();
    let _ = writeln!(out, "Fig. 15 — second-order step response, Fig. 4 tree");
    let _ = writeln!(out, "paper: error term 36 % (q=1) -> 1.6 % (q=2)");
    for q in 1..=2 {
        let a = engine.approximate(p.output, q).expect("approximation");
        let measured = relative_l2_vs_sim(&sim, p.output, |t| a.eval(t)).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "q={q}: internal error estimate {} | measured vs sim {}",
            a.error_estimate.map_or("n/a".into(), percent),
            percent(measured),
        );
    }
    let a2 = engine.approximate(p.output, 2).expect("order 2");
    let times: Vec<f64> = (0..=12).map(|i| i as f64 * 3.5e-4).collect();
    let awe_v: Vec<f64> = times.iter().map(|&t| a2.eval(t)).collect();
    let sim_v: Vec<f64> = times.iter().map(|&t| sim.value_at(p.output, t)).collect();
    out.push_str(&waveform_table(
        &["t", "AWE-2 [V]", "sim [V]"],
        &times,
        &[awe_v, sim_v],
    ));
    out.push_str(
        "second order vs sim (overlapping glyphs = indistinguishable, the\n\
         paper's own criterion for Fig. 15):\n",
    );
    out.push_str(&render(
        &[
            Series::sampled("awe-2", 0.0, 4.2e-3, 72, |t| a2.eval(t)),
            Series::sampled("sim", 0.0, 4.2e-3, 72, |t| sim.value_at(p.output, t)),
        ],
        72,
        16,
    ));
    out
}

/// **Table I** — approximating vs actual poles for the stiff RC tree,
/// without and with the `V_C6(0) = 5 V` initial condition.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I — approximating and exact poles, Fig. 16 RC tree\n\
         (paper shape: 1st order lands near the dominant pole; as the order\n\
         rises the approximating poles \"creep up on\" the actual poles — here\n\
         order 3 matches the first pole to 5 digits and order 4 matches four\n\
         poles; with the IC the low-order poles shift with the initial state)\n"
    );

    for (label, ic, max_q) in [
        ("no initial conditions", None, 4usize),
        // The paper's Table I stops at order 2 for the IC case; higher
        // strict orders of the charge-sharing seed develop right-half-
        // plane poles (the §3.3 escalation handles them in normal use).
        ("V_C6(0) = 5 V", Some(VDD), 2),
    ] {
        let p = fig16(step5(), ic);
        let engine = AweEngine::new(&p.circuit).expect("fig16 builds");
        let _ = writeln!(out, "--- {label} ---");
        let exact = exact_poles(&p.circuit).expect("poles");
        for q in 1..=max_q {
            match engine.approximate_with(p.output, q, strict(true)) {
                Ok(a) => {
                    let ps: Vec<String> = a.poles().iter().map(|&z| pole(z)).collect();
                    let note = if a.stable { "" } else { "  [unstable]" };
                    let _ = writeln!(out, "order {q}: {}{note}", ps.join(", "));
                }
                Err(e) => {
                    let _ = writeln!(out, "order {q}: ({e})");
                }
            }
        }
        let _ = writeln!(out, "actual ({}):", exact.len());
        for z in &exact {
            let _ = writeln!(out, "  {}", pole(*z));
        }
        out.push('\n');
    }
    out
}

/// **Figs. 17–18** — first- and second-order approximations at `C7` of
/// the stiff Fig. 16 tree with a 1 ns input ramp.
pub fn fig17_18() -> String {
    let p = fig16(Waveform::rising_step(0.0, VDD, 1e-9), None);
    let engine = AweEngine::new(&p.circuit).expect("fig16 builds");
    let sim = simulate(&p.circuit, TransientOptions::new(6e-9)).expect("sim");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figs. 17-18 — stiff RC tree (Fig. 16), 1 ns ramp, voltage at C7"
    );
    let _ = writeln!(out, "paper: error 4.4 % (q=1) -> 0.15 % (q=2)");
    let mut curves = Vec::new();
    for q in 1..=2 {
        let a = engine.approximate(p.output, q).expect("approximation");
        let measured = relative_l2_vs_sim(&sim, p.output, |t| a.eval(t)).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "q={q}: internal estimate {} | measured vs sim {}",
            a.error_estimate.map_or("n/a".into(), percent),
            percent(measured),
        );
        curves.push(a);
    }
    let times: Vec<f64> = (0..=12).map(|i| i as f64 * 0.25e-9).collect();
    let a1: Vec<f64> = times.iter().map(|&t| curves[0].eval(t)).collect();
    let a2: Vec<f64> = times.iter().map(|&t| curves[1].eval(t)).collect();
    let sv: Vec<f64> = times.iter().map(|&t| sim.value_at(p.output, t)).collect();
    out.push_str(&waveform_table(
        &["t", "AWE-1 [V]", "AWE-2 [V]", "sim [V]"],
        &times,
        &[a1, a2, sv],
    ));
    out
}

/// **Fig. 19** — CPU time: first-order cost vs the *incremental* cost of
/// moving to second order (moments dominate; higher orders are cheap).
pub fn fig19() -> String {
    let p = fig16(step5(), None);
    let sys = MnaSystem::build(&p.circuit).expect("mna builds");
    let reps = 200usize;

    // First-order work: factor G, decompose with 2 moments, reduce.
    let t0 = Instant::now();
    for _ in 0..reps {
        let eng = MomentEngine::new(&sys).expect("factor");
        let dec = eng.decompose(2).expect("moments");
        std::hint::black_box(&dec);
    }
    let first_order = t0.elapsed().as_secs_f64() / reps as f64;

    // Incremental second order: two more moments by resubstitution.
    let eng = MomentEngine::new(&sys).expect("factor");
    let dec2 = eng.decompose(2).expect("moments");
    let seed = dec2.pieces[0].moments[0].clone();
    let w: Vec<f64> = sys.c_times(&seed).iter().map(|v| -v).collect();
    let t1 = Instant::now();
    for _ in 0..reps {
        let m = eng
            .homogeneous_moments(seed.clone(), &w, 4)
            .expect("higher moments");
        std::hint::black_box(&m);
    }
    let incremental = t1.elapsed().as_secs_f64() / reps as f64;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 19 — cost of first order vs incremental second order (Fig. 16)"
    );
    let _ = writeln!(
        out,
        "paper: the second-order increment is a fraction of the first-order\n\
         setup (moments dominate; each extra moment is one resubstitution)"
    );
    let _ = writeln!(
        out,
        "first-order setup + m_-1..m_0:  {}",
        seconds(first_order)
    );
    let _ = writeln!(
        out,
        "incremental m_1..m_2 (order 2): {}",
        seconds(incremental)
    );
    let _ = writeln!(
        out,
        "ratio incremental/first = {:.2}",
        incremental / first_order
    );
    out
}

/// **Figs. 20–21** — nonequilibrium initial condition: low-order failure
/// and second-order recovery.
pub fn fig20_21() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figs. 20-21 — nonequilibrium IC (V_C6(0) = 5 V), node of C6"
    );
    let _ = writeln!(
        out,
        "paper: first order cannot represent the nonmonotone response (150 %);\n\
         second order matches (0.65 %)"
    );

    // Ideal step: the C6-node homogeneous response is a pure pulse with
    // m_-1 = 0 — the strict first-order match has *no solution* (§3.3).
    let p_step = fig16(step5(), Some(VDD));
    let n6 = p_step.nodes[5];
    let engine_step = AweEngine::new(&p_step.circuit).expect("fig16 builds");
    match engine_step.approximate_with(n6, 1, strict(false)) {
        Err(e) => {
            let _ = writeln!(out, "ideal step, strict q=1: no solution ({e})");
        }
        Ok(a) => {
            let _ = writeln!(
                out,
                "ideal step, strict q=1: degenerate flat response, v(0)={:.3}",
                a.eval(0.0)
            );
        }
    }

    // 1 ns ramp input (the §5.1 drive): errors by order.
    let p = fig16(Waveform::rising_step(0.0, VDD, 1e-9), Some(VDD));
    let n6 = p.nodes[5];
    let engine = AweEngine::new(&p.circuit).expect("fig16 builds");
    let sim = simulate(&p.circuit, TransientOptions::new(8e-9)).expect("sim");
    for q in 1..=3 {
        let a = engine
            .approximate_with(n6, q, strict(true))
            .expect("approximation");
        let e = relative_l2_vs_sim(&sim, n6, |t| a.eval(t)).unwrap_or(f64::NAN);
        let _ = writeln!(out, "ramp input, q={q}: measured error {}", percent(e));
    }
    let a2 = engine.approximate_with(n6, 2, strict(true)).expect("q2");
    let times: Vec<f64> = (0..=12).map(|i| i as f64 * 0.4e-9).collect();
    let av: Vec<f64> = times.iter().map(|&t| a2.eval(t)).collect();
    let sv: Vec<f64> = times.iter().map(|&t| sim.value_at(n6, t)).collect();
    out.push_str(&waveform_table(
        &["t", "AWE-2 [V]", "sim [V]"],
        &times,
        &[av, sv],
    ));
    out.push_str("the nonmonotone charge-sharing dip, order 2 vs sim:\n");
    out.push_str(&render(
        &[
            Series::sampled("awe-2", 0.0, 5e-9, 72, |t| a2.eval(t)),
            Series::sampled("sim", 0.0, 5e-9, 72, |t| sim.value_at(n6, t)),
        ],
        72,
        16,
    ));
    out
}

/// **Figs. 23–24** — floating coupling capacitor: output slowdown and the
/// charge dumped onto the victim.
pub fn fig23_24() -> String {
    let base = fig16(step5(), None);
    let coup = fig22(step5(), None);
    let victim = fig22_victim(&coup);
    let eng_base = AweEngine::new(&base.circuit).expect("fig16 builds");
    let eng_coup = AweEngine::new(&coup.circuit).expect("fig22 builds");
    let sim = simulate(&coup.circuit, TransientOptions::new(6e-9)).expect("sim");

    let a_base = eng_base.approximate(base.output, 3).expect("base");
    let a_out = eng_coup.approximate(coup.output, 3).expect("coupled out");
    let a_victim = eng_coup.approximate(victim, 3).expect("victim");

    let mut out = String::new();
    let _ = writeln!(out, "Figs. 23-24 — floating coupling capacitor (Fig. 22)");
    let _ = writeln!(
        out,
        "paper: 4.0 V threshold delay slips 1.6 -> 1.7 ns from charge sharing;\n\
         the charge dumped onto C12 is exact because m_0 is matched"
    );
    let d0 = a_base.delay_to_threshold(4.0).unwrap_or(f64::NAN);
    let d1 = a_out.delay_to_threshold(4.0).unwrap_or(f64::NAN);
    let _ = writeln!(
        out,
        "4.0 V delay: without C11 {} | with C11 {} ({:+.1} %)",
        seconds(d0),
        seconds(d1),
        (d1 / d0 - 1.0) * 100.0
    );
    for (q, label) in [(2, "q=2"), (3, "q=3")] {
        let a = eng_coup
            .approximate_with(coup.output, q, strict(true))
            .expect("approximation");
        let e = relative_l2_vs_sim(&sim, coup.output, |t| a.eval(t)).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "coupled output, {label}: measured error {}",
            percent(e)
        );
    }
    let times: Vec<f64> = (0..=12).map(|i| i as f64 * 0.4e-9).collect();
    let av: Vec<f64> = times.iter().map(|&t| a_victim.eval(t)).collect();
    let sv: Vec<f64> = times.iter().map(|&t| sim.value_at(victim, t)).collect();
    let _ = writeln!(
        out,
        "victim (C12) dumped-charge waveform (resistively held):"
    );
    out.push_str(&waveform_table(
        &["t", "AWE-3 [V]", "sim [V]"],
        &times,
        &[av, sv],
    ));

    // The §3.1 variant: a truly floating victim holds the dumped charge
    // forever — the paper's Fig. 24 plateau.
    let fl = awe_circuit::papers::fig22_floating(step5(), None);
    let fl_victim = fig22_victim(&fl);
    let eng_fl = AweEngine::new(&fl.circuit).expect("floating fig22 builds");
    let a_fl = eng_fl.approximate(fl_victim, 3).expect("floating victim");
    let plateau = VDD * 2.0e-13 / (2.0e-13 + 5.0e-13);
    let _ = writeln!(
        out,
        "floating-victim variant (§3.1 charge conservation): plateau {:.4} V          (capacitor divider predicts {:.4} V)",
        a_fl.final_value(),
        plateau
    );
    out
}

/// **Table II** — approximating vs actual poles for the underdamped RLC
/// circuit.
pub fn table2() -> String {
    let p = fig25(step5());
    let engine = AweEngine::new(&p.circuit).expect("fig25 builds");
    let exact = exact_poles(&p.circuit).expect("poles");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II — RLC circuit poles (Fig. 25)\n\
         paper shape: 2nd order finds the dominant complex pair; 4th order\n\
         matches the first two pairs closely\n"
    );
    for q in [2usize, 4] {
        match engine.approximate_with(p.output, q, strict(true)) {
            Ok(a) => {
                let _ = writeln!(out, "order {q}:");
                for z in a.poles() {
                    let _ = writeln!(out, "  {}", pole(z));
                }
            }
            Err(e) => {
                let _ = writeln!(out, "order {q}: ({e})");
            }
        }
    }
    let _ = writeln!(out, "actual:");
    for z in &exact {
        let _ = writeln!(out, "  {}", pole(*z));
    }
    out
}

/// **Fig. 26** — second- and fourth-order step responses of the RLC
/// circuit.
pub fn fig26() -> String {
    let p = fig25(step5());
    let engine = AweEngine::new(&p.circuit).expect("fig25 builds");
    let sim = simulate(&p.circuit, TransientOptions::new(2e-8)).expect("sim");

    let mut out = String::new();
    let _ = writeln!(out, "Fig. 26 — RLC step response, orders 1/2/4 vs sim");
    let _ = writeln!(out, "paper: errors 74 % (q=1), 22 % (q=2), < 1 % (q=4)");
    let mut a2v = None;
    let mut a4v = None;
    for q in [1usize, 2, 4] {
        let a = engine
            .approximate_with(p.output, q, strict(true))
            .expect("approximation");
        let e = relative_l2_vs_sim(&sim, p.output, |t| a.eval(t)).unwrap_or(f64::NAN);
        let _ = writeln!(out, "q={q}: measured error {}", percent(e));
        if q == 2 {
            a2v = Some(a);
        } else if q == 4 {
            a4v = Some(a);
        }
    }
    let (a2, a4) = (a2v.expect("q2"), a4v.expect("q4"));
    let times: Vec<f64> = (0..=16).map(|i| i as f64 * 0.5e-9).collect();
    let v2: Vec<f64> = times.iter().map(|&t| a2.eval(t)).collect();
    let v4: Vec<f64> = times.iter().map(|&t| a4.eval(t)).collect();
    let sv: Vec<f64> = times.iter().map(|&t| sim.value_at(p.output, t)).collect();
    out.push_str(&waveform_table(
        &["t", "AWE-2 [V]", "AWE-4 [V]", "sim [V]"],
        &times,
        &[v2, v4, sv],
    ));
    out.push_str("ringing step response, orders 2/4 vs sim:\n");
    out.push_str(&render(
        &[
            Series::sampled("2nd order", 0.0, 8e-9, 72, |t| a2.eval(t)),
            Series::sampled("4th order", 0.0, 8e-9, 72, |t| a4.eval(t)),
            Series::sampled("sim", 0.0, 8e-9, 72, |t| sim.value_at(p.output, t)),
        ],
        72,
        18,
    ));
    out
}

/// **Fig. 27** — RLC ramp response (1 ns rise): the finite slope shifts
/// the residues so one pair dominates and low orders improve.
pub fn fig27() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 27 — RLC with 1 ns input rise, order 2 vs sim");
    let _ = writeln!(
        out,
        "paper: with finite rise time one complex pair dominates; the step\n\
         response exhibits the largest error term"
    );
    let mut errs = Vec::new();
    for (label, wf) in [
        ("step", step5()),
        ("1 ns ramp", Waveform::rising_step(0.0, VDD, 1e-9)),
    ] {
        let p = fig25(wf);
        let engine = AweEngine::new(&p.circuit).expect("fig25 builds");
        let sim = simulate(&p.circuit, TransientOptions::new(2e-8)).expect("sim");
        let a = engine
            .approximate_with(p.output, 2, strict(true))
            .expect("q2");
        let e = relative_l2_vs_sim(&sim, p.output, |t| a.eval(t)).unwrap_or(f64::NAN);
        let _ = writeln!(out, "q=2, {label}: measured error {}", percent(e));
        errs.push(e);
    }
    let _ = writeln!(
        out,
        "ramp/step error ratio: {:.2} (< 1 confirms the paper's remark)",
        errs[1] / errs[0]
    );

    let p = fig25(Waveform::rising_step(0.0, VDD, 1e-9));
    let engine = AweEngine::new(&p.circuit).expect("fig25 builds");
    let sim = simulate(&p.circuit, TransientOptions::new(2e-8)).expect("sim");
    let a2 = engine
        .approximate_with(p.output, 2, strict(true))
        .expect("q2");
    let times: Vec<f64> = (0..=16).map(|i| i as f64 * 0.5e-9).collect();
    let av: Vec<f64> = times.iter().map(|&t| a2.eval(t)).collect();
    let sv: Vec<f64> = times.iter().map(|&t| sim.value_at(p.output, t)).collect();
    out.push_str(&waveform_table(
        &["t", "AWE-2 [V]", "sim [V]"],
        &times,
        &[av, sv],
    ));
    out
}

/// **Ablation** — §3.5 frequency scaling on vs off: moment-matrix
/// conditioning and solvable order on the stiff Fig. 16 tree.
pub fn ablation_scaling() -> String {
    let p = fig16(step5(), None);
    let engine = AweEngine::new(&p.circuit).expect("fig16 builds");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation — frequency scaling (§3.5) on the stiff Fig. 16 tree"
    );
    let _ = writeln!(
        out,
        "paper: without scaling the moment matrix becomes numerically\n\
         unstable before an accurate solution may be reached\n"
    );
    let _ = writeln!(
        out,
        "{:>5} {:>28} {:>28}",
        "q", "cond (scaled)", "cond (unscaled)"
    );
    for q in 1..=5usize {
        let scaled = engine.approximate_with(p.output, q, strict(true));
        let unscaled = engine.approximate_with(
            p.output,
            q,
            AweOptions {
                frequency_scaling: false,
                ..strict(true)
            },
        );
        let fmt = |r: &Result<awe::AweApproximation, awe::AweError>| match r {
            Ok(a) => format!("{:.2e}", a.condition),
            Err(e) => format!("fail ({e:.0?})"),
        };
        let _ = writeln!(out, "{q:>5} {:>28} {:>28}", fmt(&scaled), fmt(&unscaled));
    }
    out
}

/// **Ablation** — order sweep: §3.4 error estimate and measured error,
/// orders 1..6 on the stiff tree.
pub fn ablation_order_sweep() -> String {
    let p = fig16(Waveform::rising_step(0.0, VDD, 1e-9), None);
    let engine = AweEngine::new(&p.circuit).expect("fig16 builds");
    let sim = simulate(&p.circuit, TransientOptions::new(6e-9)).expect("sim");

    let mut out = String::new();
    let _ = writeln!(out, "Ablation — order sweep at C7, Fig. 16 with 1 ns ramp");
    let _ = writeln!(
        out,
        "{:>3} {:>16} {:>16} {:>8}",
        "q", "est. error", "measured", "stable"
    );
    for q in 1..=6usize {
        match engine.approximate_with(p.output, q, strict(true)) {
            Ok(a) => {
                let measured =
                    relative_l2_vs_sim(&sim, p.output, |t| a.eval(t)).unwrap_or(f64::NAN);
                let _ = writeln!(
                    out,
                    "{q:>3} {:>16} {:>16} {:>8}",
                    a.error_estimate.map_or("n/a".into(), percent),
                    percent(measured),
                    a.stable,
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{q:>3} failed: {e}");
            }
        }
    }
    out
}

/// **Scaling** — §IV's `O(n)` claim: tree-walk Elmore/moment time vs
/// circuit size, alongside the dense-MNA engine for contrast.
pub fn scaling_tree_walk() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Scaling — tree walk vs sparse/dense MNA moment engines, random RC trees\n\
         (the MNA engine switches to the RCM-ordered sparse LU above 192\n\
         unknowns; `dense` forces the O(n³) path for comparison)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>14} {:>14} {:>12}",
        "n", "tree walk", "MNA (auto)", "dense LU", "dense/walk"
    );
    for n in [32usize, 128, 512, 2048] {
        let g = random_rc_tree(n, (10.0, 200.0), (0.05e-12, 1e-12), 42, step5());

        let t0 = Instant::now();
        let ta = TreeAnalysis::new(&g.circuit).expect("tree builds");
        let m = ta.step_moments(&[VDD], 4).expect("moments");
        std::hint::black_box(&m);
        let walk = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let sys = MnaSystem::build(&g.circuit).expect("mna builds");
        let eng = MomentEngine::new(&sys).expect("factor");
        let dec = eng.decompose(4).expect("moments");
        std::hint::black_box(&dec);
        let auto = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let lu = awe_numeric::Lu::factor(&sys.g_tilde).expect("dense factor");
        let x = lu.solve(&vec![1.0; sys.num_unknowns()]).expect("solve");
        std::hint::black_box(&x);
        let dense = t2.elapsed().as_secs_f64();

        let _ = writeln!(
            out,
            "{n:>8} {:>14} {:>14} {:>14} {:>12.1}",
            seconds(walk),
            seconds(auto),
            seconds(dense),
            dense / walk
        );
    }
    let _ = writeln!(
        out,
        "\nThe walk is linear; the sparse LU keeps the general-purpose engine\n\
         close to it (matrix assembly is now the dominant cost), while the\n\
         dense factorization grows cubically — §IV's claim, quantified."
    );
    out
}

/// Baseline comparison: Elmore, two-pole, AWE-4 delays on the Fig. 4 tree
/// against the simulator (context for the §II discussion).
pub fn baselines() -> String {
    let p = fig4(step5());
    let engine = AweEngine::new(&p.circuit).expect("fig4 builds");
    let sim = simulate(&p.circuit, TransientOptions::new(8e-3)).expect("sim");
    let d_sim = sim.delay_50(p.output).unwrap_or(f64::NAN);

    let mut out = String::new();
    let _ = writeln!(out, "Baselines — 50 % delay at n4 of the Fig. 4 tree");
    let t_d = elmore_delays(&p.circuit).expect("rc tree")[p.output];
    let _ = writeln!(out, "Elmore bound T_D:            {}", seconds(t_d));
    let pr = awe::elmore::elmore_approximation(&p.circuit, p.output).expect("pr model");
    let _ = writeln!(
        out,
        "single-pole (P-R / AWE-1):   {}",
        seconds(pr.delay_50().unwrap_or(f64::NAN))
    );
    let tp = two_pole_approximation(&p.circuit, p.output).expect("two-pole");
    let _ = writeln!(
        out,
        "two-pole (Horowitz-style):   {}",
        seconds(tp.delay_50().unwrap_or(f64::NAN))
    );
    let a4 = engine.approximate(p.output, 4).expect("order 4");
    let _ = writeln!(
        out,
        "AWE order 4:                 {}",
        seconds(a4.delay_50().unwrap_or(f64::NAN))
    );
    let _ = writeln!(out, "reference simulation:        {}", seconds(d_sim));
    out
}

/// Runs every experiment and concatenates the reports (the
/// `report_all` binary).
pub fn all() -> String {
    let sections: Vec<String> = vec![
        fig07(),
        fig12(),
        fig14(),
        fig15(),
        table1(),
        fig17_18(),
        fig19(),
        fig20_21(),
        fig23_24(),
        table2(),
        fig26(),
        fig27(),
        ablation_scaling(),
        ablation_order_sweep(),
        scaling_tree_walk(),
        baselines(),
    ];
    sections.join("\n============================================================\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each experiment must at least run to completion and produce a
    // non-trivial report. The numeric assertions live in the workspace
    // integration tests; these are harness smoke tests.

    #[test]
    fn fig07_report_runs() {
        let r = fig07();
        assert!(r.contains("Fig. 7"));
        assert!(r.lines().count() > 10);
    }

    #[test]
    fn fig12_report_runs() {
        assert!(fig12().contains("4 V"));
    }

    #[test]
    fn fig15_report_runs() {
        let r = fig15();
        assert!(r.contains("q=1"));
        assert!(r.contains("q=2"));
    }

    #[test]
    fn table1_report_runs() {
        let r = table1();
        assert!(r.contains("no initial conditions"));
        assert!(r.contains("V_C6(0) = 5 V"));
        assert!(r.contains("actual"));
    }

    #[test]
    fn table2_report_runs() {
        let r = table2();
        assert!(r.contains("order 2"));
        assert!(r.contains("order 4"));
        assert!(r.contains("j"), "expects complex poles: {r}");
    }

    #[test]
    fn ablations_run() {
        assert!(ablation_scaling().contains("cond"));
        assert!(ablation_order_sweep().contains("measured"));
    }

    #[test]
    fn baselines_run() {
        let r = baselines();
        assert!(r.contains("Elmore"));
        assert!(r.contains("two-pole"));
    }
}
