//! Circuit element model.
//!
//! AWE (paper §I) targets linear(ized) RLC interconnect: resistors,
//! capacitors (grounded *and* floating), inductors, independent sources,
//! and linear controlled sources. Each element here carries the terminals
//! and value needed by both the MNA stamps (`awe-mna`) and the structural
//! analyses (`topology`, `awe-treelink`).

use std::fmt;

use crate::waveform::Waveform;

/// Identifier of a circuit node. Node `0` is always ground.
pub type NodeId = usize;

/// Ground node id.
pub const GROUND: NodeId = 0;

/// A two-terminal or controlled circuit element.
///
/// All values are in SI units (ohms, farads, henries, volts, amperes).
#[derive(Clone, Debug, PartialEq)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name (e.g. `R1`).
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms; must be positive.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    ///
    /// A capacitor with `b == GROUND` is a grounded capacitor; otherwise it
    /// is *floating* (coupling capacitance, §5.3 of the paper).
    Capacitor {
        /// Instance name (e.g. `C1`).
        name: String,
        /// First terminal (positive for the initial condition).
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads; must be positive.
        farads: f64,
        /// Nonequilibrium initial voltage `v(a) - v(b)` at `t = 0`
        /// (paper §5.2); `None` means the equilibrium DC value.
        initial_voltage: Option<f64>,
    },
    /// Linear inductor between `a` and `b` (§5.4 of the paper).
    Inductor {
        /// Instance name (e.g. `L1`).
        name: String,
        /// First terminal (current flows `a → b` when positive).
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries; must be positive.
        henries: f64,
        /// Initial current at `t = 0`; `None` means the equilibrium value.
        initial_current: Option<f64>,
    },
    /// Independent voltage source from `neg` to `pos`
    /// (`v(pos) - v(neg) = waveform(t)`).
    VoltageSource {
        /// Instance name (e.g. `V1`).
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source value over time.
        waveform: Waveform,
    },
    /// Independent current source pushing `waveform(t)` amperes from
    /// `from` into `to` through the source.
    CurrentSource {
        /// Instance name (e.g. `I1`).
        name: String,
        /// Node current leaves.
        from: NodeId,
        /// Node current enters.
        to: NodeId,
        /// Source value over time.
        waveform: Waveform,
    },
    /// Voltage-controlled current source (SPICE `G`):
    /// `i(from→to) = gm · (v(cpos) - v(cneg))`.
    Vccs {
        /// Instance name (e.g. `G1`).
        name: String,
        /// Node current leaves.
        from: NodeId,
        /// Node current enters.
        to: NodeId,
        /// Positive controlling node.
        cpos: NodeId,
        /// Negative controlling node.
        cneg: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Voltage-controlled voltage source (SPICE `E`):
    /// `v(pos) - v(neg) = gain · (v(cpos) - v(cneg))`.
    Vcvs {
        /// Instance name (e.g. `E1`).
        name: String,
        /// Positive output terminal.
        pos: NodeId,
        /// Negative output terminal.
        neg: NodeId,
        /// Positive controlling node.
        cpos: NodeId,
        /// Negative controlling node.
        cneg: NodeId,
        /// Voltage gain (dimensionless).
        gain: f64,
    },
    /// Current-controlled current source (SPICE `F`):
    /// `i(from→to) = gain · i(through controlling V source)`.
    Cccs {
        /// Instance name (e.g. `F1`).
        name: String,
        /// Node current leaves.
        from: NodeId,
        /// Node current enters.
        to: NodeId,
        /// Name of the zero- or finite-valued voltage source whose branch
        /// current controls this source.
        control: String,
        /// Current gain (dimensionless).
        gain: f64,
    },
    /// Current-controlled voltage source (SPICE `H`):
    /// `v(pos) - v(neg) = r · i(through controlling V source)`.
    Ccvs {
        /// Instance name (e.g. `H1`).
        name: String,
        /// Positive output terminal.
        pos: NodeId,
        /// Negative output terminal.
        neg: NodeId,
        /// Name of the controlling voltage source.
        control: String,
        /// Transresistance in ohms.
        r: f64,
    },
}

impl Element {
    /// Instance name of the element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Inductor { name, .. }
            | Element::VoltageSource { name, .. }
            | Element::CurrentSource { name, .. }
            | Element::Vccs { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Cccs { name, .. }
            | Element::Ccvs { name, .. } => name,
        }
    }

    /// The two primary terminals (output terminals for controlled
    /// sources), as `(a, b)`.
    pub fn terminals(&self) -> (NodeId, NodeId) {
        match *self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. } => (a, b),
            Element::VoltageSource { pos, neg, .. }
            | Element::Vcvs { pos, neg, .. }
            | Element::Ccvs { pos, neg, .. } => (pos, neg),
            Element::CurrentSource { from, to, .. }
            | Element::Vccs { from, to, .. }
            | Element::Cccs { from, to, .. } => (from, to),
        }
    }

    /// All node ids the element references, including controlling nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        match *self {
            Element::Vccs {
                from,
                to,
                cpos,
                cneg,
                ..
            }
            | Element::Vcvs {
                pos: from,
                neg: to,
                cpos,
                cneg,
                ..
            } => vec![from, to, cpos, cneg],
            _ => {
                let (a, b) = self.terminals();
                vec![a, b]
            }
        }
    }

    /// `true` for energy-storage elements (C or L).
    pub fn is_storage(&self) -> bool {
        matches!(self, Element::Capacitor { .. } | Element::Inductor { .. })
    }

    /// `true` for independent sources.
    pub fn is_source(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource { .. } | Element::CurrentSource { .. }
        )
    }

    /// `true` if either terminal is ground.
    pub fn touches_ground(&self) -> bool {
        let (a, b) = self.terminals();
        a == GROUND || b == GROUND
    }

    /// One-letter SPICE-style kind tag (`R`, `C`, `L`, `V`, `I`, `G`, `E`,
    /// `F`, `H`).
    pub fn kind(&self) -> char {
        match self {
            Element::Resistor { .. } => 'R',
            Element::Capacitor { .. } => 'C',
            Element::Inductor { .. } => 'L',
            Element::VoltageSource { .. } => 'V',
            Element::CurrentSource { .. } => 'I',
            Element::Vccs { .. } => 'G',
            Element::Vcvs { .. } => 'E',
            Element::Cccs { .. } => 'F',
            Element::Ccvs { .. } => 'H',
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Resistor { name, a, b, ohms } => write!(f, "{name} {a} {b} {ohms}"),
            Element::Capacitor {
                name,
                a,
                b,
                farads,
                initial_voltage,
            } => {
                write!(f, "{name} {a} {b} {farads}")?;
                if let Some(ic) = initial_voltage {
                    write!(f, " IC={ic}")?;
                }
                Ok(())
            }
            Element::Inductor {
                name,
                a,
                b,
                henries,
                initial_current,
            } => {
                write!(f, "{name} {a} {b} {henries}")?;
                if let Some(ic) = initial_current {
                    write!(f, " IC={ic}")?;
                }
                Ok(())
            }
            Element::VoltageSource {
                name,
                pos,
                neg,
                waveform,
            } => write!(f, "{name} {pos} {neg} {waveform}"),
            Element::CurrentSource {
                name,
                from,
                to,
                waveform,
            } => write!(f, "{name} {from} {to} {waveform}"),
            Element::Vccs {
                name,
                from,
                to,
                cpos,
                cneg,
                gm,
            } => write!(f, "{name} {from} {to} {cpos} {cneg} {gm}"),
            Element::Vcvs {
                name,
                pos,
                neg,
                cpos,
                cneg,
                gain,
            } => write!(f, "{name} {pos} {neg} {cpos} {cneg} {gain}"),
            Element::Cccs {
                name,
                from,
                to,
                control,
                gain,
            } => write!(f, "{name} {from} {to} {control} {gain}"),
            Element::Ccvs {
                name,
                pos,
                neg,
                control,
                r,
            } => write!(f, "{name} {pos} {neg} {control} {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Element {
        Element::Resistor {
            name: "R1".into(),
            a: 1,
            b: 2,
            ohms: 1e3,
        }
    }

    #[test]
    fn accessors() {
        let e = r();
        assert_eq!(e.name(), "R1");
        assert_eq!(e.terminals(), (1, 2));
        assert_eq!(e.nodes(), vec![1, 2]);
        assert_eq!(e.kind(), 'R');
        assert!(!e.is_storage());
        assert!(!e.is_source());
        assert!(!e.touches_ground());
    }

    #[test]
    fn storage_and_source_flags() {
        let c = Element::Capacitor {
            name: "C1".into(),
            a: 1,
            b: GROUND,
            farads: 1e-12,
            initial_voltage: Some(5.0),
        };
        assert!(c.is_storage());
        assert!(c.touches_ground());
        let v = Element::VoltageSource {
            name: "V1".into(),
            pos: 1,
            neg: GROUND,
            waveform: Waveform::dc(5.0),
        };
        assert!(v.is_source());
        assert_eq!(v.kind(), 'V');
    }

    #[test]
    fn controlled_source_nodes_include_controls() {
        let g = Element::Vccs {
            name: "G1".into(),
            from: 1,
            to: 2,
            cpos: 3,
            cneg: 4,
            gm: 1e-3,
        };
        assert_eq!(g.nodes(), vec![1, 2, 3, 4]);
        assert_eq!(g.terminals(), (1, 2));
        let e = Element::Vcvs {
            name: "E1".into(),
            pos: 1,
            neg: 0,
            cpos: 2,
            cneg: 0,
            gain: 2.0,
        };
        assert_eq!(e.nodes(), vec![1, 0, 2, 0]);
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(r().to_string(), "R1 1 2 1000");
        let c = Element::Capacitor {
            name: "C2".into(),
            a: 2,
            b: 0,
            farads: 1e-12,
            initial_voltage: Some(5.0),
        };
        assert!(c.to_string().contains("IC=5"));
    }
}
