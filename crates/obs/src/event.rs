//! Event model: what a lane records.
//!
//! Everything is a flat [`Event`] — a `&'static str` name, an optional
//! `&'static str` detail, two `f64` payload slots and nanosecond
//! timestamps — so recording never allocates. The typed [`Health`] enum
//! is the public face of the numerical-health taxonomy; it encodes down
//! to the same flat shape.

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A timed region (`ph: "X"` in the Chrome trace).
    Span,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A numerical-health marker (`ph: "i"`, named per [`Health`]).
    Health,
}

/// One recorded event. Flat and `Copy` so the ring buffer never chases
/// pointers; the payload meaning of `a`/`b` depends on `name` (see
/// [`Health::encode`] and the span `note` API).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Nanoseconds since the recorder epoch at which the event started.
    pub ts_ns: u64,
    /// Duration in nanoseconds; zero for instant and health events.
    pub dur_ns: u64,
    /// Span, instant or health.
    pub kind: EventKind,
    /// Event name, e.g. `"lu.refactor"` or `"condition_warning"`.
    pub name: &'static str,
    /// Optional static qualifier, e.g. a stage or oracle name.
    pub detail: &'static str,
    /// Request id this event belongs to (`0` = none). Minted by the
    /// caller — the daemon assigns one per protocol line — and carried
    /// through [`crate::req_scope`] so spans, instants and health events
    /// recorded anywhere under a request (including pool workers) can be
    /// attributed to it.
    pub req: u64,
    /// First payload slot (meaning depends on `name`).
    pub a: f64,
    /// Second payload slot (meaning depends on `name`).
    pub b: f64,
}

/// Typed numerical-health events — the signals that decide whether an
/// AWE model can be trusted, surfaced where they happen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Health {
    /// A moment-matrix condition estimate observed at `stage`.
    Condition {
        /// Where the estimate was formed (e.g. `"pade"`).
        stage: &'static str,
        /// The condition estimate itself.
        estimate: f64,
    },
    /// Element growth observed in a numeric (re)factorization: max |U|
    /// over max |A|. Large growth means the pivot order has gone stale.
    PivotGrowth {
        /// The growth factor.
        growth: f64,
    },
    /// A Gilbert–Peierls refactorization reused the symbolic pattern
    /// and pivot order successfully.
    RefactorAccepted,
    /// A refactorization was rejected by the admissibility test — the
    /// pivot at column `pivot` collapsed under the recycled ordering.
    RefactorRejected {
        /// Column index of the offending pivot.
        pivot: usize,
    },
    /// A Padé model was delivered at `chosen` order after `requested`
    /// was asked for (they differ when the moment matrix is singular at
    /// the requested order or a pole count fell short).
    PadeOrder {
        /// Order the caller asked for.
        requested: usize,
        /// Order actually delivered.
        chosen: usize,
    },
    /// An order step-down: order `from` was abandoned for `to` because
    /// the higher-order model was unstable or untrustworthy (§3.3).
    OrderFallback {
        /// The abandoned order.
        from: usize,
        /// The order tried next.
        to: usize,
    },
    /// A delivered model's moment-matrix condition exceeds the trust
    /// cap (1e14, the verify harness convention) — its residues may be
    /// garbage even if every pole is stable.
    ConditionWarning {
        /// The offending condition estimate.
        condition: f64,
    },
    /// A verify oracle returned `Fail` — the engine and the oracle's
    /// independent reference disagree.
    OracleDisagreement {
        /// Oracle name, e.g. `"transient"`.
        oracle: &'static str,
    },
    /// Partial Padé discarded an approximating pole: right-half-plane
    /// (`detail = "rhp"`) or spuriously fast relative to the dominant
    /// time constant (`detail = "spurious"`). The surviving residues are
    /// refit against the leading moments, so m₋₁/m₀ conservation (§5.3)
    /// is preserved.
    PoleDiscarded {
        /// Why the pole was dropped: `"rhp"` or `"spurious"`.
        reason: &'static str,
        /// Real part of the discarded pole.
        re: f64,
        /// Imaginary part of the discarded pole.
        im: f64,
    },
    /// The frequency scale γ (reciprocal characteristic time τ, §3.5)
    /// applied to the moment sequence before the Hankel solve, with the
    /// condition estimate of the *scaled, equilibrated* system.
    MomentScale {
        /// The scale applied (`1.0` when scaling was disabled or moot).
        gamma: f64,
        /// Condition estimate of the scaled Hankel system.
        condition: f64,
    },
    /// A partial-Padé rescue succeeded: an unstable order-`order` model
    /// was repaired by discarding bad poles and refitting `kept` residues.
    PadeRescued {
        /// The order whose raw model was unstable.
        order: usize,
        /// Surviving pole count after the filter.
        kept: usize,
    },
    /// A partial-Padé rescue failed: no stable model survived the filter
    /// at order `order`; the unstable result is delivered as-is
    /// (`stable == false`).
    PadeRejected {
        /// The order that could not be rescued.
        order: usize,
    },
}

impl Health {
    /// The event name this health record is filed under.
    pub fn name(&self) -> &'static str {
        match self {
            Health::Condition { .. } => "condition_estimate",
            Health::PivotGrowth { .. } => "pivot_growth",
            Health::RefactorAccepted => "refactor_accepted",
            Health::RefactorRejected { .. } => "refactor_rejected",
            Health::PadeOrder { .. } => "pade_order",
            Health::OrderFallback { .. } => "order_fallback",
            Health::ConditionWarning { .. } => "condition_warning",
            Health::OracleDisagreement { .. } => "oracle_disagreement",
            Health::PoleDiscarded { .. } => "pole_discarded",
            Health::MomentScale { .. } => "moment_scale",
            Health::PadeRescued { .. } => "pade_rescued",
            Health::PadeRejected { .. } => "pade_rejected",
        }
    }

    /// Flattens to `(name, detail, a, b)` — the [`Event`] payload shape.
    pub fn encode(&self) -> (&'static str, &'static str, f64, f64) {
        let name = self.name();
        match *self {
            Health::Condition { stage, estimate } => (name, stage, estimate, 0.0),
            Health::PivotGrowth { growth } => (name, "", growth, 0.0),
            Health::RefactorAccepted => (name, "", 0.0, 0.0),
            Health::RefactorRejected { pivot } => (name, "", pivot as f64, 0.0),
            Health::PadeOrder { requested, chosen } => (name, "", requested as f64, chosen as f64),
            Health::OrderFallback { from, to } => (name, "", from as f64, to as f64),
            Health::ConditionWarning { condition } => (name, "", condition, 0.0),
            Health::OracleDisagreement { oracle } => (name, oracle, 0.0, 0.0),
            Health::PoleDiscarded { reason, re, im } => (name, reason, re, im),
            Health::MomentScale { gamma, condition } => (name, "", gamma, condition),
            Health::PadeRescued { order, kept } => (name, "", order as f64, kept as f64),
            Health::PadeRejected { order } => (name, "", order as f64, 0.0),
        }
    }
}

/// Human-facing names for the two payload slots of a given event name;
/// used by the sinks to label Chrome-trace `args`.
pub(crate) fn arg_names(name: &str) -> (&'static str, &'static str) {
    match name {
        "condition_estimate" => ("estimate", "b"),
        "pivot_growth" => ("growth", "b"),
        "refactor_rejected" => ("pivot", "b"),
        "pade_order" => ("requested", "chosen"),
        "order_fallback" => ("from", "to"),
        "condition_warning" => ("condition", "b"),
        "pole_discarded" => ("re", "im"),
        "moment_scale" => ("gamma", "condition"),
        "pade_rescued" => ("order", "kept"),
        "pade_rejected" => ("order", "b"),
        _ => ("a", "b"),
    }
}
