//! Three sinks over one [`Profile`]: Chrome trace-event JSON, a
//! human-readable text report, and flat metrics JSON.
//!
//! All JSON is hand-rolled (the workspace has no serde); numbers are
//! emitted with `{:e}` which is valid JSON exponent notation, and
//! non-finite values degrade to `null` rather than producing invalid
//! output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{arg_names, EventKind};
use crate::recorder::Profile;
use crate::{bucket_bounds, Event};

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A finite `f64` as a JSON number (`{:e}` notation), `null` otherwise.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// Microseconds with nanosecond precision from a nanosecond count.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

/// Per-name span aggregate used by the text and metrics sinks.
struct SpanAgg {
    count: u64,
    total_ns: u64,
}

fn aggregate(profile: &Profile) -> (BTreeMap<&'static str, SpanAgg>, BTreeMap<&'static str, u64>) {
    let mut spans: BTreeMap<&'static str, SpanAgg> = BTreeMap::new();
    let mut marks: BTreeMap<&'static str, u64> = BTreeMap::new();
    for lane in &profile.lanes {
        for e in &lane.events {
            match e.kind {
                EventKind::Span => {
                    let agg = spans.entry(e.name).or_insert(SpanAgg {
                        count: 0,
                        total_ns: 0,
                    });
                    agg.count += 1;
                    agg.total_ns += e.dur_ns;
                }
                EventKind::Instant | EventKind::Health => {
                    *marks.entry(e.name).or_insert(0) += 1;
                }
            }
        }
    }
    (spans, marks)
}

fn event_args(e: &Event) -> String {
    let mut parts = Vec::new();
    if !e.detail.is_empty() {
        parts.push(format!("\"detail\": \"{}\"", json_escape(e.detail)));
    }
    if e.req != 0 {
        parts.push(format!("\"req\": {}", e.req));
    }
    let (an, bn) = arg_names(e.name);
    if e.a != 0.0 {
        parts.push(format!("\"{an}\": {}", json_f64(e.a)));
    }
    if e.b != 0.0 {
        parts.push(format!("\"{bn}\": {}", json_f64(e.b)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(", \"args\": {{{}}}", parts.join(", "))
    }
}

impl Profile {
    /// Renders the recording as a Chrome trace-event JSON array
    /// (`chrome://tracing` / Perfetto loadable). One lane (`tid`) per
    /// recorded thread in label order; spans become complete (`"X"`)
    /// events, instants and health events become thread-scoped instant
    /// (`"i"`) events. Timestamps are rebased so the earliest event
    /// sits at `ts: 0` and are globally monotone.
    pub fn chrome_trace(&self) -> String {
        self.chrome_trace_with(&[])
    }

    /// [`Profile::chrome_trace`] with caller-supplied extra event lines
    /// (already-rendered JSON objects) inserted after the process
    /// metadata — how the flight recorder tags a dump with its trigger.
    pub(crate) fn chrome_trace_with(&self, extra: &[String]) -> String {
        let mut lines: Vec<String> = Vec::new();
        lines.push(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
             \"args\": {\"name\": \"awesim\"}}"
                .to_string(),
        );
        for (i, lane) in self.lanes.iter().enumerate() {
            let tid = i + 1;
            lines.push(format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                json_escape(&lane.label)
            ));
            lines.push(format!(
                "{{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"sort_index\": {tid}}}}}"
            ));
        }
        lines.extend(extra.iter().cloned());

        let mut timed: Vec<(usize, &Event)> = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            for e in &lane.events {
                timed.push((i + 1, e));
            }
        }
        let t0 = timed.iter().map(|(_, e)| e.ts_ns).min().unwrap_or(0);
        timed.sort_by_key(|(tid, e)| (e.ts_ns, *tid));
        for (tid, e) in timed {
            let ts = us(e.ts_ns - t0);
            let args = event_args(e);
            match e.kind {
                EventKind::Span => lines.push(format!(
                    "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \
                     \"ts\": {ts}, \"dur\": {}{args}}}",
                    json_escape(e.name),
                    us(e.dur_ns),
                )),
                EventKind::Instant | EventKind::Health => lines.push(format!(
                    "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \
                     \"tid\": {tid}, \"ts\": {ts}{args}}}",
                    json_escape(e.name),
                )),
            }
        }

        let mut out = String::from("[\n");
        for (i, line) in lines.iter().enumerate() {
            let comma = if i + 1 < lines.len() { "," } else { "" };
            let _ = writeln!(out, "  {line}{comma}");
        }
        out.push_str("]\n");
        out
    }

    /// Renders a human-readable summary: lanes, span totals, health
    /// and instant event counts, counters, histograms.
    pub fn text_report(&self) -> String {
        let (spans, marks) = aggregate(self);
        let mut out = String::from("obs report\n");
        let _ = writeln!(
            out,
            "  lanes ({}), {} events dropped:",
            self.lanes.len(),
            self.events_dropped()
        );
        for lane in &self.lanes {
            let _ = writeln!(
                out,
                "    {:<12} {:>7} events, {} dropped",
                lane.label,
                lane.events.len(),
                lane.dropped
            );
        }
        if !spans.is_empty() {
            let mut by_time: Vec<_> = spans.iter().collect();
            by_time.sort_by(|x, y| y.1.total_ns.cmp(&x.1.total_ns).then(x.0.cmp(y.0)));
            out.push_str("  spans (by total time):\n");
            for (name, agg) in by_time {
                let _ = writeln!(
                    out,
                    "    {:<20} count {:>7}  total {:>10.3} ms",
                    name,
                    agg.count,
                    agg.total_ns as f64 / 1e6
                );
            }
        }
        if !marks.is_empty() {
            out.push_str("  events:\n");
            for (name, n) in &marks {
                let _ = writeln!(out, "    {name:<20} {n}");
            }
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for c in &self.counters {
                let _ = writeln!(out, "    {:<24} {}", c.name, c.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms:\n");
            for h in &self.histograms {
                let peak = h
                    .buckets
                    .iter()
                    .max_by_key(|(_, n)| *n)
                    .map(|&(i, _)| bucket_bounds(i))
                    .unwrap_or((0.0, 0.0));
                let _ = writeln!(
                    out,
                    "    {:<24} count {:>7}  mean {:.4e}  mode [{:.3e}, {:.3e})",
                    h.name,
                    h.count,
                    h.mean(),
                    peak.0,
                    peak.1
                );
            }
        }
        out
    }

    /// Renders a flat metrics JSON object: lane sizes, per-name span
    /// aggregates, event counts, counters and histogram summaries. Key
    /// order is deterministic (sorted names).
    pub fn metrics_json(&self) -> String {
        let (spans, marks) = aggregate(self);
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"awe-obs-metrics-v1\",\n");
        let _ = writeln!(out, "  \"events_dropped\": {},", self.events_dropped());

        out.push_str("  \"lanes\": [");
        for (i, lane) in self.lanes.iter().enumerate() {
            let comma = if i + 1 < self.lanes.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"label\": \"{}\", \"events\": {}, \"dropped\": {}}}{comma}",
                json_escape(&lane.label),
                lane.events.len(),
                lane.dropped
            );
        }
        out.push_str(if self.lanes.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str("  \"spans\": {");
        let n = spans.len();
        for (i, (name, agg)) in spans.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"total_s\": {}}}{comma}",
                json_escape(name),
                agg.count,
                json_f64(agg.total_ns as f64 / 1e9)
            );
        }
        out.push_str(if spans.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"events\": {");
        let n = marks.len();
        for (i, (name, count)) in marks.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = write!(out, "\n    \"{}\": {count}{comma}", json_escape(name));
        }
        out.push_str(if marks.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"counters\": {");
        let n = self.counters.len();
        for (i, c) in self.counters.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = write!(out, "\n    \"{}\": {}{comma}", json_escape(c.name), c.value);
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": {");
        let n = self.histograms.len();
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}}}{comma}",
                json_escape(h.name),
                h.count,
                json_f64(h.sum),
                json_f64(h.mean())
            );
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });

        out.push_str("}\n");
        out
    }
}
