//! Load generator for the analysis daemon: drives an in-process
//! [`ServeState`] through `handle_line` — the same entry point the
//! stdio and TCP transports use — and measures per-request latency
//! split by class:
//!
//! * `cold_load`  — `load_design` of an unseen 500-net design (full
//!   batch analysis, one donor symbolic factorization).
//! * `value_edit` — a resize ECO plus the `analyze` that re-solves the
//!   one dirty net by numeric refactorization (zero new symbolic).
//! * `topology_edit` — an add-card ECO plus its `analyze` (the edited
//!   net leaves its structure group and pays a fresh symbolic).
//! * `concurrent_value_edit` — the value-edit pair issued by several
//!   client threads hammering the *same* hot session, so the latency
//!   includes queueing on the session lock — the contention a TCP
//!   daemon actually exhibits under parallel ECO traffic.
//!
//! Writes `BENCH_serve.json` at the workspace root with requests/sec
//! and p50/p99 per class, and fails if a warm value edit is not at
//! least 5× faster than a cold load — the headline incremental claim.
//!
//! `AWE_BENCH_TINY=1` shrinks the design (the stage count stays above
//! the sparse-path threshold so the refactor path is still the one
//! being measured).

use std::fmt::Write as _;
use std::time::Instant;

use awe_serve::{handle_line, Json, ServeOptions, ServeState};

struct ClassRow {
    class: &'static str,
    samples_us: Vec<f64>,
}

impl ClassRow {
    fn new(class: &'static str) -> Self {
        ClassRow {
            class,
            samples_us: Vec::new(),
        }
    }

    fn percentile(&self, p: f64) -> f64 {
        let mut s = self.samples_us.clone();
        // total_cmp: one NaN latency must not abort the whole bench run.
        s.sort_by(|a, b| a.total_cmp(b));
        if s.is_empty() {
            return 0.0;
        }
        // Nearest-rank, matching the daemon's own metrics verb.
        let rank = ((p / 100.0 * s.len() as f64).ceil() as usize).clamp(1, s.len());
        s[rank - 1]
    }
}

/// Sends one request line, asserts the daemon accepted it, and returns
/// the wall-clock latency in microseconds.
fn timed_send(st: &ServeState, line: &str) -> f64 {
    let start = Instant::now();
    let reply = handle_line(st, line);
    let us = start.elapsed().as_secs_f64() * 1e6;
    let parsed = awe_serve::json::parse(&reply)
        .unwrap_or_else(|e| panic!("invalid response JSON ({e}): {reply}"));
    assert_eq!(
        parsed.get("ok"),
        Some(&Json::Bool(true)),
        "request failed: {line:.80} -> {reply:.200}"
    );
    us
}

fn main() {
    let tiny = std::env::var("AWE_BENCH_TINY").is_ok() || std::env::args().any(|a| a == "--test");
    // Stage count stays well above the sparse threshold (192 unknowns)
    // so value edits exercise the pattern-reusing refactor path.
    let (nets, stages, cold_reps, edit_reps): (usize, usize, usize, usize) = if tiny {
        (40, 200, 2, 8)
    } else {
        (500, 200, 3, 30)
    };

    let st = ServeState::new(ServeOptions::default());
    let mut cold = ClassRow::new("cold_load");
    let mut value = ClassRow::new("value_edit");
    let mut topo = ClassRow::new("topology_edit");
    let started = Instant::now();
    let mut requests = 0usize;

    for rep in 0..cold_reps {
        let line = format!(
            r#"{{"verb":"load_design","session":"load{rep}","chains":{{"nets":{nets},"stages":{stages},"seed":{}}}}}"#,
            rep + 1
        );
        cold.samples_us.push(timed_send(&st, &line));
        requests += 1;
    }

    // Warm session the edit classes run against.
    let line = format!(
        r#"{{"verb":"load_design","session":"warm","chains":{{"nets":{nets},"stages":{stages},"seed":99}}}}"#
    );
    timed_send(&st, &line);
    requests += 1;

    for rep in 0..edit_reps {
        // One edit = the ECO plus the analyze that pays for it; the pair
        // is what an interactive caller waits on.
        let net = format!("net{:04}", 1 + rep % nets);
        let eco = format!(
            r#"{{"verb":"eco","session":"warm","ops":[{{"op":"resize","net":"{net}","element":"R3","value":{}.5}}]}}"#,
            100 + rep
        );
        let a = timed_send(&st, &eco);
        let b = timed_send(&st, r#"{"verb":"analyze","session":"warm"}"#);
        value.samples_us.push(a + b);
        requests += 2;
    }

    for rep in 0..edit_reps {
        let net = format!("net{:04}", 1 + rep % nets);
        // A fresh grounded cap each rep: every one is a topology change.
        let eco = format!(
            r#"{{"verb":"eco","session":"warm","ops":[{{"op":"add","net":"{net}","card":"CLOAD{rep} n4 0 {}e-15"}}]}}"#,
            rep + 1
        );
        let a = timed_send(&st, &eco);
        let b = timed_send(&st, r#"{"verb":"analyze","session":"warm"}"#);
        topo.samples_us.push(a + b);
        requests += 2;
    }

    // Contended phase: every client edits its own net slice but they all
    // serialize on the one warm session, exactly like concurrent TCP
    // connections targeting a shared design.
    let clients = 4usize;
    let per_client = edit_reps.div_ceil(2).max(2);
    let mut concurrent = ClassRow::new("concurrent_value_edit");
    std::thread::scope(|scope| {
        let st = &st;
        let workers: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(per_client);
                    for rep in 0..per_client {
                        let net = format!("net{:04}", 1 + (client * per_client + rep) % nets);
                        let eco = format!(
                            r#"{{"verb":"eco","session":"warm","ops":[{{"op":"resize","net":"{net}","element":"R3","value":{}.25}}]}}"#,
                            200 + client * per_client + rep
                        );
                        let a = timed_send(st, &eco);
                        let b = timed_send(st, r#"{"verb":"analyze","session":"warm"}"#);
                        samples.push(a + b);
                    }
                    samples
                })
            })
            .collect();
        for w in workers {
            concurrent
                .samples_us
                .extend(w.join().expect("client thread"));
        }
    });
    requests += 2 * clients * per_client;

    let total_s = started.elapsed().as_secs_f64();
    let rps = requests as f64 / total_s;

    let cold_p50 = cold.percentile(50.0);
    let value_p50 = value.percentile(50.0);
    let speedup = cold_p50 / value_p50.max(1e-9);
    for row in [&cold, &value, &topo, &concurrent] {
        println!(
            "{:<14} n={:<3} p50 {:>10.1} us  p99 {:>10.1} us",
            row.class,
            row.samples_us.len(),
            row.percentile(50.0),
            row.percentile(99.0),
        );
    }
    println!("{requests} requests in {total_s:.2} s ({rps:.1} req/s); value-edit speedup vs cold load: {speedup:.1}x");

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"serve_load\",");
    let _ = writeln!(out, "  \"nets\": {nets},");
    let _ = writeln!(out, "  \"stages\": {stages},");
    let _ = writeln!(out, "  \"tiny\": {tiny},");
    let _ = writeln!(out, "  \"requests\": {requests},");
    let _ = writeln!(out, "  \"requests_per_sec\": {rps:.1},");
    let _ = writeln!(out, "  \"value_edit_speedup_vs_cold\": {speedup:.1},");
    let _ = writeln!(out, "  \"concurrent_clients\": {clients},");
    out.push_str("  \"classes\": [\n");
    let rows = [&cold, &value, &topo, &concurrent];
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"class\": \"{}\", \"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{comma}",
            row.class,
            row.samples_us.len(),
            row.percentile(50.0),
            row.percentile(99.0),
        );
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");

    assert!(
        speedup >= 5.0,
        "incremental claim violated: value-edit p50 {value_p50:.1} us is only {speedup:.1}x \
         faster than cold load p50 {cold_p50:.1} us (need >= 5x)"
    );
}
