//! End-to-end daemon test: pipe a scripted newline-delimited JSON
//! session into the real `awesim serve --stdio` binary and check every
//! response line parses and carries the expected fields.

use std::io::Write;
use std::process::{Command, Stdio};

use awesim::serve::Json;

/// Runs `awesim serve --stdio` with `script` on stdin, returns one
/// parsed JSON value per response line.
fn run_session(extra_args: &[&str], script: &str) -> Vec<Json> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_awesim"))
        .arg("serve")
        .arg("--stdio")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "serve exited nonzero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|line| {
            awesim::serve::json::parse(line)
                .unwrap_or_else(|e| panic!("invalid response JSON ({e}): {line}"))
        })
        .collect()
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool).unwrap_or(false)
}

fn num(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("field {key} in {v}"))
}

#[test]
fn scripted_session_over_stdio() {
    let script = concat!(
        r#"{"id":1,"verb":"load_design","session":"s","chains":{"nets":4,"stages":6,"seed":3}}"#,
        "\n",
        r#"{"id":2,"verb":"eco","session":"s","ops":[{"op":"resize","net":"net0002","element":"R3","value":123.0}]}"#,
        "\n",
        r#"{"id":3,"verb":"analyze","session":"s"}"#,
        "\n",
        "this line is garbage\n",
        r#"{"id":4,"verb":"report","session":"s","limit":2}"#,
        "\n",
        r#"{"id":5,"verb":"metrics"}"#,
        "\n",
        r#"{"id":6,"verb":"shutdown"}"#,
        "\n",
    );
    let replies = run_session(&[], script);
    assert_eq!(replies.len(), 7, "one response per line: {replies:?}");

    let loaded = &replies[0];
    assert!(ok(loaded), "{loaded}");
    assert_eq!(num(loaded, "nets"), 4);
    assert_eq!(loaded.get("id").and_then(Json::as_u64), Some(1));

    let eco = &replies[1];
    assert!(ok(eco), "{eco}");
    assert_eq!(num(eco, "invalidated_results"), 1);

    let analyzed = &replies[2];
    assert!(ok(analyzed), "{analyzed}");
    assert_eq!(num(analyzed, "solves"), 1);
    assert_eq!(num(analyzed, "cache_hits"), 3);

    let bad = &replies[3];
    assert!(!ok(bad), "{bad}");
    assert_eq!(
        bad.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_json")
    );

    let report = &replies[4];
    assert!(ok(report), "{report}");
    let nets = report
        .get("nets")
        .and_then(Json::as_arr)
        .expect("nets array");
    assert_eq!(nets.len(), 2, "limit honored");
    assert_eq!(num(report, "nets_total"), 4);

    let metrics = &replies[5];
    assert!(ok(metrics), "{metrics}");
    assert_eq!(num(metrics, "sessions"), 1);
    assert!(num(metrics, "errors") >= 1);

    let bye = &replies[6];
    assert!(ok(bye), "{bye}");
    assert_eq!(bye.get("verb").and_then(Json::as_str), Some("shutdown"));
}

#[test]
fn serve_trace_and_metrics_files_capture_the_session() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("awesim-serve-trace-{}.json", std::process::id()));
    let metrics = dir.join(format!("awesim-serve-metrics-{}.json", std::process::id()));
    let script = concat!(
        r#"{"id":1,"verb":"load_design","session":"tr","chains":{"nets":2,"stages":5,"seed":1}}"#,
        "\n",
        r#"{"id":2,"verb":"analyze","session":"tr"}"#,
        "\n",
        r#"{"id":3,"verb":"shutdown"}"#,
        "\n",
    );
    let replies = run_session(
        &[
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ],
        script,
    );
    assert!(replies.iter().all(ok), "{replies:?}");

    let t = std::fs::read_to_string(&trace).expect("trace written");
    assert!(t.trim_start().starts_with('['), "not a JSON array");
    assert!(
        t.contains("serve.request"),
        "missing request spans: {t:.200}"
    );
    assert!(t.contains("session:tr"), "missing session lane: {t:.200}");

    let m = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(m.contains("awe-obs-metrics-v1"), "{m}");
    assert!(m.contains("serve.requests"), "{m}");

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}
