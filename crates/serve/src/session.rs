//! Persistent per-design sessions with dirty-net tracking.
//!
//! A session owns a [`Design`], a private [`BatchEngine`] (so one
//! session's caches never alias another's), and the bookkeeping that
//! makes ECO re-analysis incremental:
//!
//! * **Per-net state** — each net's current structural hash (the result
//!   cache key) and topology-only pattern key (the symbolic-LU cache
//!   key), plus a dirty class for the pending edits.
//! * **Structure groups** — a reference count of member nets per pattern
//!   key. A topology edit moves a net between groups; when a group
//!   empties, its cached symbolic pattern is dropped (nothing will
//!   refactor against it again).
//!
//! Invalidation rules applied at ECO commit time:
//!
//! | edit class | result cache | pattern cache |
//! |---|---|---|
//! | no-op (hash unchanged) | keep | keep |
//! | value-only (pattern key unchanged) | evict old hash | keep — next analyze *refactors* |
//! | topology (pattern key changed) | evict old hash | evict old key iff its group emptied |
//!
//! The engine itself re-derives what to solve from the hashes, so the
//! tracking here can only cost a stale eviction, never a wrong answer —
//! but the counters it maintains are what let tests and the bench *prove*
//! that a value-only ECO performs zero new symbolic analyses.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use awe_batch::{net_keys, BatchEngine, BatchOptions, BatchRun, Design, NetSpec};

use crate::eco::EcoOp;
use crate::protocol::{ErrorCode, RunOpts, ServeError};

/// How stale a net's cached artifacts are after pending edits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Dirty {
    /// No pending edit; the cached result is current.
    Clean,
    /// Values changed: the result is stale, the symbolic pattern holds.
    Value,
    /// Topology changed: result stale and the net switched structure
    /// groups.
    Topology,
}

#[derive(Clone, Copy, Debug)]
struct NetState {
    hash: u64,
    pattern: u64,
    dirty: Dirty,
}

/// Monotonic per-session counters, reported by the `metrics` verb.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// `eco` requests accepted.
    pub ecos: u64,
    /// Individual ops inside accepted ECOs.
    pub eco_ops: u64,
    /// Nets whose edit was value-only.
    pub value_nets: u64,
    /// Nets whose edit changed topology.
    pub topology_nets: u64,
    /// Nets edited back to their previous hash (nothing invalidated).
    pub noop_nets: u64,
    /// `analyze` runs (the initial load's run included).
    pub analyses: u64,
    /// AWE solves across all runs.
    pub solves: u64,
    /// Results served from the cache across all runs.
    pub cache_hits: u64,
    /// Solves that refactored against a cached symbolic pattern.
    pub pattern_hits: u64,
    /// Cached results evicted by edits.
    pub invalidated_results: u64,
    /// Symbolic patterns dropped because their group emptied.
    pub invalidated_patterns: u64,
}

impl SessionStats {
    /// Solves that could *not* reuse a cached symbolic pattern — i.e.
    /// fresh symbolic analyses (dense-path factors count here too, which
    /// only overstates the figure the serve bench bounds).
    pub fn new_symbolic(&self) -> u64 {
        self.solves.saturating_sub(self.pattern_hits)
    }
}

/// What one net's committed edit turned out to be.
#[derive(Clone, Debug)]
pub struct NetChange {
    /// Net name.
    pub net: String,
    /// `"value"`, `"topology"`, or `"noop"`.
    pub class: &'static str,
}

/// The committed effect of one `eco` request.
#[derive(Clone, Debug, Default)]
pub struct EcoOutcome {
    /// Per touched net, in first-touch order.
    pub changes: Vec<NetChange>,
    /// Cached results evicted.
    pub invalidated_results: usize,
    /// Symbolic patterns dropped (structure groups emptied).
    pub invalidated_patterns: usize,
}

/// Deterministic summary of one `analyze` run.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeSummary {
    /// Nets in the design.
    pub nets: usize,
    /// Nets that were value-dirty going in.
    pub dirty_value: usize,
    /// Nets that were topology-dirty going in.
    pub dirty_topology: usize,
    /// Nets the engine actually visited: the whole design on the first
    /// (cold) analyze, only the dirty subset on warm re-analyses.
    pub swept: usize,
    /// AWE solves performed.
    pub solves: usize,
    /// Results served from the cache.
    pub cache_hits: usize,
    /// Solves that refactored against a cached pattern.
    pub pattern_hits: usize,
    /// Solves that needed a fresh symbolic analysis (or dense factor).
    pub new_symbolic: usize,
    /// Nets whose analysis failed.
    pub failures: usize,
    /// End-to-end wall time of the run.
    pub wall: Duration,
}

/// One named session: a design, its engine, and the dirty-net tracker.
#[derive(Debug)]
pub struct Session {
    /// Session name (the map key, repeated here for reports).
    pub name: String,
    design: Design,
    engine: BatchEngine,
    opts: BatchOptions,
    states: HashMap<String, NetState>,
    groups: HashMap<u64, usize>,
    /// Counters (public so the server can fold in request-level stats).
    pub stats: SessionStats,
    last: Option<BatchRun>,
}

impl Session {
    /// Creates a session around a parsed design. No analysis happens
    /// here; the caller runs [`Session::analyze`] for the initial solve.
    pub fn new(
        name: impl Into<String>,
        design: Design,
        defaults: BatchOptions,
        overrides: RunOpts,
    ) -> Self {
        let mut opts = defaults;
        if let Some(threads) = overrides.threads {
            opts.threads = threads;
        }
        if let Some(order) = overrides.order {
            opts.order = order;
        }
        if overrides.auto_target.is_some() {
            opts.auto_target = overrides.auto_target;
        }
        if let Some(max_order) = overrides.max_order {
            opts.max_order = max_order;
        }
        if let Some(enabled) = overrides.reduce {
            opts.reduce.enabled = enabled;
        }
        if let Some(tol) = overrides.reduce_tol {
            opts.reduce.tolerance = tol;
        }
        if let Some(no_tape) = overrides.no_tape {
            opts.use_tape = !no_tape;
        }
        let mut states = HashMap::with_capacity(design.len());
        let mut groups: HashMap<u64, usize> = HashMap::new();
        for net in design.nets() {
            let (hash, pattern) = net_keys(net, &opts.reduce);
            let state = NetState {
                hash,
                pattern,
                dirty: Dirty::Clean,
            };
            *groups.entry(state.pattern).or_insert(0) += 1;
            states.insert(net.name.clone(), state);
        }
        Session {
            name: name.into(),
            design,
            engine: BatchEngine::new(),
            opts,
            states,
            groups,
            stats: SessionStats::default(),
            last: None,
        }
    }

    /// The design under analysis.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Distinct structure groups (pattern keys) in the design.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Cached result count in this session's engine.
    pub fn cached_results(&self) -> usize {
        self.engine.cache_len()
    }

    /// Cached symbolic-pattern count in this session's engine.
    pub fn cached_patterns(&self) -> usize {
        self.engine.pattern_len()
    }

    /// The most recent run, if any analyze has completed.
    pub fn last_run(&self) -> Option<&BatchRun> {
        self.last.as_ref()
    }

    /// Applies an op sequence atomically: every op is validated against a
    /// *clone* of its net, and only a fully successful sequence commits.
    /// On error the design, states, groups, and caches are untouched.
    pub fn apply_ops(&mut self, ops: &[EcoOp]) -> Result<EcoOutcome, ServeError> {
        // Stage: group ops by net (first-touch order) and apply each
        // net's ops to a clone of its circuit.
        let mut order: Vec<&str> = Vec::new();
        let mut staged: HashMap<&str, awe_circuit::Circuit> = HashMap::new();
        for op in ops {
            let net = op.net();
            if !staged.contains_key(net) {
                let spec = self.design.net_mut(net).ok_or_else(|| {
                    ServeError::new(ErrorCode::EcoError, format!("no net named `{net}`"))
                        .with_net(net)
                })?;
                staged.insert(net, spec.circuit.clone());
                order.push(net);
            }
            let circuit = staged.get_mut(net).expect("staged above");
            op.apply(circuit).map_err(|e| {
                ServeError::new(ErrorCode::EcoError, format!("{op}: {e}")).with_net(net)
            })?;
        }

        // Commit: swap in the edited circuits, reclassify, invalidate.
        let mut outcome = EcoOutcome::default();
        for net in order {
            let circuit = staged.remove(net).expect("staged");
            let spec = self.design.net_mut(net).expect("validated above");
            spec.circuit = circuit;
            // Keys come from the *prepared* net: with the reduction
            // pre-pass enabled these derive from the reduced rewrite, so
            // an ECO inside a collapsed chain reclassifies by what it did
            // to the reduced topology (value shift vs. shifted segment
            // boundaries), never against a stale pattern.
            let (new_hash, new_pattern) = net_keys(spec, &self.opts.reduce);
            let state = self.states.get_mut(net).expect("state tracks design");

            if new_hash == state.hash {
                self.stats.noop_nets += 1;
                outcome.changes.push(NetChange {
                    net: net.to_owned(),
                    class: "noop",
                });
                continue;
            }
            if self.engine.invalidate_result(state.hash) {
                outcome.invalidated_results += 1;
                self.stats.invalidated_results += 1;
            }
            let class = if new_pattern == state.pattern {
                self.stats.value_nets += 1;
                state.dirty = state.dirty.max(Dirty::Value);
                "value"
            } else {
                // Move the net between structure groups; an emptied group
                // will never be refactored against again, so its cached
                // symbolic pattern goes too.
                let members = self
                    .groups
                    .get_mut(&state.pattern)
                    .expect("group tracks members");
                *members -= 1;
                if *members == 0 {
                    self.groups.remove(&state.pattern);
                    if self.engine.invalidate_pattern(state.pattern) {
                        outcome.invalidated_patterns += 1;
                        self.stats.invalidated_patterns += 1;
                    }
                }
                *self.groups.entry(new_pattern).or_insert(0) += 1;
                self.stats.topology_nets += 1;
                state.dirty = Dirty::Topology;
                "topology"
            };
            state.hash = new_hash;
            state.pattern = new_pattern;
            outcome.changes.push(NetChange {
                net: net.to_owned(),
                class,
            });
        }
        self.stats.ecos += 1;
        self.stats.eco_ops += ops.len() as u64;
        Ok(outcome)
    }

    /// Runs the batch engine over the design. Clean nets are served from
    /// the result cache; value-dirty nets refactor against their group's
    /// cached symbolic pattern; topology-dirty nets factor cold (or seed
    /// their new group).
    ///
    /// The first analyze sweeps the whole design. Warm re-analyses hand
    /// the engine only the *dirty* subset — the previous run's results
    /// stay current for every clean net (their hashes are unchanged, so a
    /// full sweep could only re-serve them from the cache) — and splice
    /// the fresh results back into the retained run by net name. Clean
    /// nets still count as `cache_hits` in the summary, so the counters
    /// read identically to a full sweep; `swept` records how many nets
    /// the engine actually visited.
    pub fn analyze(&mut self) -> AnalyzeSummary {
        let mut dirty_value = 0usize;
        let mut dirty_topology = 0usize;
        for state in self.states.values() {
            match state.dirty {
                Dirty::Clean => {}
                Dirty::Value => dirty_value += 1,
                Dirty::Topology => dirty_topology += 1,
            }
        }

        if self.last.is_none() {
            // Cold: nothing to splice into, sweep everything.
            let run = self.engine.run(&self.design, &self.opts);
            for state in self.states.values_mut() {
                state.dirty = Dirty::Clean;
            }
            self.stats.analyses += 1;
            self.stats.solves += run.solves as u64;
            self.stats.cache_hits += run.cache_hits as u64;
            self.stats.pattern_hits += run.pattern_hits as u64;
            let summary = AnalyzeSummary {
                nets: run.results.len(),
                dirty_value,
                dirty_topology,
                swept: run.results.len(),
                solves: run.solves,
                cache_hits: run.cache_hits,
                pattern_hits: run.pattern_hits,
                new_symbolic: run.solves.saturating_sub(run.pattern_hits),
                failures: run.results.iter().filter(|r| r.error.is_some()).count(),
                wall: run.wall,
            };
            self.last = Some(run);
            return summary;
        }

        let start = Instant::now();
        let dirty_nets: Vec<NetSpec> = self
            .design
            .nets()
            .iter()
            .filter(|n| self.states[&n.name].dirty != Dirty::Clean)
            .cloned()
            .collect();
        let swept = dirty_nets.len();
        let clean = self.design.len() - swept;
        let (solves, cache_hits, pattern_hits, wall) = if swept == 0 {
            (0, clean, 0, start.elapsed())
        } else {
            let sub = Design::from_nets(self.design.name.clone(), dirty_nets);
            let run = self.engine.run(&sub, &self.opts);
            let last = self.last.as_mut().expect("warm path has a run");
            let pos: HashMap<String, usize> = last
                .results
                .iter()
                .enumerate()
                .map(|(i, r)| (r.name.clone(), i))
                .collect();
            let totals = (
                run.solves,
                clean + run.cache_hits,
                run.pattern_hits,
                run.wall,
            );
            last.wall = run.wall;
            last.solves = run.solves;
            last.cache_hits = clean + run.cache_hits;
            last.pattern_hits = run.pattern_hits;
            last.pool = run.pool;
            for (res, timing) in run.results.into_iter().zip(run.timings) {
                let i = pos[&res.name];
                last.results[i] = res;
                last.timings[i] = timing;
            }
            totals
        };
        for state in self.states.values_mut() {
            state.dirty = Dirty::Clean;
        }
        self.stats.analyses += 1;
        self.stats.solves += solves as u64;
        self.stats.cache_hits += cache_hits as u64;
        self.stats.pattern_hits += pattern_hits as u64;
        let last = self.last.as_ref().expect("warm path has a run");
        AnalyzeSummary {
            nets: last.results.len(),
            dirty_value,
            dirty_topology,
            swept,
            solves,
            cache_hits,
            pattern_hits,
            new_symbolic: solves.saturating_sub(pattern_hits),
            failures: last.results.iter().filter(|r| r.error.is_some()).count(),
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chains_session(nets: usize, stages: usize) -> Session {
        Session::new(
            "t",
            Design::synthetic_chains(nets, stages, 9),
            BatchOptions {
                threads: 1,
                ..BatchOptions::default()
            },
            RunOpts::default(),
        )
    }

    #[test]
    fn value_eco_refactors_without_new_symbolic() {
        // 200 stages: past the sparse-path threshold, so the group shares
        // one cached symbolic pattern.
        let mut s = chains_session(4, 200);
        let cold = s.analyze();
        assert_eq!(cold.solves, 4);
        assert_eq!(s.cached_patterns(), 1);
        let baseline = s.stats.new_symbolic();

        let out = s
            .apply_ops(&[EcoOp::Resize {
                net: "net0002".into(),
                element: "R5".into(),
                value: 123.0,
            }])
            .unwrap();
        assert_eq!(out.changes.len(), 1);
        assert_eq!(out.changes[0].class, "value");
        assert_eq!(out.invalidated_results, 1);
        assert_eq!(out.invalidated_patterns, 0);

        let warm = s.analyze();
        assert_eq!((warm.dirty_value, warm.dirty_topology), (1, 0));
        assert_eq!(warm.solves, 1);
        assert_eq!(warm.cache_hits, 3);
        assert_eq!(warm.pattern_hits, 1);
        assert_eq!(warm.new_symbolic, 0, "value-only ECO: pure refactor");
        assert_eq!(s.stats.new_symbolic(), baseline);
    }

    #[test]
    fn warm_analyze_sweeps_only_the_dirty_subset() {
        let mut s = chains_session(6, 20);
        let cold = s.analyze();
        assert_eq!(cold.swept, 6, "cold analyze sweeps the whole design");

        s.apply_ops(&[EcoOp::Resize {
            net: "net0004".into(),
            element: "R3".into(),
            value: 55.0,
        }])
        .unwrap();
        let warm = s.analyze();
        assert_eq!(warm.swept, 1, "warm analyze visits only the dirty net");
        assert_eq!(warm.solves, 1);
        assert_eq!(warm.cache_hits, 5, "clean nets still read as cache hits");
        let last = s.last_run().expect("analyzed");
        assert_eq!(last.results.len(), 6, "spliced run reports every net");
        assert_eq!(last.results[3].name, "net0004", "design order preserved");
        assert!(!last.results[3].cache_hit, "the dirty net was re-solved");

        // Nothing dirty: the engine is not consulted at all.
        let idle = s.analyze();
        assert_eq!((idle.swept, idle.solves, idle.cache_hits), (0, 0, 6));
    }

    #[test]
    fn topology_eco_moves_groups_and_invalidates_emptied_ones() {
        let mut s = chains_session(3, 200);
        s.analyze();
        assert_eq!(s.group_count(), 1);

        // One net grows a side capacitor: it leaves the group (which keeps
        // two members, so the shared pattern survives).
        let out = s
            .apply_ops(&[EcoOp::Add {
                net: "net0001".into(),
                card: "CX n7 0 0.3p".into(),
            }])
            .unwrap();
        assert_eq!(out.changes[0].class, "topology");
        assert_eq!(out.invalidated_patterns, 0, "group still populated");
        assert_eq!(s.group_count(), 2);
        let after = s.analyze();
        assert_eq!(after.solves, 1);
        assert_eq!(after.new_symbolic, 1, "new topology needs its own analysis");

        // Removing it again returns the net to the original group; the
        // singleton group it vacates empties, dropping the pattern the
        // engine recorded when the lone member solved.
        let back = s
            .apply_ops(&[EcoOp::Remove {
                net: "net0001".into(),
                element: "CX".into(),
            }])
            .unwrap();
        assert_eq!(back.changes[0].class, "topology");
        assert_eq!(s.group_count(), 1);

        // Now push *every* net out of the shared group: the emptied group
        // drops its cached symbolic pattern.
        let grow = |i: usize| EcoOp::Add {
            net: format!("net{:04}", i),
            card: format!("CY{} n3 0 0.{}p", i, i + 1),
        };
        let out = s.apply_ops(&[grow(1), grow(2), grow(3)]).unwrap();
        assert_eq!(
            out.invalidated_patterns, 1,
            "emptied group evicts its pattern"
        );
    }

    #[test]
    fn failed_eco_sequences_commit_nothing() {
        let mut s = chains_session(2, 20);
        s.analyze();
        let hash_before = s.design.nets()[0].hash();
        // Second op fails (no such element): the first op must not stick.
        let err = s
            .apply_ops(&[
                EcoOp::Resize {
                    net: "net0001".into(),
                    element: "R1".into(),
                    value: 500.0,
                },
                EcoOp::Remove {
                    net: "net0001".into(),
                    element: "NOPE".into(),
                },
            ])
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::EcoError);
        assert_eq!(err.net.as_deref(), Some("net0001"));
        assert!(err.message.contains("NOPE"), "{}", err.message);
        assert_eq!(s.design.nets()[0].hash(), hash_before, "atomic: no commit");
        assert_eq!(s.stats.ecos, 0);
        let rerun = s.analyze();
        assert_eq!(rerun.solves, 0, "nothing was dirtied");

        let err = s
            .apply_ops(&[EcoOp::Resize {
                net: "ghost".into(),
                element: "R1".into(),
                value: 1.0,
            }])
            .unwrap_err();
        assert!(err.message.contains("ghost"), "{}", err.message);
    }

    #[test]
    fn resize_to_same_value_is_a_noop() {
        let mut s = chains_session(2, 20);
        s.analyze();
        // Resize to an arbitrary value, then back: second eco of the pair
        // restores the original hash, so nothing stays invalid.
        let original = s.design.nets()[1].hash();
        s.apply_ops(&[EcoOp::Resize {
            net: "net0002".into(),
            element: "R3".into(),
            value: 777.0,
        }])
        .unwrap();
        let out = s
            .apply_ops(&[EcoOp::Resize {
                net: "net0002".into(),
                element: "R3".into(),
                value: 777.0,
            }])
            .unwrap();
        assert_eq!(out.changes[0].class, "noop");
        assert_ne!(s.design.nets()[1].hash(), original, "value did change once");
        assert_eq!(s.stats.noop_nets, 1);
    }
}
