//! From-scratch work-stealing thread pool (std-only: `std::thread`,
//! `Mutex`, atomics — per the workspace dependency policy).
//!
//! Jobs are indices `0..jobs`, seeded into per-worker deques in contiguous
//! chunks. A worker pops from the *front* of its own deque and, when
//! empty, steals from the *back* of the most-loaded other deque — the
//! classic split that keeps owner access cache-warm while stealers take
//! the work farthest from the owner's current position. Results land in
//! per-job slots, so the output order is the job order no matter which
//! worker ran what, which is what makes batch reports deterministic
//! across thread counts.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Scheduler observability for one pool run.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Worker count actually used.
    pub threads: usize,
    /// Jobs executed per worker.
    pub executed: Vec<usize>,
    /// Jobs each worker obtained by stealing.
    pub steals: Vec<usize>,
}

impl PoolStats {
    /// Total steals across workers.
    pub fn total_steals(&self) -> usize {
        self.steals.iter().sum()
    }
}

/// Runs `f(0..jobs)` across `threads` workers, returning results in job
/// order plus scheduler stats.
///
/// `threads == 0` uses [`std::thread::available_parallelism`]. The worker
/// count is clamped to the job count; `threads == 1` runs inline on the
/// caller thread (no spawn), so single-threaded runs are exactly
/// sequential.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn run_indexed<T, F>(jobs: usize, threads: usize, f: F) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads, jobs);
    if jobs == 0 {
        return (
            Vec::new(),
            PoolStats {
                threads,
                executed: vec![0; threads],
                steals: vec![0; threads],
            },
        );
    }
    if threads == 1 {
        let results = (0..jobs).map(&f).collect();
        return (
            results,
            PoolStats {
                threads: 1,
                executed: vec![jobs],
                steals: vec![0],
            },
        );
    }

    // Seed contiguous chunks so neighboring nets start on the same worker.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = w * jobs / threads;
            let hi = (w + 1) * jobs / threads;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let remaining = AtomicUsize::new(jobs);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let executed: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let steals: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let deques = &deques;
            let remaining = &remaining;
            let slots = &slots;
            let executed = &executed;
            let steals = &steals;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (front), then steal (back of the fullest
                // victim).
                let mut job = deques[w].lock().expect("deque lock").pop_front();
                let mut stolen = false;
                if job.is_none() {
                    let victim = (0..threads)
                        .filter(|&v| v != w)
                        .max_by_key(|&v| deques[v].lock().expect("deque lock").len());
                    if let Some(v) = victim {
                        job = deques[v].lock().expect("deque lock").pop_back();
                        stolen = job.is_some();
                    }
                }
                match job {
                    Some(idx) => {
                        let result = f(idx);
                        *slots[idx].lock().expect("slot lock") = Some(result);
                        executed[w].fetch_add(1, Ordering::Relaxed);
                        if stolen {
                            steals[w].fetch_add(1, Ordering::Relaxed);
                        }
                        remaining.fetch_sub(1, Ordering::AcqRel);
                    }
                    None => {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // Another worker still owns in-flight jobs; nothing
                        // to steal right now.
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every job ran exactly once")
        })
        .collect();
    let stats = PoolStats {
        threads,
        executed: executed.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        steals: steals.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
    };
    (results, stats)
}

fn effective_threads(requested: usize, jobs: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    t.clamp(1, jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_job_order() {
        for threads in [1, 2, 4, 8] {
            let (results, stats) = run_indexed(100, threads, |i| i * i);
            assert_eq!(results, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.executed.iter().sum::<usize>(), 100);
        }
    }

    #[test]
    fn zero_jobs() {
        let (results, stats) = run_indexed(0, 4, |i| i);
        assert!(results.is_empty());
        assert_eq!(stats.executed.iter().sum::<usize>(), 0);
    }

    #[test]
    fn more_threads_than_jobs() {
        let (results, stats) = run_indexed(3, 16, |i| i + 1);
        assert_eq!(results, vec![1, 2, 3]);
        assert!(stats.threads <= 3);
    }

    #[test]
    fn imbalanced_work_is_stolen() {
        // Front-loaded cost: worker 0's chunk is far heavier, so with the
        // stealing policy other workers must take some of it. Verify all
        // work completes and the slow chunk did not serialize the run into
        // worker 0 executing everything while others idle — i.e. every
        // worker executed something.
        let (results, stats) = run_indexed(64, 4, |i| {
            let spins = if i < 16 { 2_000_000 } else { 1_000 };
            (0..spins).fold(i as u64, |a, b| a ^ (b as u64).wrapping_mul(31))
        });
        assert_eq!(results.len(), 64);
        assert_eq!(stats.executed.iter().sum::<usize>(), 64);
        assert!(
            stats.executed.iter().all(|&e| e > 0),
            "every worker should get work: {:?}",
            stats.executed
        );
    }

    #[test]
    fn single_thread_runs_inline() {
        let id = std::thread::current().id();
        let (results, _) = run_indexed(5, 1, move |i| {
            assert_eq!(std::thread::current().id(), id);
            i
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
    }
}
