//! # awe-treelink
//!
//! Tree/link analysis (paper §IV): the `O(n)` *tree walk* computation of
//! steady states and moments for RC trees, generalized — exactly as the
//! paper describes — to circuits whose DC solution is *inexplicit* because
//! resistors form loops or run to ground (§4.2). In that case the handful
//! of resistor *links* get their currents from a small dense solve
//! (eq. (61)) layered on top of the linear-time walk.
//!
//! Floating capacitors are supported too: replacing a floating capacitor
//! by a current source simply injects current at *two* nodes, and the walk
//! is oblivious to where injections come from — this is the paper's point
//! that *"tree link analysis continues to apply without loss of
//! generality"*.
//!
//! Inductors and controlled sources are outside this crate's scope (use
//! `awe-mna` for those); the constructor rejects them.
//!
//! ## Example
//!
//! Elmore delays of the paper's Fig. 4 tree by pure tree walking:
//!
//! ```
//! use awe_circuit::papers::fig4;
//! use awe_circuit::Waveform;
//! use awe_treelink::TreeAnalysis;
//!
//! # fn main() -> Result<(), awe_treelink::TreeLinkError> {
//! let p = fig4(Waveform::step(0.0, 5.0));
//! let ta = TreeAnalysis::new(&p.circuit)?;
//! let t_d = ta.elmore_delays()?;
//! // T_D at n4 = (R1+R3+R4)C4 + (R1+R3)C3 + R1C2 + R1C1 = 7e-4 s.
//! assert!((t_d[p.output] - 7e-4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Index-based loops mirror the matrix algebra they implement; iterator
// rewrites would obscure the numerics.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

use std::error::Error;
use std::fmt;

use awe_circuit::{Circuit, Element, NodeId, SpanningTree, GROUND};
use awe_numeric::{Matrix, NumericError};

/// Errors from tree/link analysis.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TreeLinkError {
    /// The circuit contains element kinds the tree walk cannot handle
    /// (inductors, current sources, controlled sources).
    UnsupportedElement {
        /// Name of the offending element.
        element: String,
        /// Its kind tag.
        kind: char,
    },
    /// Some node is not spanned by the resistor/source tree.
    Disconnected {
        /// An unreachable node.
        node: NodeId,
    },
    /// A capacitor ended up as a tree branch (no resistive path spans its
    /// terminals) — the DC solution does not exist.
    CapacitorInTree(String),
    /// Elmore delays require a *strict* RC tree (no resistor links); this
    /// circuit has them.
    NotRcTree,
    /// Numeric failure in the link-current solve.
    Numeric(NumericError),
}

impl fmt::Display for TreeLinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeLinkError::UnsupportedElement { element, kind } => {
                write!(
                    f,
                    "element {element} of kind {kind} is not supported by tree/link analysis"
                )
            }
            TreeLinkError::Disconnected { node } => {
                write!(f, "node {node} is not spanned by the resistor/source tree")
            }
            TreeLinkError::CapacitorInTree(name) => {
                write!(
                    f,
                    "capacitor {name} became a tree branch; dc solution is undefined"
                )
            }
            TreeLinkError::NotRcTree => {
                write!(
                    f,
                    "circuit is not a strict RC tree (resistor links present)"
                )
            }
            TreeLinkError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl Error for TreeLinkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TreeLinkError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for TreeLinkError {
    fn from(e: NumericError) -> Self {
        TreeLinkError::Numeric(e)
    }
}

/// How a tree edge conducts.
#[derive(Clone, Copy, Debug)]
enum EdgeKind {
    /// Resistor with the given resistance and its element index.
    Resistor {
        /// Resistance in ohms.
        ohms: f64,
        /// Index into the circuit's element list.
        element: usize,
    },
    /// Voltage source with the given column into the source vector and
    /// polarity `+1` if the child node is the source's `pos` terminal.
    Source { index: usize, sign: f64 },
}

/// Tree/link analyzer for R/C/V circuits.
///
/// Construction is `O(n)`; every [`TreeAnalysis::solve`] is
/// `O(n + n·L + L³)` where `L` is the (typically tiny) number of resistor
/// links.
pub struct TreeAnalysis<'a> {
    circuit: &'a Circuit,
    /// Pre-order over nodes (parents before children), rooted at ground.
    preorder: Vec<NodeId>,
    /// Parent and connecting edge for each node (`None` for ground).
    up: Vec<Option<(NodeId, EdgeKind)>>,
    /// Resistor elements that became links: `(element_idx, a, b, ohms)`.
    resistor_links: Vec<(usize, NodeId, NodeId, f64)>,
    /// Independent source count (columns of the source vector).
    num_sources: usize,
    /// Precomputed unit-link responses `v^{(l)} = walk(e_b - e_a)`.
    link_responses: Vec<Vec<f64>>,
    /// Precomputed dense link system LU (left-hand side of eq. (61)).
    link_lu: Option<awe_numeric::Lu>,
}

impl<'a> TreeAnalysis<'a> {
    /// Builds the analyzer.
    ///
    /// # Errors
    ///
    /// * [`TreeLinkError::UnsupportedElement`] for L/I/controlled elements.
    /// * [`TreeLinkError::Disconnected`] if the R/V tree does not span all
    ///   nodes.
    /// * [`TreeLinkError::CapacitorInTree`] if a capacitor had to enter
    ///   the tree (no DC solution).
    pub fn new(circuit: &'a Circuit) -> Result<Self, TreeLinkError> {
        // Validate the element class and count sources.
        let mut num_sources = 0usize;
        let mut source_index = vec![usize::MAX; circuit.elements().len()];
        for (i, e) in circuit.elements().iter().enumerate() {
            match e {
                Element::Resistor { .. } | Element::Capacitor { .. } => {}
                Element::VoltageSource { .. } => {
                    source_index[i] = num_sources;
                    num_sources += 1;
                }
                other => {
                    return Err(TreeLinkError::UnsupportedElement {
                        element: other.name().to_owned(),
                        kind: other.kind(),
                    })
                }
            }
        }

        let st = SpanningTree::build(circuit);
        let n = circuit.num_nodes();
        // Every node any element touches must be reachable from ground.
        for e in circuit.elements() {
            for node in e.nodes() {
                if st.depth[node] == usize::MAX {
                    return Err(TreeLinkError::Disconnected { node });
                }
            }
        }

        // Classify tree edges.
        let mut up: Vec<Option<(NodeId, EdgeKind)>> = vec![None; n];
        for node in 0..n {
            if let Some((parent, eidx)) = st.parent[node] {
                let e = &circuit.elements()[eidx];
                let kind = match e {
                    Element::Resistor { ohms, .. } => EdgeKind::Resistor {
                        ohms: *ohms,
                        element: eidx,
                    },
                    Element::VoltageSource { pos, .. } => {
                        let sign = if node == *pos { 1.0 } else { -1.0 };
                        EdgeKind::Source {
                            index: source_index[eidx],
                            sign,
                        }
                    }
                    Element::Capacitor { name, .. } => {
                        return Err(TreeLinkError::CapacitorInTree(name.clone()))
                    }
                    _ => unreachable!("validated above"),
                };
                up[node] = Some((parent, kind));
            }
        }

        let mut resistor_links = Vec::new();
        for &l in &st.link_edges {
            match &circuit.elements()[l] {
                Element::Resistor { a, b, ohms, .. } => {
                    resistor_links.push((l, *a, *b, *ohms));
                }
                Element::Capacitor { .. } => {} // expected links
                Element::VoltageSource { name, .. } => {
                    // A V-source link means a source loop; reject (MNA
                    // handles that case).
                    return Err(TreeLinkError::UnsupportedElement {
                        element: name.clone(),
                        kind: 'V',
                    });
                }
                _ => unreachable!("validated above"),
            }
        }

        // Pre-order traversal: parents before children.
        let mut preorder: Vec<NodeId> = (0..n).filter(|&v| st.depth[v] != usize::MAX).collect();
        preorder.sort_by_key(|&v| st.depth[v]);

        let mut ta = TreeAnalysis {
            circuit,
            preorder,
            up,
            resistor_links,
            num_sources,
            link_responses: Vec::new(),
            link_lu: None,
        };

        // Precompute link machinery (eq. (61)): unit responses and the
        // L×L system matrix M[l][k] = v^{(k)}_a - v^{(k)}_b - δ_lk·R_l.
        if !ta.resistor_links.is_empty() {
            let nl = ta.resistor_links.len();
            let zero_u = vec![0.0; ta.num_sources];
            let mut responses = Vec::with_capacity(nl);
            for &(_, a, b, _) in &ta.resistor_links {
                let mut w = vec![0.0; n];
                // Unit link current a→b: leaves a, enters b.
                w[a] -= 1.0;
                w[b] += 1.0;
                responses.push(ta.walk(&w, &zero_u));
            }
            let mut m = Matrix::zeros(nl, nl);
            for (l, &(_, a, b, r)) in ta.resistor_links.iter().enumerate() {
                for (k, resp) in responses.iter().enumerate() {
                    m[(l, k)] = resp[a] - resp[b];
                    if l == k {
                        m[(l, k)] -= r;
                    }
                }
            }
            ta.link_responses = responses;
            ta.link_lu = Some(awe_numeric::Lu::factor(&m)?);
        }
        Ok(ta)
    }

    /// `true` when the circuit is a strict RC tree (no resistor links), so
    /// the walk alone solves it and Elmore delays are defined.
    pub fn is_strict_tree(&self) -> bool {
        self.resistor_links.is_empty()
    }

    /// Number of resistor links (the `L` in the solve cost `O(n + L³)`).
    pub fn num_resistor_links(&self) -> usize {
        self.resistor_links.len()
    }

    /// Raw two-pass tree walk: node voltages for current injections `w`
    /// (positive = into the node) and source values `u`, ignoring links.
    fn walk(&self, w: &[f64], u: &[f64]) -> Vec<f64> {
        let n = self.circuit.num_nodes();
        debug_assert_eq!(w.len(), n);
        // Pass 1 (post-order): subtree injection sums.
        let mut subtree = w.to_vec();
        for &node in self.preorder.iter().rev() {
            if let Some((parent, _)) = self.up[node] {
                subtree[parent] += subtree[node];
            }
        }
        // Pass 2 (pre-order): voltages from the root down. Injections exit
        // through the root, so the current flowing child→parent through a
        // tree resistor equals the subtree sum and
        // v_child = v_parent + R·S_child.
        let mut v = vec![0.0; n];
        for &node in &self.preorder {
            if let Some((parent, kind)) = self.up[node] {
                v[node] = match kind {
                    EdgeKind::Resistor { ohms, .. } => v[parent] + ohms * subtree[node],
                    EdgeKind::Source { index, sign } => v[parent] + sign * u[index],
                };
            }
        }
        v
    }

    /// Solves for all node voltages given current injections `w` (indexed
    /// by node, positive into the node) and independent source values `u`.
    ///
    /// This is the paper's generalized tree walk: `O(n)` for a strict
    /// tree, plus a small dense correction when resistor links exist
    /// (§4.2).
    ///
    /// # Errors
    ///
    /// Propagates numeric failures from the link solve.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `u` have the wrong length.
    pub fn solve(&self, w: &[f64], u: &[f64]) -> Result<Vec<f64>, TreeLinkError> {
        assert_eq!(w.len(), self.circuit.num_nodes(), "injection vector length");
        assert_eq!(u.len(), self.num_sources, "source vector length");
        let mut v = self.walk(w, u);
        if let Some(lu) = &self.link_lu {
            // Solve M·i = -(v0_a - v0_b) per link so the corrected
            // voltages satisfy v_a - v_b = R·i.
            let rhs: Vec<f64> = self
                .resistor_links
                .iter()
                .map(|&(_, a, b, _)| -(v[a] - v[b]))
                .collect();
            let currents = lu.solve(&rhs)?;
            for (i_l, resp) in currents.iter().zip(&self.link_responses) {
                for (vi, ri) in v.iter_mut().zip(resp) {
                    *vi += i_l * ri;
                }
            }
        }
        Ok(v)
    }

    /// DC steady state: capacitors open (zero injections), sources at `u`.
    ///
    /// # Errors
    ///
    /// Propagates numeric failures from the link solve.
    pub fn dc(&self, u: &[f64]) -> Result<Vec<f64>, TreeLinkError> {
        self.solve(&vec![0.0; self.circuit.num_nodes()], u)
    }

    /// Injection image of a node-voltage vector under the capacitance
    /// operator: `w = C·v` evaluated element-wise (handles floating
    /// capacitors: both terminals receive opposite contributions).
    pub fn apply_capacitance(&self, v: &[f64]) -> Vec<f64> {
        let mut w = vec![0.0; self.circuit.num_nodes()];
        for e in self.circuit.elements() {
            if let Element::Capacitor { a, b, farads, .. } = e {
                let va = if *a == GROUND { 0.0 } else { v[*a] };
                let vb = if *b == GROUND { 0.0 } else { v[*b] };
                let q = farads * (va - vb);
                if *a != GROUND {
                    w[*a] += q;
                }
                if *b != GROUND {
                    w[*b] -= q;
                }
            }
        }
        w[GROUND] = 0.0;
        w
    }

    /// Moment sequence `[m_{-1}, m_0, …]` (same convention as
    /// `awe_mna::MomentEngine`) for a *step* piece with per-source jumps
    /// `u_jump`. `count` entries are produced (an order-`q` match needs
    /// `2q`).
    ///
    /// # Errors
    ///
    /// Propagates numeric failures from the link solve.
    pub fn step_moments(
        &self,
        u_jump: &[f64],
        count: usize,
    ) -> Result<Vec<Vec<f64>>, TreeLinkError> {
        let zero_w = vec![0.0; self.circuit.num_nodes()];
        let a = self.solve(&zero_w, u_jump)?;
        let m_minus1: Vec<f64> = a.iter().map(|x| -x).collect();
        let mut seq = Vec::with_capacity(count);
        seq.push(m_minus1.clone());
        let mut prev = m_minus1;
        let zero_u = vec![0.0; self.num_sources];
        for _ in 1..count {
            // m_k = -G⁻¹·C·m_{k-1}: inject C·m_{k-1}, negate the solution.
            let w = self.apply_capacitance(&prev);
            let sol = self.solve(&w, &zero_u)?;
            prev = sol.into_iter().map(|x| -x).collect();
            seq.push(prev.clone());
        }
        Ok(seq)
    }

    /// Elmore delays `T_D` for every node of a strict RC tree, by one
    /// `O(n)` walk (the paper's eq. (56): `m_0 = V·T_D` for a unit step,
    /// so `T_D = m_0` at unit swing).
    ///
    /// # Errors
    ///
    /// [`TreeLinkError::NotRcTree`] if resistor links exist — use
    /// [`TreeAnalysis::step_moments`] and the §2.2 scaling (eq. (3))
    /// instead.
    pub fn elmore_delays(&self) -> Result<Vec<f64>, TreeLinkError> {
        if !self.is_strict_tree() {
            return Err(TreeLinkError::NotRcTree);
        }
        let ones = vec![1.0; self.num_sources];
        let moments = self.step_moments(&ones, 2)?;
        Ok(moments[1].clone())
    }

    /// First-order sensitivities of the Elmore delay at `node` to every
    /// capacitance and tree resistance — the primitive of wire-sizing and
    /// buffering optimizations:
    ///
    /// * `∂T_D(i)/∂C_k = R(path(i) ∩ path(k))`, the shared path
    ///   resistance, obtained for *all* k from one unit-injection walk;
    /// * `∂T_D(i)/∂R_e = Σ_{k downstream of e} C_k` when `e` lies on the
    ///   path to `i` (zero otherwise), obtained from one subtree
    ///   accumulation.
    ///
    /// Returns `(element_name, derivative)` pairs — seconds/farad for
    /// capacitors, seconds/ohm for resistors.
    ///
    /// # Errors
    ///
    /// [`TreeLinkError::NotRcTree`] when resistor links exist (the
    /// closed-form derivatives require the strict tree structure).
    pub fn elmore_sensitivities(&self, node: NodeId) -> Result<ElmoreSensitivities, TreeLinkError> {
        if !self.is_strict_tree() {
            return Err(TreeLinkError::NotRcTree);
        }
        let n = self.circuit.num_nodes();
        // Shared path resistances: unit injection at `node`, sources off.
        let mut w = vec![0.0; n];
        if node < n && node != GROUND {
            w[node] = 1.0;
        }
        let r_common = self.solve(&w, &vec![0.0; self.num_sources])?;
        let mut wrt_capacitance = Vec::new();
        for e in self.circuit.elements() {
            if let Element::Capacitor { name, a, b, .. } = e {
                // For a (possibly floating) capacitor the delay moment
                // contribution differentiates to R_common(a) - R_common(b).
                let ra = if *a == GROUND { 0.0 } else { r_common[*a] };
                let rb = if *b == GROUND { 0.0 } else { r_common[*b] };
                wrt_capacitance.push((name.clone(), ra - rb));
            }
        }

        // Downstream capacitance per tree edge: one reverse accumulation.
        let mut subtree_cap = vec![0.0; n];
        for e in self.circuit.elements() {
            if let Element::Capacitor { a, b, farads, .. } = e {
                if *a != GROUND {
                    subtree_cap[*a] += farads;
                }
                if *b != GROUND {
                    subtree_cap[*b] -= farads;
                }
            }
        }
        for &nd in self.preorder.iter().rev() {
            if let Some((parent, _)) = self.up[nd] {
                subtree_cap[parent] += subtree_cap[nd];
            }
        }
        // Walk the path from `node` to the root: each resistor edge on it
        // carries derivative = its subtree capacitance.
        let mut wrt_resistance = Vec::new();
        let mut cur = node;
        while let Some((parent, kind)) = self.up.get(cur).copied().flatten() {
            if let EdgeKind::Resistor { element, .. } = kind {
                let name = self.circuit.elements()[element].name().to_owned();
                wrt_resistance.push((name, subtree_cap[cur]));
            }
            cur = parent;
        }
        Ok(ElmoreSensitivities {
            wrt_capacitance,
            wrt_resistance,
        })
    }
}

/// First-order Elmore delay derivatives at one node; see
/// [`TreeAnalysis::elmore_sensitivities`].
#[derive(Clone, Debug)]
pub struct ElmoreSensitivities {
    /// `(capacitor name, ∂T_D/∂C)` in seconds per farad.
    pub wrt_capacitance: Vec<(String, f64)>,
    /// `(resistor name, ∂T_D/∂R)` in seconds per ohm, for resistors on
    /// the path from the source to the node (others are zero and
    /// omitted).
    pub wrt_resistance: Vec<(String, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::papers::{fig4, fig9};
    use awe_circuit::Waveform;

    fn step5() -> Waveform {
        Waveform::step(0.0, 5.0)
    }

    #[test]
    fn fig4_elmore_matches_closed_form() {
        let p = fig4(step5());
        let ta = TreeAnalysis::new(&p.circuit).unwrap();
        assert!(ta.is_strict_tree());
        let t_d = ta.elmore_delays().unwrap();
        // Closed forms from the paper's eq. (56) with R = 1 Ω, C = 1e-4 F:
        // T_D¹ = R1(C1+C2+C3+C4)            = 4e-4
        // T_D² = T_D¹ + R2·C2               = 5e-4
        // T_D³ = T_D¹ + R3(C3+C4)           = 6e-4
        // T_D⁴ = T_D³ + R4·C4               = 7e-4
        let n = &p.nodes;
        assert!((t_d[n[0]] - 4e-4).abs() < 1e-15);
        assert!((t_d[n[1]] - 5e-4).abs() < 1e-15);
        assert!((t_d[n[2]] - 6e-4).abs() < 1e-15);
        assert!((t_d[n[3]] - 7e-4).abs() < 1e-15);
    }

    #[test]
    fn dc_is_flat_for_strict_tree() {
        let p = fig4(step5());
        let ta = TreeAnalysis::new(&p.circuit).unwrap();
        let v = ta.dc(&[5.0]).unwrap();
        for &node in &p.nodes {
            assert!((v[node] - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fig9_grounded_resistor_dc() {
        // R5 = 4 Ω at n1: steady state 5·4/(1+4) = 4 V at every tree node.
        let p = fig9(step5());
        let ta = TreeAnalysis::new(&p.circuit).unwrap();
        assert_eq!(ta.num_resistor_links(), 1);
        assert!(!ta.is_strict_tree());
        let v = ta.dc(&[5.0]).unwrap();
        for &node in &p.nodes {
            assert!((v[node] - 4.0).abs() < 1e-12, "v = {}", v[node]);
        }
        assert!(matches!(ta.elmore_delays(), Err(TreeLinkError::NotRcTree)));
    }

    #[test]
    fn moments_match_mna_engine() {
        // The O(n) walk and the dense MNA engine must agree moment by
        // moment (on the grounded-resistor circuit, exercising the link
        // correction).
        use awe_mna::{MnaSystem, MomentEngine};
        let p = fig9(step5());
        let ta = TreeAnalysis::new(&p.circuit).unwrap();
        let walk_m = ta.step_moments(&[5.0], 6).unwrap();

        let sys = MnaSystem::build(&p.circuit).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let dec = eng.decompose(6).unwrap();
        assert_eq!(dec.pieces.len(), 1);
        let piece = &dec.pieces[0];
        for &node in &p.nodes {
            let iu = sys.unknown_of_node(node).unwrap();
            for k in 0..6 {
                let a = walk_m[k][node];
                let b = piece.moments[k][iu];
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1e-12),
                    "node {node} moment {k}: walk {a} vs mna {b}"
                );
            }
        }
    }

    #[test]
    fn floating_cap_injections() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        ckt.add_vsource("V1", n1, GROUND, Waveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", n1, n2, 1.0).unwrap();
        ckt.add_capacitor("Cf", n1, n2, 2.0).unwrap();
        let ta = TreeAnalysis::new(&ckt).unwrap();
        let mut v = vec![0.0; ckt.num_nodes()];
        v[n1] = 3.0;
        v[n2] = 1.0;
        let w = ta.apply_capacitance(&v);
        assert_eq!(w[n1], 4.0);
        assert_eq!(w[n2], -4.0);
    }

    #[test]
    fn floating_cap_moments_match_mna() {
        use awe_circuit::papers::fig22;
        use awe_mna::{MnaSystem, MomentEngine};
        let p = fig22(step5(), None);
        let ta = TreeAnalysis::new(&p.circuit).unwrap();
        let walk_m = ta.step_moments(&[5.0], 4).unwrap();
        let sys = MnaSystem::build(&p.circuit).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let dec = eng.decompose(4).unwrap();
        let piece = &dec.pieces[0];
        for &node in &p.nodes {
            let iu = sys.unknown_of_node(node).unwrap();
            for k in 0..4 {
                let a = walk_m[k][node];
                let b = piece.moments[k][iu];
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1e-15),
                    "node {node} moment {k}: walk {a} vs mna {b}"
                );
            }
        }
    }

    #[test]
    fn rejects_unsupported_elements() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n1, GROUND, Waveform::dc(1.0))
            .unwrap();
        let n2 = ckt.node("n2");
        ckt.add_inductor("L1", n1, n2, 1e-9).unwrap();
        ckt.add_resistor("R1", n2, GROUND, 1.0).unwrap();
        assert!(matches!(
            TreeAnalysis::new(&ckt),
            Err(TreeLinkError::UnsupportedElement { kind: 'L', .. })
        ));
    }

    #[test]
    fn rejects_disconnected() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        ckt.add_resistor("R1", n1, GROUND, 1.0).unwrap();
        let na = ckt.node("a");
        let nb = ckt.node("b");
        ckt.add_capacitor("Cx", na, nb, 1e-12).unwrap();
        assert!(TreeAnalysis::new(&ckt).is_err());
    }

    #[test]
    fn mesh_multiple_links() {
        use awe_circuit::generators::rc_mesh;
        use awe_mna::{MnaSystem, MomentEngine};
        let g = rc_mesh(3, 3, 2.0, 1e-12, step5());
        let ta = TreeAnalysis::new(&g.circuit).unwrap();
        assert!(ta.num_resistor_links() >= 3);
        // DC must be flat 5 V (no grounded R in the mesh).
        let v = ta.dc(&[5.0]).unwrap();
        for &node in &g.nodes {
            assert!((v[node] - 5.0).abs() < 1e-9);
        }
        // And must agree with MNA on the step moments.
        let sys = MnaSystem::build(&g.circuit).unwrap();
        let eng = MomentEngine::new(&sys).unwrap();
        let dec = eng.decompose(2).unwrap();
        let walk_m = ta.step_moments(&[5.0], 2).unwrap();
        for &node in &g.nodes {
            let iu = sys.unknown_of_node(node).unwrap();
            let a = walk_m[1][node];
            let b = dec.pieces[0].moments[1][iu];
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1e-15), "{a} vs {b}");
        }
    }

    #[test]
    fn error_display() {
        let e = TreeLinkError::Disconnected { node: 7 };
        assert!(e.to_string().contains("node 7"));
        let e2 = TreeLinkError::CapacitorInTree("C9".into());
        assert!(e2.to_string().contains("C9"));
    }
}

#[cfg(test)]
mod sensitivity_tests {
    use super::*;
    use awe_circuit::papers::fig4;
    use awe_circuit::Waveform;

    #[test]
    fn fig4_sensitivities_match_closed_form() {
        // T_D⁴ = (R1+R3+R4)C4 + (R1+R3)C3 + R1C2 + R1C1 with R = 1 Ω:
        // ∂/∂C4 = 3, ∂/∂C3 = 2, ∂/∂C2 = ∂/∂C1 = 1;
        // ∂/∂R4 = C4 = 1e-4, ∂/∂R3 = C3+C4 = 2e-4, ∂/∂R1 = ΣC = 4e-4.
        let p = fig4(Waveform::step(0.0, 5.0));
        let ta = TreeAnalysis::new(&p.circuit).unwrap();
        let s = ta.elmore_sensitivities(p.output).unwrap();
        let cap = |name: &str| {
            s.wrt_capacitance
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!((cap("C4") - 3.0).abs() < 1e-12);
        assert!((cap("C3") - 2.0).abs() < 1e-12);
        assert!((cap("C2") - 1.0).abs() < 1e-12);
        assert!((cap("C1") - 1.0).abs() < 1e-12);
        let res = |name: &str| {
            s.wrt_resistance
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!((res("R4") - 1e-4).abs() < 1e-16);
        assert!((res("R3") - 2e-4).abs() < 1e-16);
        assert!((res("R1") - 4e-4).abs() < 1e-16);
        // R2 is off the path to n4: omitted.
        assert!(s.wrt_resistance.iter().all(|(n, _)| n != "R2"));
    }

    #[test]
    fn sensitivities_match_finite_differences() {
        use awe_circuit::generators::random_rc_tree;
        use awe_circuit::parse_deck;
        let g = random_rc_tree(
            8,
            (10.0, 200.0),
            (0.1e-12, 0.5e-12),
            11,
            Waveform::step(0.0, 1.0),
        );
        let ta = TreeAnalysis::new(&g.circuit).unwrap();
        let t0 = ta.elmore_delays().unwrap()[g.output];
        let s = ta.elmore_sensitivities(g.output).unwrap();
        let out_name = g.circuit.node_name(g.output).to_owned();

        // Perturb each element by 1 % through a deck round trip and
        // compare the recomputed Elmore delay against the first-order
        // prediction (exact for Elmore, which is multilinear in R and C).
        let deck = g.circuit.to_deck();
        let perturbed_delay = |elem: &str, factor: f64| -> f64 {
            let new_deck: String = deck
                .lines()
                .map(|line| {
                    if line.starts_with(&format!("{elem} ")) {
                        let mut parts: Vec<String> =
                            line.split_whitespace().map(str::to_owned).collect();
                        let v: f64 = parts[3].parse().unwrap();
                        parts[3] = format!("{:e}", v * factor);
                        parts.join(" ")
                    } else {
                        line.to_owned()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let ckt = parse_deck(&new_deck).unwrap();
            let node = ckt.find_node(&out_name).unwrap();
            let ta2 = TreeAnalysis::new(&ckt).unwrap();
            ta2.elmore_delays().unwrap()[node]
        };

        for (name, d) in s.wrt_capacitance.iter().chain(&s.wrt_resistance) {
            let v_old = match g.circuit.element(name).unwrap() {
                Element::Capacitor { farads, .. } => *farads,
                Element::Resistor { ohms, .. } => *ohms,
                _ => unreachable!(),
            };
            let dv = v_old * 0.01;
            let t1 = perturbed_delay(name, 1.01);
            let predicted = t0 + d * dv;
            assert!(
                (t1 - predicted).abs() <= 1e-6 * t0,
                "{name}: {t1} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn sensitivities_require_strict_tree() {
        use awe_circuit::papers::fig9;
        let p = fig9(Waveform::step(0.0, 5.0));
        let ta = TreeAnalysis::new(&p.circuit).unwrap();
        assert!(matches!(
            ta.elmore_sensitivities(p.output),
            Err(TreeLinkError::NotRcTree)
        ));
    }
}
