//! Quickstart: parse a SPICE-like deck, run AWE, and compare against the
//! classical Elmore estimate and the reference simulator.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use awesim::circuit::parse_deck;
use awesim::core::elmore::elmore_delay;
use awesim::core::AweEngine;
use awesim::sim::{simulate, TransientOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-stage RC interconnect: driver resistance, two wire segments,
    // a branch load — the paper's Fig. 1 "stage" in miniature.
    let deck = "
* quickstart stage: driver -> wire -> branch
V1 in 0 STEP 0 5
Rdrv in n1 120
C1 n1 0 0.4p
Rw1 n1 n2 80
C2 n2 0 0.3p
Rw2 n2 out 60
Cout out 0 0.5p
Rbr n2 br 150
Cbr br 0 0.2p
.end";
    let ckt = parse_deck(deck)?;
    let out = ckt.find_node("out").expect("deck defines `out`");

    // --- AWE, orders 1..3 -------------------------------------------------
    let engine = AweEngine::new(&ckt)?;
    println!("AWE at node `out`:");
    for order in 1..=3 {
        let approx = engine.approximate(out, order)?;
        let delay = approx.delay_50().expect("rising response");
        println!(
            "  order {order}: 50% delay = {:.1} ps, error estimate = {}",
            delay * 1e12,
            approx
                .error_estimate
                .map_or("n/a".to_owned(), |e| format!("{:.2} %", e * 100.0)),
        );
    }

    // --- Classical Elmore bound -------------------------------------------
    let t_d = elmore_delay(&ckt, out)?;
    println!("Elmore delay (T_D): {:.1} ps", t_d * 1e12);
    println!(
        "Penfield-Rubinstein 50% estimate (T_D·ln2): {:.1} ps",
        t_d * 2f64.ln() * 1e12
    );

    // --- Reference simulation ----------------------------------------------
    let sim = simulate(&ckt, TransientOptions::new(10.0 * t_d))?;
    let d_sim = sim.delay_50(out).expect("rising waveform");
    println!("simulated 50% delay:  {:.1} ps", d_sim * 1e12);

    // --- Waveform table ----------------------------------------------------
    let awe2 = engine.approximate(out, 2)?;
    println!("\n   t [ps]   AWE-2 [V]   sim [V]");
    for i in 0..=10 {
        let t = i as f64 * t_d / 2.0;
        println!(
            "  {:7.1}   {:9.4}   {:7.4}",
            t * 1e12,
            awe2.eval(t),
            sim.value_at(out, t)
        );
    }
    Ok(())
}
