//! Sparse LU factorization (left-looking Gilbert–Peierls with threshold
//! partial pivoting), split KLU-style into a reusable symbolic analysis
//! and a numeric sweep.
//!
//! This is the factorization that honors the paper's §3.2 cost model on
//! general circuits: MNA matrices carry only a few entries per row, and a
//! left-looking LU whose per-column work is proportional to the *actual*
//! fill — found by depth-first reachability instead of dense scans — keeps
//! both the one-time factorization and every moment resubstitution near
//! linear for tree- and mesh-like interconnect.
//!
//! [`SparseLu::factor`] records the value-independent elimination pattern
//! in an [`LuSymbolic`]; [`SparseLu::refactor`] replays only the numeric
//! sweep against a stored pattern, which is what lets a batch of
//! structurally identical nets pay for symbolic analysis exactly once.

use std::sync::Arc;

use awe_obs::Health;

use crate::error::NumericError;
use crate::sparse::SparseMatrix;
use crate::symbolic::{LuSymbolic, SolveScratch};

const NONE: usize = usize::MAX;

/// Element growth observed across numeric (re)factorizations — max |U|
/// over max |A| per factorization. Large growth flags a pivot order gone
/// stale for the current values.
static PIVOT_GROWTH: awe_obs::Histogram = awe_obs::Histogram::new("lu.pivot_growth");

/// Refactorization admissibility outcomes across a recording. Shared with
/// the lane-strided refactor in [`crate::lanes`] so scalar and lane sweeps
/// report through one pair of counters.
static REFACTOR_ACCEPTED: awe_obs::Counter = awe_obs::Counter::new("lu.refactor.accepted");
pub(crate) static REFACTOR_REJECTED: awe_obs::Counter =
    awe_obs::Counter::new("lu.refactor.rejected");

/// Records the pivot-growth health event for a finished factorization:
/// `max |U| / max |A|`, the classic stability monitor for a fixed pivot
/// sequence. Only called when a recording is active, so the extra pass
/// over the values costs nothing in normal runs.
fn note_pivot_growth(a: &SparseMatrix, u_vals: &[f64], u_diag: &[f64]) {
    let mut a_max = 0.0f64;
    for j in 0..a.cols() {
        let (_, vals) = a.col(j);
        for &v in vals {
            a_max = a_max.max(v.abs());
        }
    }
    if a_max == 0.0 {
        return;
    }
    let mut u_max = 0.0f64;
    for &v in u_vals {
        u_max = u_max.max(v.abs());
    }
    for &v in u_diag {
        u_max = u_max.max(v.abs());
    }
    let growth = u_max / a_max;
    PIVOT_GROWTH.record(growth);
    awe_obs::health(Health::PivotGrowth { growth });
}

/// Diagonal-preference threshold: the structural diagonal is kept as the
/// pivot when its magnitude is within this factor of the column maximum,
/// trading a bounded growth factor for less fill (and for a pivot
/// sequence that survives value perturbations).
const PIVOT_THRESHOLD: f64 = 0.1;

/// Refactorization admissibility floor, relative to the column maximum:
/// below this the stored pivot order no longer controls element growth
/// for the new values and the refactor is rejected as singular. The
/// lane-strided refactor ([`crate::lanes`]) applies the identical test
/// per lane.
pub(crate) const REFACTOR_ADMISSIBILITY: f64 = 1e-10;

/// Sparse LU factors `P·A·Q = L·U` with threshold partial pivoting.
///
/// `P` comes from the pivoting, `Q` is the caller-supplied (or identity)
/// column order — pass an RCM order from
/// [`SparseMatrix::rcm_ordering`] to keep fill low on circuit matrices.
///
/// The factorization is two-phase: the symbolic half (pattern, pivot
/// order) lives in a shared [`LuSymbolic`], the numeric half (values) in
/// this struct. [`SparseLu::refactor`] rebuilds the numeric half against
/// an existing pattern without any symbolic re-analysis.
///
/// # Examples
///
/// ```
/// use awe_numeric::{SparseLu, SparseMatrix};
///
/// # fn main() -> Result<(), awe_numeric::NumericError> {
/// let a = SparseMatrix::from_triplets(
///     2,
///     2,
///     &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
/// );
/// let lu = SparseLu::factor(&a, None)?;
/// let x = lu.solve(&[3.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
///
/// // Same structure, new values: numeric sweep only.
/// let a2 = SparseMatrix::from_triplets(
///     2,
///     2,
///     &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 5.0)],
/// );
/// let lu2 = SparseLu::refactor(lu.symbolic(), &a2)?;
/// let x2 = lu2.solve(&[5.0, 6.0])?;
/// assert!((x2[0] - 1.0).abs() < 1e-12 && (x2[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SparseLu {
    /// Shared value-independent pattern (column order, pivot sequence,
    /// L/U fill).
    symbolic: Arc<LuSymbolic>,
    /// L values, aligned with `symbolic.l_rows` (unit diagonal implicit).
    l_vals: Vec<f64>,
    /// U values, aligned with `symbolic.u_pos`.
    u_vals: Vec<f64>,
    /// U diagonal (the pivots), one per elimination step.
    u_diag: Vec<f64>,
}

impl SparseLu {
    /// Factors a square sparse matrix, recording the symbolic analysis
    /// for later reuse. `col_order`, if given, lists the original columns
    /// in elimination order (length `n`, a permutation).
    ///
    /// Pivoting is threshold-based: the diagonal candidate is kept when
    /// its magnitude is within a factor 10 of the column maximum,
    /// trading a bounded growth factor for less fill.
    ///
    /// The emitted L/U patterns are *structural*: an entry reachable by
    /// the elimination graph is stored even when its value cancels to
    /// exact zero, so the pattern depends only on the matrix structure
    /// and the pivot sequence — the invariant [`SparseLu::refactor`]
    /// relies on.
    ///
    /// # Errors
    ///
    /// * [`NumericError::NotSquare`] for non-square input.
    /// * [`NumericError::DimensionMismatch`] for a bad `col_order` length.
    /// * [`NumericError::Singular`] when a column has no usable pivot.
    pub fn factor(a: &SparseMatrix, col_order: Option<&[usize]>) -> Result<SparseLu, NumericError> {
        let mut sp = awe_obs::span("lu.factor");
        if a.rows() != a.cols() {
            return Err(NumericError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let q: Vec<usize> = match col_order {
            Some(order) => {
                if order.len() != n {
                    return Err(NumericError::DimensionMismatch {
                        expected: n,
                        actual: order.len(),
                    });
                }
                order.to_vec()
            }
            None => (0..n).collect(),
        };

        let mut pinv = vec![NONE; n]; // original row → pivot position
        let mut prow = vec![NONE; n];
        let mut l_ptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_ptr = vec![0usize];
        let mut u_pos: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut u_diag = vec![0.0f64; n];

        // Workspaces.
        let mut x = vec![0.0f64; n]; // dense accumulator over original rows
        let mut marked = vec![false; n]; // rows present in the pattern
        let mut pattern: Vec<usize> = Vec::new();
        let mut visited = vec![false; n]; // pivot positions seen by DFS
        let mut reach: Vec<usize> = Vec::new(); // reached pivot columns
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for k in 0..n {
            let j = q[k];
            // --- Symbolic: pivot columns reachable from A(:,j). ---
            reach.clear();
            let (a_rows, a_vals) = a.col(j);
            for &i in a_rows {
                let start = pinv[i];
                if start != NONE && !visited[start] {
                    // Iterative DFS with explicit (node, edge cursor).
                    dfs_stack.push((start, l_ptr[start]));
                    visited[start] = true;
                    while let Some(&mut (node, ref mut cursor)) = dfs_stack.last_mut() {
                        let end = l_ptr[node + 1];
                        let mut descended = false;
                        while *cursor < end {
                            let r = l_rows[*cursor];
                            *cursor += 1;
                            let m = pinv[r];
                            if m != NONE && !visited[m] {
                                visited[m] = true;
                                dfs_stack.push((m, l_ptr[m]));
                                descended = true;
                                break;
                            }
                        }
                        if !descended {
                            reach.push(node);
                            dfs_stack.pop();
                        }
                    }
                }
            }
            for &m in &reach {
                visited[m] = false; // reset for the next column
            }
            // Ascending pivot order is a valid schedule (every updater of
            // row `prow[m]` is a column < m) and — unlike DFS post-order —
            // is reproducible from the stored U pattern alone, which is
            // what lets `refactor` skip the DFS entirely.
            reach.sort_unstable();

            // --- Structural pattern: A(:,j) rows ∪ L rows of the reach. ---
            pattern.clear();
            for (&i, &v) in a_rows.iter().zip(a_vals) {
                x[i] = v;
                if !marked[i] {
                    marked[i] = true;
                    pattern.push(i);
                }
            }
            for &m in &reach {
                for idx in l_ptr[m]..l_ptr[m + 1] {
                    let r = l_rows[idx];
                    if !marked[r] {
                        marked[r] = true;
                        pattern.push(r);
                        x[r] = 0.0;
                    }
                }
            }

            // --- Numeric: apply reached-column updates, emit U. ---
            for &m in &reach {
                // x[prow[m]] is final here: its remaining updaters are all
                // columns < m, already processed in ascending order.
                let xm = x[prow[m]];
                u_pos.push(m);
                u_vals.push(xm);
                if xm != 0.0 {
                    for idx in l_ptr[m]..l_ptr[m + 1] {
                        x[l_rows[idx]] -= xm * l_vals[idx];
                    }
                }
            }

            // --- Pivot among non-pivotal pattern rows. ---
            let mut best = NONE;
            let mut best_mag = 0.0f64;
            let mut diag_mag = 0.0f64;
            for &i in &pattern {
                if pinv[i] == NONE {
                    let mag = x[i].abs();
                    if mag > best_mag {
                        best_mag = mag;
                        best = i;
                    }
                    if i == j {
                        diag_mag = mag;
                    }
                }
            }
            if best == NONE || best_mag == 0.0 {
                // Clean workspaces before reporting.
                for &i in &pattern {
                    x[i] = 0.0;
                    marked[i] = false;
                }
                return Err(NumericError::Singular { pivot: k });
            }
            // Threshold preference for the structural diagonal.
            let piv_row = if diag_mag >= PIVOT_THRESHOLD * best_mag {
                j
            } else {
                best
            };
            let piv_val = x[piv_row];

            // --- Emit L column k (structurally: every non-pivotal
            // pattern row except the pivot, zeros included). ---
            for &i in &pattern {
                if pinv[i] == NONE && i != piv_row {
                    l_rows.push(i);
                    l_vals.push(x[i] / piv_val);
                }
            }
            u_diag[k] = piv_val;
            u_ptr.push(u_pos.len());
            l_ptr.push(l_rows.len());
            pinv[piv_row] = k;
            prow[k] = piv_row;

            // Reset workspaces.
            for &i in &pattern {
                x[i] = 0.0;
                marked[i] = false;
            }
        }

        if sp.is_live() {
            sp.note(n as f64, (l_vals.len() + u_vals.len() + n) as f64);
            note_pivot_growth(a, &u_vals, &u_diag);
        }
        Ok(SparseLu {
            symbolic: Arc::new(LuSymbolic {
                n,
                q,
                prow,
                l_ptr,
                l_rows,
                u_ptr,
                u_pos,
                fingerprint: a.pattern_fingerprint(),
                pivot_threshold: PIVOT_THRESHOLD,
            }),
            l_vals,
            u_vals,
            u_diag,
        })
    }

    /// Numeric-only refactorization: rebuilds the L/U values for a matrix
    /// with the *same sparsity pattern* as the one `symbolic` was
    /// recorded from, replaying the stored column order, pivot sequence
    /// and fill pattern. No DFS, no pattern discovery, no pivot search —
    /// the whole symbolic phase is skipped.
    ///
    /// Update order matches [`SparseLu::factor`] (ascending pivot
    /// position), so when the values would lead a fresh factorization to
    /// the same pivot choices the two produce bit-identical factors.
    ///
    /// # Errors
    ///
    /// * [`NumericError::NotSquare`] / [`NumericError::DimensionMismatch`]
    ///   for shape changes.
    /// * [`NumericError::PatternMismatch`] when `a`'s sparsity pattern
    ///   differs from the analysed one.
    /// * [`NumericError::Singular`] when the new values make a stored
    ///   pivot inadmissible (zero, or negligible against its column), i.e.
    ///   the pattern no longer admits the stored pivot order.
    pub fn refactor(
        symbolic: &Arc<LuSymbolic>,
        a: &SparseMatrix,
    ) -> Result<SparseLu, NumericError> {
        let mut sp = awe_obs::span("lu.refactor");
        symbolic.check_matches(a)?;
        let s = &**symbolic;
        let n = s.n;
        let mut l_vals = vec![0.0f64; s.l_rows.len()];
        let mut u_vals = vec![0.0f64; s.u_pos.len()];
        let mut u_diag = vec![0.0f64; n];
        let mut x = vec![0.0f64; n];

        for k in 0..n {
            let (a_rows, a_vals) = a.col(s.q[k]);
            for (&i, &v) in a_rows.iter().zip(a_vals) {
                x[i] = v;
            }
            // Replay updates straight off the stored U pattern (ascending
            // pivot order — see `factor`).
            for idx in s.u_ptr[k]..s.u_ptr[k + 1] {
                let m = s.u_pos[idx];
                let xm = x[s.prow[m]];
                u_vals[idx] = xm;
                if xm != 0.0 {
                    for t in s.l_ptr[m]..s.l_ptr[m + 1] {
                        x[s.l_rows[t]] -= xm * l_vals[t];
                    }
                }
            }
            // Stored pivot row, new value: admissible only while it still
            // dominates its column enough to bound growth.
            let piv_row = s.prow[k];
            let piv = x[piv_row];
            let mut col_max = piv.abs();
            for t in s.l_ptr[k]..s.l_ptr[k + 1] {
                col_max = col_max.max(x[s.l_rows[t]].abs());
            }
            if piv == 0.0 || piv.abs() < REFACTOR_ADMISSIBILITY * col_max {
                // Clean the accumulator before reporting.
                for idx in s.u_ptr[k]..s.u_ptr[k + 1] {
                    x[s.prow[s.u_pos[idx]]] = 0.0;
                }
                x[piv_row] = 0.0;
                for t in s.l_ptr[k]..s.l_ptr[k + 1] {
                    x[s.l_rows[t]] = 0.0;
                }
                REFACTOR_REJECTED.incr();
                awe_obs::health(Health::RefactorRejected { pivot: k });
                return Err(NumericError::Singular { pivot: k });
            }
            for t in s.l_ptr[k]..s.l_ptr[k + 1] {
                l_vals[t] = x[s.l_rows[t]] / piv;
            }
            u_diag[k] = piv;
            // Reset exactly the pattern rows of this column: the pivot
            // rows behind each U entry, the pivot itself, and the L rows.
            for idx in s.u_ptr[k]..s.u_ptr[k + 1] {
                x[s.prow[s.u_pos[idx]]] = 0.0;
            }
            x[piv_row] = 0.0;
            for t in s.l_ptr[k]..s.l_ptr[k + 1] {
                x[s.l_rows[t]] = 0.0;
            }
        }

        if sp.is_live() {
            sp.note(n as f64, (l_vals.len() + u_vals.len() + n) as f64);
            REFACTOR_ACCEPTED.incr();
            awe_obs::health(Health::RefactorAccepted);
            note_pivot_growth(a, &u_vals, &u_diag);
        }
        Ok(SparseLu {
            symbolic: Arc::clone(symbolic),
            l_vals,
            u_vals,
            u_diag,
        })
    }

    /// Assembles a factorization from already-computed numeric values —
    /// the lane extraction path of [`crate::lanes::LaneLu::extract`],
    /// which gathers one lane of a lane-strided sweep back into scalar
    /// layout. The slices must be aligned with `symbolic`'s patterns.
    pub(crate) fn from_parts(
        symbolic: Arc<LuSymbolic>,
        l_vals: Vec<f64>,
        u_vals: Vec<f64>,
        u_diag: Vec<f64>,
    ) -> SparseLu {
        debug_assert_eq!(l_vals.len(), symbolic.l_rows.len());
        debug_assert_eq!(u_vals.len(), symbolic.u_pos.len());
        debug_assert_eq!(u_diag.len(), symbolic.n);
        SparseLu {
            symbolic,
            l_vals,
            u_vals,
            u_diag,
        }
    }

    /// The numeric values `(L, U, diag)` — crate-internal, for bitwise
    /// comparison in the lane-kernel tests.
    #[cfg(test)]
    pub(crate) fn parts(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.l_vals, &self.u_vals, &self.u_diag)
    }

    /// The shared symbolic analysis this factorization was built on.
    #[inline]
    pub fn symbolic(&self) -> &Arc<LuSymbolic> {
        &self.symbolic
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.symbolic.n
    }

    /// Stored entries in `L` plus `U` (a fill measure).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.symbolic.n
    }

    /// Solves `A·x = b` by permuted forward/back substitution.
    ///
    /// Allocates the result and internal workspaces; hot paths should
    /// prefer [`SparseLu::solve_into`] with a reused [`SolveScratch`].
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut scratch = SolveScratch::new();
        let mut out = Vec::new();
        self.solve_into(b, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Solves `A·x = b` into a caller-owned output using caller-owned
    /// scratch space. After warm-up (buffers at capacity) this performs
    /// zero heap allocations — the shape the 2q-1 moment
    /// resubstitutions of the paper's §3.2 want.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_into(
        &self,
        b: &[f64],
        scratch: &mut SolveScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), NumericError> {
        let s = &*self.symbolic;
        let n = s.n;
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        let SolveScratch { w, y } = scratch;
        // Forward: y = L⁻¹·P·b, working over original row indices.
        w.clear();
        w.extend_from_slice(b);
        y.clear();
        y.resize(n, 0.0);
        for k in 0..n {
            let t = w[s.prow[k]];
            y[k] = t;
            if t != 0.0 {
                for idx in s.l_ptr[k]..s.l_ptr[k + 1] {
                    w[s.l_rows[idx]] -= t * self.l_vals[idx];
                }
            }
        }
        // Back: z = U⁻¹·y (column-oriented).
        for k in (0..n).rev() {
            let zk = y[k] / self.u_diag[k];
            y[k] = zk;
            if zk != 0.0 {
                for idx in s.u_ptr[k]..s.u_ptr[k + 1] {
                    y[s.u_pos[idx]] -= zk * self.u_vals[idx];
                }
            }
        }
        // Undo the column permutation: x[q[k]] = z[k].
        out.clear();
        out.resize(n, 0.0);
        for k in 0..n {
            out[s.q[k]] = y[k];
        }
        Ok(())
    }

    /// Blocked multi-RHS solve: `rhs` holds `nrhs` right-hand sides as
    /// consecutive length-`n` chunks, and `out` receives the solutions in
    /// the same layout. Internally the block is interleaved so one pass
    /// over the L/U patterns serves every column — the index/value loads
    /// of the triangular sweep amortize across the block, which is what
    /// makes the simultaneous moment recursions of several superposition
    /// pieces cheaper than solving them one by one.
    ///
    /// Each column's result is bit-identical to a standalone
    /// [`SparseLu::solve_into`] on that column.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `rhs.len() != dim() * nrhs`.
    pub fn solve_multi_into(
        &self,
        rhs: &[f64],
        nrhs: usize,
        scratch: &mut SolveScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), NumericError> {
        let s = &*self.symbolic;
        let n = s.n;
        if rhs.len() != n * nrhs {
            return Err(NumericError::DimensionMismatch {
                expected: n * nrhs,
                actual: rhs.len(),
            });
        }
        if nrhs == 0 {
            out.clear();
            return Ok(());
        }
        let SolveScratch { w, y } = scratch;
        // Interleave: w[i*nrhs + c] = rhs column c, row i. Row-major over
        // original rows so each L/U entry touches one contiguous stripe.
        w.clear();
        w.resize(n * nrhs, 0.0);
        for c in 0..nrhs {
            let col = &rhs[c * n..(c + 1) * n];
            for (i, &v) in col.iter().enumerate() {
                w[i * nrhs + c] = v;
            }
        }
        y.clear();
        y.resize(n * nrhs, 0.0);
        // Forward: per L entry, update the whole stripe.
        for k in 0..n {
            let pr = s.prow[k];
            y[k * nrhs..(k + 1) * nrhs].copy_from_slice(&w[pr * nrhs..(pr + 1) * nrhs]);
            for idx in s.l_ptr[k]..s.l_ptr[k + 1] {
                let r = s.l_rows[idx];
                let lv = self.l_vals[idx];
                for c in 0..nrhs {
                    let t = y[k * nrhs + c];
                    if t != 0.0 {
                        w[r * nrhs + c] -= t * lv;
                    }
                }
            }
        }
        // Back: stripes of y only; u_pos entries are all < k, so split.
        for k in (0..n).rev() {
            let (lo, hi) = y.split_at_mut(k * nrhs);
            let yk = &mut hi[..nrhs];
            let d = self.u_diag[k];
            for v in yk.iter_mut() {
                *v /= d;
            }
            for idx in s.u_ptr[k]..s.u_ptr[k + 1] {
                let p = s.u_pos[idx];
                let uv = self.u_vals[idx];
                for c in 0..nrhs {
                    let zk = yk[c];
                    if zk != 0.0 {
                        lo[p * nrhs + c] -= zk * uv;
                    }
                }
            }
        }
        // De-interleave, undoing the column permutation per RHS.
        out.clear();
        out.resize(n * nrhs, 0.0);
        for k in 0..n {
            let dst = s.q[k];
            for c in 0..nrhs {
                out[c * n + dst] = y[k * nrhs + c];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::Lu;
    use crate::matrix::Matrix;

    fn solve_both(d: &Matrix, b: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let dense = Lu::factor(d)
            .expect("dense factors")
            .solve(b)
            .expect("dense solves");
        let s = SparseMatrix::from_dense(d);
        let sparse = SparseLu::factor(&s, None)
            .expect("sparse factors")
            .solve(b)
            .expect("sparse solves");
        (dense, sparse)
    }

    #[test]
    fn matches_dense_on_small_systems() {
        let d = Matrix::from_rows(&[
            &[2.0, 1.0, 0.0, 0.0],
            &[1.0, 3.0, 1.0, 0.0],
            &[0.0, 1.0, 4.0, 2.0],
            &[0.0, 0.0, 2.0, 5.0],
        ]);
        let b = [1.0, -2.0, 3.0, 0.5];
        let (dense, sparse) = solve_both(&d, &b);
        for (a, s) in dense.iter().zip(&sparse) {
            assert!((a - s).abs() < 1e-12, "{a} vs {s}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // MNA-like: V-source branch rows have structural zero diagonals.
        let d = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 2.0], &[0.0, 2.0, 1.0]]);
        let b = [1.0, 2.0, 3.0];
        let (dense, sparse) = solve_both(&d, &b);
        for (a, s) in dense.iter().zip(&sparse) {
            assert!((a - s).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let s = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0)]);
        assert!(matches!(
            SparseLu::factor(&s, None),
            Err(NumericError::Singular { .. })
        ));
        // Empty column.
        let s2 = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 0.0)]);
        assert!(SparseLu::factor(&s2, None).is_err());
    }

    #[test]
    fn shape_and_order_validation() {
        let rect = SparseMatrix::from_triplets(2, 3, &[]);
        assert!(matches!(
            SparseLu::factor(&rect, None),
            Err(NumericError::NotSquare { .. })
        ));
        let sq = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        assert!(matches!(
            SparseLu::factor(&sq, Some(&[0])),
            Err(NumericError::DimensionMismatch { .. })
        ));
        let lu = SparseLu::factor(&sq, None).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        let mut scratch = SolveScratch::new();
        let mut out = Vec::new();
        assert!(lu
            .solve_multi_into(&[1.0, 2.0, 3.0], 2, &mut scratch, &mut out)
            .is_err());
    }

    #[test]
    fn column_order_changes_nothing_numerically() {
        let d = Matrix::from_rows(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 5.0, 1.0, 0.0],
            &[0.0, 1.0, 6.0, 1.0],
            &[2.0, 0.0, 1.0, 7.0],
        ]);
        let s = SparseMatrix::from_dense(&d);
        let b = [1.0, 2.0, 3.0, 4.0];
        let natural = SparseLu::factor(&s, None).unwrap().solve(&b).unwrap();
        let reordered = SparseLu::factor(&s, Some(&[3, 1, 0, 2]))
            .unwrap()
            .solve(&b)
            .unwrap();
        for (a, c) in natural.iter().zip(&reordered) {
            assert!((a - c).abs() < 1e-12);
        }
    }

    #[test]
    fn random_sparse_systems_match_dense() {
        let mut state = 0xfeedbeefu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(97);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [3usize, 8, 20, 50] {
            // Sparse banded-ish pattern with random off-band entries and a
            // dominant-ish diagonal.
            let mut d = Matrix::zeros(n, n);
            for i in 0..n {
                d[(i, i)] = 4.0 + next();
                if i + 1 < n {
                    d[(i, i + 1)] = next();
                    d[(i + 1, i)] = next();
                }
                let far = (i * 7 + 3) % n;
                if far != i {
                    d[(i, far)] = next() * 0.5;
                }
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let (dense, sparse) = solve_both(&d, &b);
            for (a, s) in dense.iter().zip(&sparse) {
                assert!((a - s).abs() < 1e-9, "n={n}: {a} vs {s}");
            }
        }
    }

    #[test]
    fn rcm_ordering_cuts_fill_on_a_grid() {
        // 2-D grid Laplacian with scrambled numbering: RCM should reduce
        // factor fill versus the scrambled natural order.
        let (rows, cols) = (8usize, 8usize);
        let n = rows * cols;
        let scramble = |i: usize| (i * 37 + 11) % n;
        let mut t = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let u = scramble(r * cols + c);
                t.push((u, u, 4.0));
                if c + 1 < cols {
                    let v = scramble(r * cols + c + 1);
                    t.push((u, v, -1.0));
                    t.push((v, u, -1.0));
                }
                if r + 1 < rows {
                    let v = scramble((r + 1) * cols + c);
                    t.push((u, v, -1.0));
                    t.push((v, u, -1.0));
                }
            }
        }
        let s = SparseMatrix::from_triplets(n, n, &t);
        let natural = SparseLu::factor(&s, None).unwrap();
        let rcm_new_of_old = s.rcm_ordering().unwrap();
        // Column order = old columns sorted by new position.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&old| rcm_new_of_old[old]);
        let rcm = SparseLu::factor(&s, Some(&order)).unwrap();
        assert!(
            rcm.factor_nnz() < natural.factor_nnz(),
            "RCM fill {} should beat scrambled {}",
            rcm.factor_nnz(),
            natural.factor_nnz()
        );
        // And both solve correctly.
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let xa = natural.solve(&b).unwrap();
        let xb = rcm.solve(&b).unwrap();
        let ra = s.mul_vec(&xa);
        for ((p, q), bb) in ra.iter().zip(s.mul_vec(&xb)).zip(&b) {
            assert!((p - bb).abs() < 1e-9);
            assert!((q - bb).abs() < 1e-9);
        }
    }

    #[test]
    fn refactor_reproduces_factor_bitwise() {
        // Same matrix through both paths: identical pivots, identical
        // update order, so the factors must agree bit for bit.
        let d = Matrix::from_rows(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 5.0, 1.0, 0.0],
            &[0.0, 1.0, 6.0, 1.0],
            &[2.0, 0.0, 1.0, 7.0],
        ]);
        let s = SparseMatrix::from_dense(&d);
        let fresh = SparseLu::factor(&s, None).unwrap();
        let re = SparseLu::refactor(fresh.symbolic(), &s).unwrap();
        assert_eq!(fresh.l_vals, re.l_vals);
        assert_eq!(fresh.u_vals, re.u_vals);
        assert_eq!(fresh.u_diag, re.u_diag);
        assert!(Arc::ptr_eq(fresh.symbolic(), re.symbolic()));
    }

    #[test]
    fn refactor_solves_perturbed_values() {
        let base = SparseMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 5.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 6.0),
            ],
        );
        let lu = SparseLu::factor(&base, None).unwrap();
        let perturbed = SparseMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.5),
                (0, 1, 0.9),
                (1, 0, 1.1),
                (1, 1, 5.5),
                (1, 2, 0.8),
                (2, 1, 1.2),
                (2, 2, 6.5),
            ],
        );
        let re = SparseLu::refactor(lu.symbolic(), &perturbed).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = re.solve(&b).unwrap();
        let r = perturbed.mul_vec(&x);
        for (got, want) in r.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn refactor_rejects_structural_and_pivot_failures() {
        let base = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
        );
        let lu = SparseLu::factor(&base, None).unwrap();
        // Different pattern.
        let other = SparseMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 3.0)]);
        assert!(matches!(
            SparseLu::refactor(lu.symbolic(), &other),
            Err(NumericError::PatternMismatch { .. })
        ));
        // Same pattern, but the stored pivot row is now vanishing against
        // its column: the recorded pivot order no longer bounds growth.
        let bad = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1e-30), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
        );
        assert!(matches!(
            SparseLu::refactor(lu.symbolic(), &bad),
            Err(NumericError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn solve_into_matches_solve_and_reuses_buffers() {
        let d = Matrix::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 5.0]]);
        let s = SparseMatrix::from_dense(&d);
        let lu = SparseLu::factor(&s, None).unwrap();
        let mut scratch = SolveScratch::with_dim(3);
        let mut out = Vec::with_capacity(3);
        for trial in 0..4 {
            let b = [1.0 + trial as f64, -2.0, 0.5 * trial as f64];
            lu.solve_into(&b, &mut scratch, &mut out).unwrap();
            assert_eq!(out, lu.solve(&b).unwrap(), "trial {trial}");
        }
    }

    #[test]
    fn solve_multi_matches_columnwise_solves_bitwise() {
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(97);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let n = 24;
        let mut dm = Matrix::zeros(n, n);
        for i in 0..n {
            dm[(i, i)] = 5.0 + next();
            if i + 1 < n {
                dm[(i, i + 1)] = next();
                dm[(i + 1, i)] = next();
            }
        }
        let s = SparseMatrix::from_dense(&dm);
        let lu = SparseLu::factor(&s, None).unwrap();
        let nrhs = 3;
        let rhs: Vec<f64> = (0..n * nrhs).map(|_| next()).collect();
        let mut scratch = SolveScratch::new();
        let mut block = Vec::new();
        lu.solve_multi_into(&rhs, nrhs, &mut scratch, &mut block)
            .unwrap();
        assert_eq!(block.len(), n * nrhs);
        for c in 0..nrhs {
            let single = lu.solve(&rhs[c * n..(c + 1) * n]).unwrap();
            assert_eq!(&block[c * n..(c + 1) * n], &single[..], "rhs {c}");
        }
        // nrhs == 0 is a no-op.
        lu.solve_multi_into(&[], 0, &mut scratch, &mut block)
            .unwrap();
        assert!(block.is_empty());
    }
}
