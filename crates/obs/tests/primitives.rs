//! Tests for the obs primitives: histogram bucketing (property-tested),
//! ring-buffer overflow accounting, span ordering, and sink shape.
//!
//! A recording is process-global, so every test that records serializes
//! on [`record_lock`].

use std::sync::{Mutex, PoisonError};

use awe_obs::{
    bucket_bounds, bucket_index, health, instant, lane_scope, span, Counter, EventKind, Health,
    Histogram, Recording, HIST_BUCKETS, LANE_CAPACITY,
};
use proptest::prelude::*;

static RECORD_LOCK: Mutex<()> = Mutex::new(());

fn record_lock() -> std::sync::MutexGuard<'static, ()> {
    RECORD_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn bucket_edges_are_exact_powers_of_two() {
    // Exact powers of two sit on bucket boundaries; the exponent-bit
    // bucketing must put each in the bucket it *opens*, not the one it
    // closes.
    for e in -64i32..=63 {
        let v = (e as f64).exp2();
        let i = bucket_index(v);
        let (lo, hi) = bucket_bounds(i);
        assert!(lo <= v && v < hi, "2^{e} -> bucket {i} [{lo:e}, {hi:e})");
        assert_eq!(lo, v, "2^{e} must open its bucket");
    }
    // Degenerate inputs go to the clamp buckets.
    assert_eq!(bucket_index(0.0), 0);
    assert_eq!(bucket_index(-1.0), 0);
    assert_eq!(bucket_index(f64::NAN), 0);
    assert_eq!(bucket_index(5e-324), 0, "subnormal underflows");
    assert_eq!(bucket_index(f64::INFINITY), HIST_BUCKETS - 1);
    assert_eq!(bucket_index(64f64.exp2()), HIST_BUCKETS - 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any batch of positive finite values across the full bucket
    /// range: the histogram preserves count and sum exactly (same
    /// addition order as the reference sum), every value's bucket
    /// brackets it, and per-bucket counts re-add to the total.
    #[test]
    fn histogram_preserves_count_sum_and_brackets(
        samples in proptest::collection::vec((0.5f64..2.0, -70i32..70), 1..200),
    ) {
        static HIST: Histogram = Histogram::new("test.prop");
        let _guard = record_lock();
        let values: Vec<f64> = samples
            .iter()
            .map(|&(m, e)| m * (e as f64).exp2())
            .collect();

        let rec = Recording::start().expect("no other recording under the lock");
        for &v in &values {
            HIST.record(v);
        }
        let profile = rec.finish();

        let snap = profile
            .histograms
            .iter()
            .find(|h| h.name == "test.prop")
            .expect("histogram registered");
        prop_assert_eq!(snap.count, values.len() as u64);
        let reference: f64 = values.iter().fold(0.0, |acc, v| acc + v);
        prop_assert!(
            snap.sum == reference,
            "sum {} != reference {} (identical addition order)",
            snap.sum,
            reference
        );
        let bucketed: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucketed, snap.count, "no observation lost between buckets");
        for &v in &values {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            prop_assert!(lo <= v && v < hi, "{v:e} outside its bucket [{lo:e}, {hi:e})");
        }
    }
}

#[test]
fn ring_overflow_drops_oldest_and_counts() {
    let _guard = record_lock();
    let extra = 37u64;
    let rec = Recording::start().expect("no other recording under the lock");
    for i in 0..(LANE_CAPACITY as u64 + extra) {
        health(Health::Condition {
            stage: "overflow-test",
            estimate: i as f64,
        });
    }
    let profile = rec.finish();

    assert_eq!(profile.lanes.len(), 1);
    let lane = &profile.lanes[0];
    assert_eq!(lane.dropped, extra, "every overflowed event is counted");
    assert_eq!(lane.events.len(), LANE_CAPACITY, "memory stays bounded");
    // Overwrite-oldest: the survivors are exactly the most recent
    // LANE_CAPACITY events, still in record order.
    assert_eq!(lane.events[0].a, extra as f64);
    assert_eq!(
        lane.events.last().unwrap().a,
        (LANE_CAPACITY as u64 + extra - 1) as f64
    );
}

#[test]
fn span_ordering_within_a_thread_is_deterministic() {
    let _guard = record_lock();
    let rec = Recording::start().expect("no other recording under the lock");
    {
        let _a = span("a");
    }
    {
        let _b = span("b");
    }
    {
        let _outer = span("outer");
        let _inner = span("inner");
        // Locals drop in reverse declaration order: inner closes first.
    }
    let profile = rec.finish();

    let lane = &profile.lanes[0];
    let names: Vec<&str> = lane.events.iter().map(|e| e.name).collect();
    // Events land in completion order, deterministically.
    assert_eq!(names, ["a", "b", "inner", "outer"]);
    for pair in lane.events.windows(2) {
        assert!(
            pair[0].ts_ns + pair[0].dur_ns <= pair[1].ts_ns + pair[1].dur_ns,
            "completion times are monotone within a lane"
        );
    }
    let inner = lane.events.iter().find(|e| e.name == "inner").unwrap();
    let outer = lane.events.iter().find(|e| e.name == "outer").unwrap();
    assert!(inner.ts_ns >= outer.ts_ns, "inner opens after outer");
}

#[test]
fn lane_scopes_collect_one_session_across_threads() {
    let _guard = record_lock();
    let rec = Recording::start().expect("no other recording under the lock");
    // One thread interleaving two sessions: the scope, not the thread,
    // decides the lane.
    {
        let _s = lane_scope("session:a");
        let _sp = span("req.a1");
    }
    {
        let _s = lane_scope("session:b");
        let _sp = span("req.b1");
    }
    // A second thread contributing to session a: same lane.
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _s = lane_scope("session:a");
            let _sp = span("req.a2");
        });
    });
    // Nesting: the innermost scope wins, and popping restores the outer.
    {
        let _outer = lane_scope("session:a");
        {
            let _inner = lane_scope("session:b");
            let _sp = span("req.b2");
        }
        let _sp = span("req.a3");
    }
    // Outside any scope, events fall back to the per-thread lane.
    {
        let _sp = span("req.unscoped");
    }
    let profile = rec.finish();

    let lane = |label: &str| {
        profile
            .lanes
            .iter()
            .find(|l| l.label == label)
            .unwrap_or_else(|| panic!("lane {label} exists"))
    };
    let names = |label: &str| -> Vec<&str> { lane(label).events.iter().map(|e| e.name).collect() };
    assert_eq!(names("session:a"), ["req.a1", "req.a2", "req.a3"]);
    assert_eq!(names("session:b"), ["req.b1", "req.b2"]);
    assert!(
        profile
            .lanes
            .iter()
            .any(|l| l.events.iter().any(|e| e.name == "req.unscoped")
                && !l.label.starts_with("session:")),
        "unscoped events stay on the thread lane"
    );
}

#[test]
fn set_lane_label_never_renames_a_named_lane() {
    let _guard = record_lock();
    let rec = Recording::start().expect("no other recording under the lock");
    {
        let _s = lane_scope("session:keep");
        // An inline worker labeling "its" lane while a session scope is
        // live (e.g. the single-threaded pool path) must label the
        // thread's own lane, not the shared session lane.
        awe_obs::set_lane_label("worker-0");
        let _sp = span("req.scoped");
    }
    {
        let _sp = span("req.unscoped");
    }
    let profile = rec.finish();
    assert!(
        profile
            .lanes
            .iter()
            .any(|l| l.label == "session:keep" && l.events.iter().any(|e| e.name == "req.scoped")),
        "session lane keeps its label and its events"
    );
    assert!(
        profile
            .lanes
            .iter()
            .any(|l| l.label == "worker-0" && l.events.iter().any(|e| e.name == "req.unscoped")),
        "the thread's own lane took the worker label"
    );
}

#[test]
fn lane_scope_is_inert_when_disabled() {
    let _guard = record_lock();
    // No recording: the guard constructs and drops without effect.
    let scope = lane_scope("session:none");
    drop(scope);
    let rec = Recording::start().expect("no other recording under the lock");
    // A scope from a *previous* generation must not leak into this one:
    // simulate by creating the scope, ending the recording, and letting
    // the guard drop afterwards.
    let stale = lane_scope("session:stale");
    let profile = rec.finish();
    drop(stale);
    assert!(
        profile.lanes.iter().all(|l| l.events.is_empty()),
        "nothing was recorded"
    );
}

#[test]
fn disabled_instrumentation_records_nothing() {
    let _guard = record_lock();
    static QUIET: Counter = Counter::new("test.quiet");
    // No recording active: all entry points must be inert.
    let mut s = span("dead");
    assert!(!s.is_live());
    s.note(1.0, 2.0);
    drop(s);
    instant("dead");
    QUIET.add(5);

    let rec = Recording::start().expect("no other recording under the lock");
    let profile = rec.finish();
    assert!(profile.lanes.is_empty(), "nothing recorded while disabled");
    assert!(
        profile.counters.iter().all(|c| c.name != "test.quiet"),
        "disabled counter bumps must not surface"
    );
}

#[test]
fn counters_reset_between_recordings() {
    let _guard = record_lock();
    static AGAIN: Counter = Counter::new("test.again");

    let rec = Recording::start().expect("no other recording under the lock");
    AGAIN.add(41);
    let first = rec.finish();
    assert_eq!(
        first
            .counters
            .iter()
            .find(|c| c.name == "test.again")
            .map(|c| c.value),
        Some(41)
    );

    let rec = Recording::start().expect("previous recording finished");
    AGAIN.incr();
    let second = rec.finish();
    assert_eq!(
        second
            .counters
            .iter()
            .find(|c| c.name == "test.again")
            .map(|c| c.value),
        Some(1),
        "a new recording starts from zero"
    );
}

#[test]
fn sinks_render_all_event_kinds() {
    let _guard = record_lock();
    static SINK_HITS: Counter = Counter::new("test.sink_hits");
    static SINK_HIST: Histogram = Histogram::new("test.sink_hist");
    let rec = Recording::start().expect("no other recording under the lock");
    {
        let mut s = span("stage");
        s.note(3.0, 0.0);
    }
    instant("tick");
    health(Health::PadeOrder {
        requested: 5,
        chosen: 4,
    });
    SINK_HITS.add(2);
    SINK_HIST.record(0.25);
    let profile = rec.finish();

    let trace = profile.chrome_trace();
    assert!(trace.trim_start().starts_with('['));
    assert!(trace.trim_end().ends_with(']'));
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(trace.matches(open).count(), trace.matches(close).count());
    }
    assert!(trace.contains("\"ph\": \"X\"") && trace.contains("\"name\": \"stage\""));
    assert!(trace.contains("\"ph\": \"i\"") && trace.contains("\"name\": \"pade_order\""));
    assert!(trace.contains("\"requested\": 5e0") && trace.contains("\"chosen\": 4e0"));
    assert!(trace.contains("\"thread_name\""));

    let text = profile.text_report();
    assert!(text.contains("stage") && text.contains("pade_order"));
    assert!(text.contains("test.sink_hits"));

    let json = profile.metrics_json();
    assert!(json.contains("\"schema\": \"awe-obs-metrics-v1\""));
    assert!(json.contains("\"test.sink_hits\": 2"));
    assert!(json.contains("\"test.sink_hist\""));
    assert!(json.contains("\"pade_order\": 1"));

    // Span events across kinds stay typed.
    let lane = &profile.lanes[0];
    assert!(lane.events.iter().any(|e| e.kind == EventKind::Span));
    assert!(lane.events.iter().any(|e| e.kind == EventKind::Instant));
    assert!(lane.events.iter().any(|e| e.kind == EventKind::Health));
}
