//! Minimal ASCII waveform plotting for the figure reports.
//!
//! The paper's evaluation is a set of *plots* (AWE curve vs SPICE curve);
//! the report binaries render the same comparisons as terminal graphics so
//! the "indistinguishable at this resolution" claims can be eyeballed
//! directly in EXPERIMENTS.md.

/// One named series of `(t, v)` samples.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (its first character is the plot glyph).
    pub label: String,
    /// Samples; need not be uniformly spaced.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a sampling closure over `[t0, t1]`.
    pub fn sampled(
        label: &str,
        t0: f64,
        t1: f64,
        n: usize,
        mut f: impl FnMut(f64) -> f64,
    ) -> Series {
        let points = (0..n)
            .map(|i| {
                let t = t0 + (t1 - t0) * i as f64 / (n - 1).max(1) as f64;
                (t, f(t))
            })
            .collect();
        Series {
            label: label.to_owned(),
            points,
        }
    }
}

/// Renders the series into a `width × height` character plot with axis
/// annotations and a legend. Series are drawn in order; later series
/// overwrite earlier glyphs where they collide (collisions mean the curves
/// agree at that resolution — the paper's own criterion).
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    let mut v_min = f64::INFINITY;
    let mut v_max = f64::NEG_INFINITY;
    for s in series {
        for &(t, v) in &s.points {
            t_min = t_min.min(t);
            t_max = t_max.max(t);
            v_min = v_min.min(v);
            v_max = v_max.max(v);
        }
    }
    if !(t_min.is_finite() && t_max.is_finite()) || series.is_empty() {
        return String::from("(no data)\n");
    }
    if t_max <= t_min {
        t_max = t_min + 1.0;
    }
    if v_max <= v_min {
        v_max = v_min + 1.0;
    }
    // A little headroom so curves don't ride the frame.
    let pad = 0.05 * (v_max - v_min);
    let (v_lo, v_hi) = (v_min - pad, v_max + pad);

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('?');
        for &(t, v) in &s.points {
            let x = ((t - t_min) / (t_max - t_min) * (width - 1) as f64).round() as usize;
            let y = ((v - v_lo) / (v_hi - v_lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let v_label = if r == 0 {
            format!("{v_hi:>9.3} ")
        } else if r == height - 1 {
            format!("{v_lo:>9.3} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&v_label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>10} {:<width$}\n",
        "",
        format!("t: {:.3e} .. {:.3e} s", t_min, t_max),
        width = width
    ));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} = {}", s.label.chars().next().unwrap_or('?'), s.label))
        .collect();
    out.push_str(&format!("{:>10} [{}]\n", "", legend.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rising_exponential() {
        let s = Series::sampled("awe", 0.0, 5.0, 60, |t| 1.0 - (-t).exp());
        let plot = render(&[s], 60, 12);
        assert!(plot.contains('a'));
        assert!(plot.contains("t: 0.000e0 .. 5.000e0 s"));
        assert!(plot.contains("[a = awe]"));
        // The curve rises: 'a' appears near the top-right and bottom-left.
        let lines: Vec<&str> = plot.lines().collect();
        assert!(lines[0].contains('a') || lines[1].contains('a'));
    }

    #[test]
    fn two_series_overlap() {
        let a = Series::sampled("model", 0.0, 1.0, 30, |t| t);
        let b = Series::sampled("sim", 0.0, 1.0, 30, |t| t);
        let plot = render(&[a, b], 40, 10);
        // Identical curves: the later glyph wins everywhere.
        assert!(plot.contains('s'));
        assert!(
            !plot.lines().take(10).any(|l| l.contains('m')),
            "overlapped glyphs should be overwritten:\n{plot}"
        );
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(render(&[], 40, 10), "(no data)\n");
        let flat = Series {
            label: "x".into(),
            points: vec![(0.0, 2.0), (1.0, 2.0)],
        };
        let plot = render(&[flat], 20, 5);
        assert!(plot.contains('x'));
    }
}
