//! RC-chain reduction: collapse series RC chains (and degree-2 internal
//! nodes generally) into compact equivalents before system assembly.
//!
//! AWE's cost is superlinear in MNA unknowns, and long uniform RC chains
//! are the dominant shape of extracted interconnect — so rewriting an
//! `n`-stage chain into a handful of lumped segments is a superlinear
//! payoff. The construction follows the long-chain equivalence result
//! (arXiv 2508.13159): eliminating an interior node that sits at
//! resistive distance `r` from the left boundary of a segment of span
//! `R` merges its resistors and splits its grounded capacitance `C`
//! proportionally — `C·(R−r)/R` to the left boundary, `C·r/R` to the
//! right.
//!
//! **What the rewrite preserves exactly** (for RC trees, up to floating
//! point): the total capacitance to ground, and the first moment (Elmore
//! delay) of every surviving node — the proportional split keeps
//! `Σ Cᵢ·R(path ∩ path)` unchanged for any preserved observation point.
//! The error enters at the *second* moment: collapsing a segment with
//! interior caps `Cᵢ` at cumulative distances `rᵢ` along a span `R`
//! perturbs it by the segment defect
//!
//! ```text
//! δ_seg = Σᵢ Cᵢ · rᵢ (R − rᵢ) / R        (units: seconds)
//! ```
//!
//! The pass walks every maximal chain and merges greedily left-to-right
//! under a **proportional budget**: a segment may grow only while
//!
//! ```text
//! δ_seg ≤ tolerance · τ_chain · (R_seg / R_chain)
//! ```
//!
//! where `τ_chain = R_chain · C_chain` is the chain's own time scale.
//! Summed over the segments of a chain this caps the per-pass defect at
//! `tolerance · τ_chain`, so the reduced model's waveform error is
//! `O(tolerance)` relative to the chain's dominant time constant — the
//! differential oracle in `awe-verify` holds it to that bound
//! empirically. Because both sides of the rule scale as `R·C`, segment
//! boundaries depend only on the chain's *shape* and the tolerance, not
//! on absolute element values — structurally identical nets reduce to
//! structurally identical nets.
//!
//! Reduction runs passes at **constant tolerance to a fixpoint** (a pass
//! that removes nothing ends the loop; node count strictly decreases, so
//! it terminates). A fixpoint at tolerance `t` is also a fixpoint of a
//! fresh `reduce` call at tolerance `t`, which makes the pass
//! *idempotent by construction*: reducing a reduced circuit returns it
//! byte-identical. Follow-up passes rarely fire (a merged segment's own
//! defect sits well past the budget that formed it); the report records
//! the actual accumulated defect per chain, so `ReductionReport::bound`
//! is a measured bound, not an estimate.
//!
//! A node is never collapsed if it is ground, explicitly preserved
//! (observation points), a terminal of any source (independent or
//! controlled, controlling nodes included), touched by an inductor, a
//! floating capacitor, or a capacitor with a nonequilibrium initial
//! condition, or if its resistive degree is anything but exactly two.

use std::collections::BTreeMap;

use crate::element::{Element, NodeId, GROUND};
use crate::netlist::Circuit;

/// Interior nodes removed by reduction passes.
static NODES_REMOVED: awe_obs::Counter = awe_obs::Counter::new("reduce.nodes_removed");
/// Chains that had at least one segment merged.
static CHAINS_REDUCED: awe_obs::Counter = awe_obs::Counter::new("reduce.chains");

/// Configuration of the reduction pre-pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReduceOptions {
    /// Whether callers should run the pass at all. [`reduce`] itself
    /// ignores this — integration layers (batch, serve, CLI) gate on it
    /// so a disabled config hashes and solves the original net.
    pub enabled: bool,
    /// Per-chain defect budget as a fraction of the chain time scale
    /// `τ = R_chain · C_chain`. Smaller keeps more nodes.
    pub tolerance: f64,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            enabled: false,
            tolerance: 0.02,
        }
    }
}

/// One maximal chain that lost nodes, for the report.
#[derive(Clone, Debug)]
pub struct ChainReduction {
    /// Left anchor node name.
    pub left: String,
    /// Right anchor node name.
    pub right: String,
    /// Interior nodes eliminated.
    pub nodes_removed: usize,
    /// Accumulated segment defect `Σ δ_seg` in seconds.
    pub defect: f64,
    /// Chain time scale `R_chain · C_chain` in seconds.
    pub tau: f64,
}

impl ChainReduction {
    /// The chain's relative error bound `defect / τ` (zero for purely
    /// resistive chains, which merge exactly).
    pub fn bound(&self) -> f64 {
        if self.tau > 0.0 {
            self.defect / self.tau
        } else {
            0.0
        }
    }
}

/// What a [`reduce`] call did.
#[derive(Clone, Debug, Default)]
pub struct ReductionReport {
    /// Tolerance the passes ran with.
    pub tolerance: f64,
    /// Passes run, including the final no-op pass that confirmed the
    /// fixpoint (so ≥ 2 whenever anything merged, 1 otherwise).
    pub passes: usize,
    /// Interior nodes eliminated in total.
    pub nodes_removed: usize,
    /// Net element-count reduction (removed minus inserted equivalents).
    pub elements_removed: usize,
    /// Per-chain accounting, discovery order, merged chains only.
    pub chains: Vec<ChainReduction>,
}

impl ReductionReport {
    /// Worst per-chain measured relative bound across all passes.
    pub fn bound(&self) -> f64 {
        self.chains
            .iter()
            .map(ChainReduction::bound)
            .fold(0.0, f64::max)
    }

    /// Whether reduction changed the circuit at all.
    pub fn changed(&self) -> bool {
        self.nodes_removed > 0
    }
}

/// A reduced circuit plus the bookkeeping to express results at original
/// node names.
#[derive(Clone, Debug)]
pub struct Reduced {
    /// The rewritten circuit. Surviving nodes keep their original names.
    pub circuit: Circuit,
    /// What happened.
    pub report: ReductionReport,
    /// Original node id → reduced node id (`None` for collapsed nodes).
    node_map: Vec<Option<NodeId>>,
}

impl Reduced {
    /// Maps an original node id into the reduced circuit. Preserved nodes
    /// always map; collapsed interiors return `None`.
    pub fn map_node(&self, original: NodeId) -> Option<NodeId> {
        self.node_map.get(original).copied().flatten()
    }
}

/// Collapses series RC chains of `circuit` into compact equivalents,
/// preserving ground, every node in `preserve`, and every node a
/// non-R/C element touches. Runs constant-tolerance passes to a
/// fixpoint, so `reduce` is idempotent: reducing an already-reduced
/// circuit returns it unchanged.
pub fn reduce(circuit: &Circuit, preserve: &[NodeId], opts: &ReduceOptions) -> Reduced {
    let mut span = awe_obs::span("circuit.reduce");
    // Preserved nodes travel by name: node ids are insertion-order
    // artifacts and change between passes.
    let preserve_names: Vec<String> = preserve
        .iter()
        .filter(|&&n| n < circuit.num_nodes())
        .map(|&n| circuit.node_name(n).to_owned())
        .collect();

    let tolerance = opts.tolerance.max(0.0);
    // The input circuit is only cloned if no pass changes anything; a
    // productive pass hands over its rebuilt circuit instead.
    let mut current: Option<Circuit> = None;
    let mut report = ReductionReport {
        tolerance,
        ..ReductionReport::default()
    };
    loop {
        report.passes += 1;
        let base = current.as_ref().unwrap_or(circuit);
        let preserve_ids: Vec<NodeId> = preserve_names
            .iter()
            .filter_map(|n| base.find_node(n))
            .collect();
        let outcome = reduce_pass(base, &preserve_ids, tolerance);
        let Some(outcome) = outcome else { break };
        report.nodes_removed += outcome.nodes_removed;
        report.chains.extend(outcome.chains);
        current = Some(outcome.circuit);
    }
    let current = current.unwrap_or_else(|| circuit.clone());
    report.elements_removed = circuit
        .elements()
        .len()
        .saturating_sub(current.elements().len());
    if report.changed() {
        NODES_REMOVED.add(report.nodes_removed as u64);
        CHAINS_REDUCED.add(report.chains.len() as u64);
    }
    let node_map = (0..circuit.num_nodes())
        .map(|id| current.find_node(circuit.node_name(id)))
        .collect();
    span.note(report.nodes_removed as f64, report.elements_removed as f64);
    Reduced {
        circuit: current,
        report,
        node_map,
    }
}

/// One pass's yield; `None` when nothing merged (the fixpoint).
struct PassOutcome {
    circuit: Circuit,
    nodes_removed: usize,
    chains: Vec<ChainReduction>,
}

/// A merged run of one chain: boundary nodes plus the lumped resistance.
struct MergedSegment {
    left: NodeId,
    right: NodeId,
    ohms: f64,
}

fn reduce_pass(circuit: &Circuit, preserve: &[NodeId], tolerance: f64) -> Option<PassOutcome> {
    let n = circuit.num_nodes();
    // Resistive adjacency and grounded-cap elements per node, plus the
    // blocked set (anything a non-R/simple-C element touches, plus
    // ground and the preserve list).
    let mut res_links: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); n];
    let mut cap_at: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut blocked = vec![false; n];
    blocked[GROUND] = true;
    for &p in preserve {
        if p < n {
            blocked[p] = true;
        }
    }
    for (idx, e) in circuit.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, .. } => {
                res_links[*a].push((idx, *b));
                res_links[*b].push((idx, *a));
            }
            Element::Capacitor {
                a,
                b,
                initial_voltage: None,
                ..
            } if *b == GROUND => cap_at[*a].push(idx),
            Element::Capacitor {
                a,
                b,
                initial_voltage: None,
                ..
            } if *a == GROUND => cap_at[*b].push(idx),
            other => {
                // Floating caps, IC'd caps, inductors, and every source
                // (controlling nodes included) pin their nodes.
                for node in other.nodes() {
                    blocked[node] = true;
                }
            }
        }
    }
    let collapsible: Vec<bool> = (0..n)
        .map(|x| {
            !blocked[x]
                && res_links[x].len() == 2
                && res_links[x][0].1 != res_links[x][1].1
                && cap_at[x].len() <= 1
        })
        .collect();

    let resistance = |idx: usize| match &circuit.elements()[idx] {
        Element::Resistor { ohms, .. } => *ohms,
        _ => unreachable!("res_links holds resistors"),
    };
    let capacitance = |x: NodeId| {
        cap_at[x]
            .iter()
            .map(|&idx| match &circuit.elements()[idx] {
                Element::Capacitor { farads, .. } => *farads,
                _ => unreachable!("cap_at holds capacitors"),
            })
            .sum::<f64>()
    };

    // Discover maximal chains and merge greedily under the budget.
    let mut visited = vec![false; n];
    let mut removed_node = vec![false; n];
    let mut removed_elem = vec![false; circuit.elements().len()];
    // Capacitance redistributed onto boundary nodes (BTreeMap: the
    // leftover-cap emission order must be deterministic).
    let mut extra_cap: BTreeMap<NodeId, f64> = BTreeMap::new();
    let mut merged: Vec<MergedSegment> = Vec::new();
    let mut chains: Vec<ChainReduction> = Vec::new();
    let mut nodes_removed = 0usize;

    for x in 0..n {
        if !collapsible[x] || visited[x] {
            continue;
        }
        // The maximal chain through x: interiors are collapsible, the two
        // anchors are not. `nodes` becomes the full path A, x₁ … x_k, B
        // and `res` the k+1 resistor element indices between consecutive
        // nodes.
        visited[x] = true;
        // Interiors found walking left of x (in walk order, reversed when
        // the path is assembled) and right of x.
        let mut left_interior = Vec::new();
        let mut right_interior = Vec::new();
        let mut res_left = Vec::new();
        let mut res_right = Vec::new();
        let mut cyclic = false;
        for (dir, out) in [(0usize, &mut res_left), (1usize, &mut res_right)] {
            let (mut edge, mut next) = res_links[x][dir];
            let mut prev = x;
            out.push(edge);
            while collapsible[next] {
                if visited[next] {
                    cyclic = true; // Walked around a loop back into the chain.
                    break;
                }
                visited[next] = true;
                if dir == 0 {
                    left_interior.push(next);
                } else {
                    right_interior.push(next);
                }
                // With distinct neighbors guaranteed, exactly one of the
                // two links leads back to `prev`.
                let (e2, n2) = if res_links[next][0].1 == prev {
                    res_links[next][1]
                } else {
                    res_links[next][0]
                };
                prev = next;
                edge = e2;
                next = n2;
                out.push(edge);
            }
            if cyclic {
                break;
            }
            if dir == 0 {
                out.reverse();
            }
        }
        if cyclic {
            continue; // Rings never reduce; their nodes stay visited.
        }
        let mut interior = Vec::with_capacity(left_interior.len() + 1 + right_interior.len());
        interior.extend(left_interior.iter().rev().copied());
        interior.push(x);
        interior.extend_from_slice(&right_interior);
        let other_end = |elem: usize, this: NodeId| {
            let (a, b) = circuit.elements()[elem].terminals();
            if a == this {
                b
            } else {
                a
            }
        };
        let left_anchor = other_end(res_left[0], interior[0]);
        let right_anchor = other_end(
            *res_right.last().expect("non-empty"),
            *interior.last().expect("non-empty"),
        );
        if left_anchor == right_anchor {
            // A lollipop: collapsing would short the anchor to itself.
            continue;
        }
        let mut nodes: Vec<NodeId> = Vec::with_capacity(interior.len() + 2);
        nodes.push(left_anchor);
        nodes.extend_from_slice(&interior);
        nodes.push(right_anchor);
        let mut res: Vec<usize> = res_left;
        res.extend_from_slice(&res_right);
        debug_assert_eq!(res.len(), nodes.len() - 1);

        let r_chain: f64 = res.iter().map(|&e| resistance(e)).sum();
        let c_chain: f64 = interior.iter().map(|&i| capacitance(i)).sum();
        let tau = r_chain * c_chain;

        // Prefix sums over the chain make every candidate-segment defect
        // an O(1) query (the naive rescan is O(len) per extension, O(k²)
        // per segment — quadratic on exactly the long chains this pass
        // exists for). With `a_p` the resistance from `nodes[0]` to
        // `nodes[p]` and `c_p` the interior cap at position p,
        //   δ(s,e) = Σ c_p·(a_p−a_s) − Σ c_p·(a_p−a_s)² / (a_e−a_s)
        // over p in s+1..e−1, which expands into differences of the
        // running sums Σc, Σc·a and Σc·a².
        let m = nodes.len();
        let mut pref_r = vec![0.0f64; m];
        for i in 1..m {
            pref_r[i] = pref_r[i - 1] + resistance(res[i - 1]);
        }
        let (mut pc, mut pca, mut pca2) = (vec![0.0f64; m], vec![0.0f64; m], vec![0.0f64; m]);
        for p in 1..m {
            let c = if p + 1 < m {
                capacitance(nodes[p])
            } else {
                0.0
            };
            pc[p] = pc[p - 1] + c;
            pca[p] = pca[p - 1] + c * pref_r[p];
            pca2[p] = pca2[p - 1] + c * pref_r[p] * pref_r[p];
        }
        let defect = |s: usize, e: usize| -> f64 {
            let span = pref_r[e] - pref_r[s];
            if span <= 0.0 {
                return 0.0;
            }
            let da = pc[e - 1] - pc[s];
            let db = pca[e - 1] - pca[s];
            let dd = pca2[e - 1] - pca2[s];
            let lin = db - pref_r[s] * da;
            let quad = dd - 2.0 * pref_r[s] * db + pref_r[s] * pref_r[s] * da;
            (lin - quad / span).max(0.0)
        };

        // Greedy left-to-right segmentation under the proportional rule:
        // extend while δ_seg · R_chain ≤ tolerance · τ · R_seg.
        let mut spent = 0.0f64;
        let mut chain_removed = 0usize;
        let mut s = 0usize; // segment start position in `nodes`
        let mut e = 1usize; // current segment end position
        let mut seg_defect = 0.0f64;
        while e < nodes.len() {
            let fits = if e + 1 < nodes.len() {
                let d = defect(s, e + 1);
                let r_seg = pref_r[e + 1] - pref_r[s];
                if d * r_chain <= tolerance * tau * r_seg {
                    seg_defect = d;
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if fits {
                e += 1;
                continue;
            }
            // Close the segment covering positions s..=e.
            if e - s >= 2 {
                commit_segment(
                    &nodes,
                    &res,
                    s,
                    e,
                    &resistance,
                    &capacitance,
                    &cap_at,
                    &mut removed_node,
                    &mut removed_elem,
                    &mut extra_cap,
                    &mut merged,
                );
                spent += seg_defect;
                chain_removed += e - s - 1;
            }
            s = e;
            e += 1;
            seg_defect = 0.0;
        }
        if chain_removed > 0 {
            nodes_removed += chain_removed;
            chains.push(ChainReduction {
                left: circuit.node_name(left_anchor).to_owned(),
                right: circuit.node_name(right_anchor).to_owned(),
                nodes_removed: chain_removed,
                defect: spent,
                tau,
            });
        }
    }

    if nodes_removed == 0 {
        return None;
    }

    // Rebuild: surviving nodes in original id order (names preserved),
    // surviving elements in original order with boundary caps absorbing
    // their redistributed share, then the merged equivalents.
    let mut out = Circuit::new();
    for (id, removed) in removed_node.iter().enumerate() {
        if !removed {
            out.node(circuit.node_name(id));
        }
    }
    let remap: Vec<NodeId> = (0..n)
        .map(|id| {
            if removed_node[id] {
                usize::MAX
            } else {
                out.find_node(circuit.node_name(id))
                    .expect("surviving node was recreated")
            }
        })
        .collect();
    for (idx, elem) in circuit.elements().iter().enumerate() {
        if removed_elem[idx] {
            continue;
        }
        copy_element(&mut out, elem, &remap, &mut extra_cap);
    }
    let mut fresh = 1usize;
    for seg in &merged {
        let name = fresh_name(&out, "Rred", &mut fresh);
        out.add_resistor(&name, remap[seg.left], remap[seg.right], seg.ohms)
            .expect("merged resistor is valid");
    }
    let mut fresh = 1usize;
    for (&node, &farads) in extra_cap.iter() {
        // Shares aimed at ground vanish (a grounded cap at ground is no
        // element, and dropping it is electrically exact); degenerate
        // underflowed-to-zero shares are dropped too.
        if node == GROUND || farads <= 0.0 {
            continue;
        }
        let name = fresh_name(&out, "Cred", &mut fresh);
        out.add_capacitor(&name, remap[node], GROUND, farads)
            .expect("redistributed capacitor is valid");
    }

    Some(PassOutcome {
        circuit: out,
        nodes_removed,
        chains,
    })
}

/// Marks the segment's interior nodes, resistors, and grounded caps
/// removed, and records its lumped equivalent: one resistor of the span
/// plus proportional cap shares on the two boundary nodes.
#[allow(clippy::too_many_arguments)]
fn commit_segment(
    nodes: &[NodeId],
    res: &[usize],
    s: usize,
    e: usize,
    resistance: &impl Fn(usize) -> f64,
    capacitance: &impl Fn(NodeId) -> f64,
    cap_at: &[Vec<usize>],
    removed_node: &mut [bool],
    removed_elem: &mut [bool],
    extra_cap: &mut BTreeMap<NodeId, f64>,
    merged: &mut Vec<MergedSegment>,
) {
    let span: f64 = res[s..e].iter().map(|&i| resistance(i)).sum();
    let mut cum = 0.0f64;
    for pos in s..e {
        removed_elem[res[pos]] = true;
        if pos > s {
            let x = nodes[pos];
            removed_node[x] = true;
            for &idx in &cap_at[x] {
                removed_elem[idx] = true;
            }
            let c = capacitance(x);
            if c > 0.0 && span > 0.0 {
                *extra_cap.entry(nodes[s]).or_insert(0.0) += c * (span - cum) / span;
                *extra_cap.entry(nodes[e]).or_insert(0.0) += c * cum / span;
            }
        }
        cum += resistance(res[pos]);
    }
    merged.push(MergedSegment {
        left: nodes[s],
        right: nodes[e],
        ohms: span,
    });
}

/// Copies one surviving element into the reduced circuit, letting a
/// boundary node's existing grounded equilibrium cap absorb its
/// redistributed share.
fn copy_element(
    out: &mut Circuit,
    elem: &Element,
    remap: &[NodeId],
    extra_cap: &mut BTreeMap<NodeId, f64>,
) {
    match elem {
        Element::Resistor { name, a, b, ohms } => {
            out.add_resistor(name, remap[*a], remap[*b], *ohms)
                .expect("valid");
        }
        Element::Capacitor {
            name,
            a,
            b,
            farads,
            initial_voltage,
        } => {
            let mut farads = *farads;
            if initial_voltage.is_none() {
                let signal = if *b == GROUND {
                    Some(*a)
                } else if *a == GROUND {
                    Some(*b)
                } else {
                    None
                };
                if let Some(node) = signal {
                    if let Some(extra) = extra_cap.remove(&node) {
                        farads += extra;
                    }
                }
            }
            out.add_capacitor_ic(name, remap[*a], remap[*b], farads, *initial_voltage)
                .expect("valid");
        }
        Element::Inductor {
            name,
            a,
            b,
            henries,
            initial_current,
        } => {
            out.add_inductor_ic(name, remap[*a], remap[*b], *henries, *initial_current)
                .expect("valid");
        }
        Element::VoltageSource {
            name,
            pos,
            neg,
            waveform,
        } => {
            out.add_vsource(name, remap[*pos], remap[*neg], waveform.clone())
                .expect("valid");
        }
        Element::CurrentSource {
            name,
            from,
            to,
            waveform,
        } => {
            out.add_isource(name, remap[*from], remap[*to], waveform.clone())
                .expect("valid");
        }
        Element::Vccs {
            name,
            from,
            to,
            cpos,
            cneg,
            gm,
        } => {
            out.add_vccs(
                name,
                remap[*from],
                remap[*to],
                remap[*cpos],
                remap[*cneg],
                *gm,
            )
            .expect("valid");
        }
        Element::Vcvs {
            name,
            pos,
            neg,
            cpos,
            cneg,
            gain,
        } => {
            out.add_vcvs(
                name,
                remap[*pos],
                remap[*neg],
                remap[*cpos],
                remap[*cneg],
                *gain,
            )
            .expect("valid");
        }
        Element::Cccs {
            name,
            from,
            to,
            control,
            gain,
        } => {
            out.add_cccs(name, remap[*from], remap[*to], control, *gain)
                .expect("valid");
        }
        Element::Ccvs {
            name,
            pos,
            neg,
            control,
            r,
        } => {
            out.add_ccvs(name, remap[*pos], remap[*neg], control, *r)
                .expect("valid");
        }
    }
}

/// A `{prefix}{k}` name not already used in `out`, advancing `k`.
fn fresh_name(out: &Circuit, prefix: &str, k: &mut usize) -> String {
    loop {
        let name = format!("{prefix}{k}");
        *k += 1;
        if out.element(&name).is_none() {
            return name;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rc_line, rc_mesh};
    use crate::waveform::Waveform;

    fn opts(tol: f64) -> ReduceOptions {
        ReduceOptions {
            enabled: true,
            tolerance: tol,
        }
    }

    fn total_ground_cap(c: &Circuit) -> f64 {
        c.elements_of_kind('C')
            .filter_map(|e| match e {
                Element::Capacitor { a, b, farads, .. } if *a == GROUND || *b == GROUND => {
                    Some(*farads)
                }
                _ => None,
            })
            .sum()
    }

    #[test]
    fn long_chain_collapses_hard() {
        let g = rc_line(256, 100.0, 1e-12, Waveform::step(0.0, 5.0));
        let red = reduce(&g.circuit, &[g.output], &opts(0.02));
        assert!(
            red.report.nodes_removed > 200,
            "only removed {}",
            red.report.nodes_removed
        );
        assert!(red.circuit.num_nodes() < 30, "{}", red.circuit.num_nodes());
        // Output and source nodes survive under their own names.
        let out = red.map_node(g.output).expect("output preserved");
        assert_eq!(red.circuit.node_name(out), "n256");
        assert!(red.circuit.find_node("in").is_some());
        // Conservation: total grounded capacitance is exact.
        let before = total_ground_cap(&g.circuit);
        let after = total_ground_cap(&red.circuit);
        assert!(
            ((after - before) / before).abs() < 1e-9,
            "{before} vs {after}"
        );
        // The documented per-pass bound holds per chain.
        for chain in &red.report.chains {
            assert!(chain.bound() <= 0.02 + 1e-12, "{}", chain.bound());
        }
    }

    #[test]
    fn reduction_reaches_a_fixpoint() {
        let g = rc_line(300, 50.0, 2e-13, Waveform::step(0.0, 5.0));
        let once = reduce(&g.circuit, &[g.output], &opts(0.05));
        assert!(once.report.changed());
        let out = once.map_node(g.output).unwrap();
        let twice = reduce(&once.circuit, &[out], &opts(0.05));
        assert_eq!(twice.report.nodes_removed, 0, "idempotent");
        assert_eq!(once.circuit.to_deck(), twice.circuit.to_deck());
    }

    #[test]
    fn mesh_interiors_are_untouched() {
        let g = rc_mesh(6, 6, 10.0, 1e-13, Waveform::step(0.0, 5.0));
        let red = reduce(&g.circuit, &[g.output], &opts(0.1));
        // Grid interiors have resistive degree 3-4; the three undriven
        // corners are degree-2 but their defect/τ ratio is 1/4, past the
        // tolerance. Nothing merges.
        assert_eq!(
            red.circuit.num_nodes(),
            g.circuit.num_nodes(),
            "mesh reduction is a no-op"
        );
        assert!(!red.report.changed());
        assert_eq!(red.report.passes, 1);
    }

    #[test]
    fn guards_pin_sources_inductors_and_floating_caps() {
        // in -V- n1 - n2 - n3: a short chain we then pin in various ways.
        let mut c = Circuit::new();
        let n_in = c.node("in");
        let n1 = c.node("n1");
        let n2 = c.node("n2");
        let n3 = c.node("n3");
        c.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        c.add_resistor("R1", n_in, n1, 10.0).unwrap();
        c.add_resistor("R2", n1, n2, 10.0).unwrap();
        c.add_resistor("R3", n2, n3, 10.0).unwrap();
        c.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
        c.add_capacitor("C2", n2, GROUND, 1e-12).unwrap();
        c.add_capacitor("C3", n3, GROUND, 1e-12).unwrap();

        // Baseline: n1 and n2 collapse under a huge tolerance.
        let red = reduce(&c, &[n3], &opts(10.0));
        assert_eq!(red.report.nodes_removed, 2);

        // A floating (coupling) cap on n1 pins it.
        let mut coupled = c.clone();
        coupled.add_capacitor("CC", n1, n3, 1e-13).unwrap();
        let red = reduce(&coupled, &[n3], &opts(10.0));
        assert!(red.map_node(n1).is_some(), "coupled node survives");

        // An inductor terminal pins n2.
        let mut ind = c.clone();
        ind.add_inductor("L1", n2, GROUND, 1e-9).unwrap();
        let red = reduce(&ind, &[n3], &opts(10.0));
        assert!(red.map_node(n2).is_some(), "inductor node survives");

        // An IC'd cap pins its node.
        let mut ic = c.clone();
        ic.remove_element("C1").unwrap();
        ic.add_capacitor_ic("C1", n1, GROUND, 1e-12, Some(2.5))
            .unwrap();
        let red = reduce(&ic, &[n3], &opts(10.0));
        assert!(red.map_node(n1).is_some(), "IC'd node survives");

        // A current source into n1 pins it.
        let mut isrc = c.clone();
        isrc.add_isource("I1", GROUND, n1, Waveform::dc(1e-3))
            .unwrap();
        let red = reduce(&isrc, &[n3], &opts(10.0));
        assert!(red.map_node(n1).is_some(), "driven node survives");

        // Preserving n1 explicitly pins it.
        let red = reduce(&c, &[n1, n3], &opts(10.0));
        assert!(red.map_node(n1).is_some(), "preserved node survives");
        assert!(red.map_node(n2).is_none(), "unpreserved interior goes");
    }

    #[test]
    fn elmore_delay_is_preserved_exactly() {
        // Non-uniform chain: Elmore at the sink is Σⱼ Cⱼ·R(source→j).
        let mut c = Circuit::new();
        let n_in = c.node("in");
        c.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        let rs = [10.0, 47.0, 3.0, 120.0, 8.0, 33.0];
        let cs = [1e-12, 5e-13, 2e-12, 8e-13, 3e-12, 1e-13];
        let mut prev = n_in;
        let mut nodes = Vec::new();
        for (i, (&r, &cv)) in rs.iter().zip(&cs).enumerate() {
            let node = c.node(&format!("n{}", i + 1));
            c.add_resistor(&format!("R{}", i + 1), prev, node, r)
                .unwrap();
            c.add_capacitor(&format!("C{}", i + 1), node, GROUND, cv)
                .unwrap();
            nodes.push(node);
            prev = node;
        }
        let sink = *nodes.last().unwrap();
        let elmore = |rs: &[f64], cs: &[f64]| {
            let mut cum = 0.0;
            let mut d = 0.0;
            for (r, c) in rs.iter().zip(cs) {
                cum += r;
                d += c * cum;
            }
            d
        };
        let before = elmore(&rs, &cs);
        let red = reduce(&c, &[sink], &opts(1e9)); // everything merges
        assert!(red.report.nodes_removed >= 4);
        // Walk the reduced chain from "in" to the sink, re-deriving its
        // r/c sequence.
        let mut rs2 = Vec::new();
        let mut cs2 = Vec::new();
        let mut at = red.circuit.find_node("in").unwrap();
        let target = red.map_node(sink).unwrap();
        let mut seen = vec![at];
        while at != target {
            let next = red
                .circuit
                .elements_of_kind('R')
                .find_map(|e| {
                    let (a, b) = e.terminals();
                    let ohms = match e {
                        Element::Resistor { ohms, .. } => *ohms,
                        _ => unreachable!(),
                    };
                    if a == at && !seen.contains(&b) {
                        Some((b, ohms))
                    } else if b == at && !seen.contains(&a) {
                        Some((a, ohms))
                    } else {
                        None
                    }
                })
                .expect("chain continues");
            rs2.push(next.1);
            let cap: f64 = red
                .circuit
                .elements_of_kind('C')
                .filter_map(|e| match e {
                    Element::Capacitor { a, b, farads, .. }
                        if (*a == next.0 && *b == GROUND) || (*b == next.0 && *a == GROUND) =>
                    {
                        Some(*farads)
                    }
                    _ => None,
                })
                .sum();
            cs2.push(cap);
            seen.push(next.0);
            at = next.0;
        }
        let after = elmore(&rs2, &cs2);
        // The share redistributed onto the source node sits behind an
        // ideal source and contributes no delay; everything downstream
        // matches exactly.
        assert!(
            ((after - before) / before).abs() < 1e-9,
            "{before} vs {after}"
        );
    }

    #[test]
    fn purely_resistive_runs_merge_exactly() {
        let mut c = Circuit::new();
        let n_in = c.node("in");
        let n1 = c.node("n1");
        let n2 = c.node("n2");
        let n3 = c.node("out");
        c.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        c.add_resistor("R1", n_in, n1, 10.0).unwrap();
        c.add_resistor("R2", n1, n2, 20.0).unwrap();
        c.add_resistor("R3", n2, n3, 30.0).unwrap();
        c.add_capacitor("CL", n3, GROUND, 1e-12).unwrap();
        let red = reduce(&c, &[n3], &opts(0.0)); // zero tolerance
        assert_eq!(red.report.nodes_removed, 2, "δ = 0 runs always merge");
        let merged = red
            .circuit
            .elements_of_kind('R')
            .next()
            .expect("one merged resistor");
        match merged {
            Element::Resistor { ohms, .. } => assert!((ohms - 60.0).abs() < 1e-12),
            _ => unreachable!(),
        }
        assert_eq!(red.report.bound(), 0.0);
    }
}
