//! Compiled stamp programs: value-only MNA re-assembly for structure
//! groups.
//!
//! A batch structure group's members share one topology; rebuilding each
//! member's [`MnaSystem`] from scratch costs `O(n²)` in dense-matrix
//! zeroing and dense→CSC refills even though only `O(elements)` numbers
//! actually change. A [`StampProgram`] is compiled once from the group's
//! donor circuit: it resolves every value-bearing matrix entry to a CSC
//! storage slot of the sparse `G̃`/`C̃` images (plus the dense `C̃`
//! coordinate the blocked moment recursion's seed step reads) and records,
//! per slot, the contribution list that the dense assembly would
//! accumulate there — in element order, so replaying the program is
//! **bit-identical** to a fresh [`MnaSystem::build`] followed by
//! [`SparseMatrix::from_dense`].
//!
//! The program only compiles for circuits where the replay path provably
//! never reads the fields it leaves stale (the dense `g`, `g_tilde` and
//! `c`): no floating groups, R/C/L/V/I elements only. It only *applies*
//! to members that match the donor element-for-element (kind, terminals,
//! name), carry strictly positive finite R/C/L values (so no entry can
//! cancel to zero and change the sparsity pattern), no explicit initial
//! conditions, and step/DC source waveforms only (ramps route through the
//! `instantaneous` solve, which reads the stale dense `g`). Any mismatch
//! makes [`StampProgram::apply`] decline, and the caller falls back to
//! the full `build_reusing` path — which is bit-identical by
//! construction, so the program is purely an optimization.

use awe_circuit::{Circuit, Element, NodeId, Waveform};
use awe_numeric::SparseMatrix;

use crate::system::MnaSystem;

/// One value-bearing slot of a sparse image and the contribution terms
/// the dense assembly accumulates there.
#[derive(Clone, Copy, Debug)]
struct SlotWrite {
    /// CSC storage slot in the image's value array.
    slot: u32,
    /// Range start in [`StampProgram::terms`].
    start: u32,
    /// Range length.
    len: u32,
}

/// A `C̃` slot write paired with its dense coordinate (the blocked moment
/// recursion's seed step multiplies by the *dense* `C̃`, so both copies
/// must stay current).
#[derive(Clone, Copy, Debug)]
struct CSlotWrite {
    slot: u32,
    row: u32,
    col: u32,
    start: u32,
    len: u32,
}

/// Structural identity of one donor element, used to admit (or reject) a
/// member element at the same position.
#[derive(Clone, Debug)]
enum ElemCheck {
    Resistor {
        a: NodeId,
        b: NodeId,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        /// Index into [`MnaSystem::caps`].
        entry: u32,
    },
    Inductor {
        a: NodeId,
        b: NodeId,
        /// Index into [`MnaSystem::inductors`].
        entry: u32,
    },
    VoltageSource {
        pos: NodeId,
        neg: NodeId,
        /// Index into [`MnaSystem::sources`].
        source: u32,
    },
    CurrentSource {
        from: NodeId,
        to: NodeId,
        /// Index into [`MnaSystem::sources`].
        source: u32,
    },
}

/// One donor element's admission record.
#[derive(Clone, Debug)]
struct ElemPlan {
    /// Donor element name (part of the structural identity: the unknown
    /// numbering and bookkeeping labels are name-keyed).
    name: String,
    check: ElemCheck,
}

/// A compiled, replayable value-stamping schedule for one circuit
/// topology. See the module docs for the contract.
#[derive(Clone, Debug)]
pub struct StampProgram {
    num_nodes: usize,
    num_unknowns: usize,
    g_nnz: usize,
    c_nnz: usize,
    num_caps: usize,
    num_inds: usize,
    num_srcs: usize,
    elems: Vec<ElemPlan>,
    g_writes: Vec<SlotWrite>,
    c_writes: Vec<CSlotWrite>,
    /// Flat `(sign, element index)` pool the slot writes range into, in
    /// element order per slot — the order dense assembly accumulates.
    terms: Vec<(f64, u32)>,
}

/// The element's scalar stamp magnitude, exactly as [`MnaSystem::build`]
/// computes it (one division per resistor; IEEE division is
/// deterministic, so recomputing it per term reproduces the same bits).
fn stamp_value(el: &Element) -> f64 {
    match el {
        Element::Resistor { ohms, .. } => 1.0 / ohms,
        Element::Capacitor { farads, .. } => *farads,
        Element::Inductor { henries, .. } => *henries,
        _ => unreachable!("only R/C/L carry stamp terms"),
    }
}

/// `true` when the waveform decomposes into steps and DC only (no finite-
/// slope segments): the gate that keeps replay off the ramp path, whose
/// `instantaneous` solve reads the dense `g` the program leaves stale.
fn steps_only(w: &Waveform) -> bool {
    w.points()
        .windows(2)
        .all(|p| p[1].0 == p[0].0 || p[1].1 == p[0].1)
}

/// Strictly positive and finite: the value gate that makes every stamped
/// entry's sign topology-determined, so no slot can cancel to exact zero
/// and the CSC pattern is invariant across admitted members.
fn positive(v: f64) -> bool {
    v.is_finite() && v > 0.0
}

impl ElemPlan {
    /// Whether a member element at this position is admissible: same
    /// kind, terminals and name as the donor, gated values.
    fn admits(&self, el: &Element) -> bool {
        match (&self.check, el) {
            (
                ElemCheck::Resistor { a, b },
                Element::Resistor {
                    name,
                    a: ea,
                    b: eb,
                    ohms,
                },
            ) => name == &self.name && ea == a && eb == b && positive(*ohms),
            (
                ElemCheck::Capacitor { a, b, .. },
                Element::Capacitor {
                    name,
                    a: ea,
                    b: eb,
                    farads,
                    initial_voltage,
                },
            ) => {
                name == &self.name
                    && ea == a
                    && eb == b
                    && positive(*farads)
                    && initial_voltage.is_none()
            }
            (
                ElemCheck::Inductor { a, b, .. },
                Element::Inductor {
                    name,
                    a: ea,
                    b: eb,
                    henries,
                    initial_current,
                },
            ) => {
                name == &self.name
                    && ea == a
                    && eb == b
                    && positive(*henries)
                    && initial_current.is_none()
            }
            (
                ElemCheck::VoltageSource { pos, neg, .. },
                Element::VoltageSource {
                    name,
                    pos: ep,
                    neg: en,
                    waveform,
                },
            ) => name == &self.name && ep == pos && en == neg && steps_only(waveform),
            (
                ElemCheck::CurrentSource { from, to, .. },
                Element::CurrentSource {
                    name,
                    from: ef,
                    to: et,
                    waveform,
                },
            ) => name == &self.name && ef == from && et == to && steps_only(waveform),
            _ => false,
        }
    }
}

impl StampProgram {
    /// Compiles a stamp program from a donor circuit, or `None` when the
    /// topology is outside the program's contract (floating groups,
    /// controlled sources, non-positive values, explicit initial
    /// conditions, or any coordinate whose donor entry cancelled out of
    /// the CSC pattern). The compiled program self-checks against the
    /// donor's own assembly bit-for-bit before it is returned.
    pub fn compile(circuit: &Circuit) -> Option<StampProgram> {
        use std::collections::BTreeMap;
        type TermMap = BTreeMap<(usize, usize), Vec<(f64, u32)>>;

        let sys = MnaSystem::build(circuit).ok()?;
        if !sys.floating.is_empty() {
            return None;
        }

        /// Mirrors `stamp_conductance`'s four writes, in its write order.
        fn add(map: &mut TermMap, ia: Option<usize>, ib: Option<usize>, e: u32) {
            if let Some(a) = ia {
                map.entry((a, a)).or_default().push((1.0, e));
            }
            if let Some(b) = ib {
                map.entry((b, b)).or_default().push((1.0, e));
            }
            if let (Some(a), Some(b)) = (ia, ib) {
                map.entry((a, b)).or_default().push((-1.0, e));
                map.entry((b, a)).or_default().push((-1.0, e));
            }
        }

        let mut elems = Vec::with_capacity(circuit.elements().len());
        let mut g_terms = TermMap::new();
        let mut c_terms = TermMap::new();
        let (mut caps, mut inds, mut srcs) = (0u32, 0u32, 0u32);
        for (e, el) in circuit.elements().iter().enumerate() {
            let e32 = u32::try_from(e).ok()?;
            let plan = match el {
                Element::Resistor { name, a, b, ohms } => {
                    if !positive(*ohms) {
                        return None;
                    }
                    add(
                        &mut g_terms,
                        sys.unknown_of_node(*a),
                        sys.unknown_of_node(*b),
                        e32,
                    );
                    ElemPlan {
                        name: name.clone(),
                        check: ElemCheck::Resistor { a: *a, b: *b },
                    }
                }
                Element::Capacitor {
                    name,
                    a,
                    b,
                    farads,
                    initial_voltage,
                } => {
                    if initial_voltage.is_some() || !positive(*farads) {
                        return None;
                    }
                    add(
                        &mut c_terms,
                        sys.unknown_of_node(*a),
                        sys.unknown_of_node(*b),
                        e32,
                    );
                    let entry = caps;
                    caps += 1;
                    ElemPlan {
                        name: name.clone(),
                        check: ElemCheck::Capacitor {
                            a: *a,
                            b: *b,
                            entry,
                        },
                    }
                }
                Element::Inductor {
                    name,
                    a,
                    b,
                    henries,
                    initial_current,
                } => {
                    if initial_current.is_some() || !positive(*henries) {
                        return None;
                    }
                    let m = sys.branch_of(name)?;
                    c_terms.entry((m, m)).or_default().push((-1.0, e32));
                    let entry = inds;
                    inds += 1;
                    ElemPlan {
                        name: name.clone(),
                        check: ElemCheck::Inductor {
                            a: *a,
                            b: *b,
                            entry,
                        },
                    }
                }
                Element::VoltageSource { name, pos, neg, .. } => {
                    let source = srcs;
                    srcs += 1;
                    ElemPlan {
                        name: name.clone(),
                        check: ElemCheck::VoltageSource {
                            pos: *pos,
                            neg: *neg,
                            source,
                        },
                    }
                }
                Element::CurrentSource { name, from, to, .. } => {
                    let source = srcs;
                    srcs += 1;
                    ElemPlan {
                        name: name.clone(),
                        check: ElemCheck::CurrentSource {
                            from: *from,
                            to: *to,
                            source,
                        },
                    }
                }
                // Controlled sources put *values* into G's pattern — out
                // of contract.
                _ => return None,
            };
            elems.push(plan);
        }

        let g_img = SparseMatrix::from_dense(&sys.g_tilde);
        let c_img = SparseMatrix::from_dense(&sys.c_tilde);
        let mut terms = Vec::new();
        let mut g_writes = Vec::with_capacity(g_terms.len());
        for (&(r, c), list) in &g_terms {
            let slot = g_img.slot_of(r, c)?;
            let start = u32::try_from(terms.len()).ok()?;
            terms.extend_from_slice(list);
            g_writes.push(SlotWrite {
                slot: u32::try_from(slot).ok()?,
                start,
                len: list.len() as u32,
            });
        }
        let mut c_writes = Vec::with_capacity(c_terms.len());
        for (&(r, c), list) in &c_terms {
            let slot = c_img.slot_of(r, c)?;
            let start = u32::try_from(terms.len()).ok()?;
            terms.extend_from_slice(list);
            c_writes.push(CSlotWrite {
                slot: u32::try_from(slot).ok()?,
                row: r as u32,
                col: c as u32,
                start,
                len: list.len() as u32,
            });
        }
        let prog = StampProgram {
            num_nodes: circuit.num_nodes(),
            num_unknowns: sys.num_unknowns(),
            g_nnz: g_img.nnz(),
            c_nnz: c_img.nnz(),
            num_caps: caps as usize,
            num_inds: inds as usize,
            num_srcs: srcs as usize,
            elems,
            g_writes,
            c_writes,
            terms,
        };
        prog.self_check(circuit, &sys, &g_img, &c_img)
            .then_some(prog)
    }

    /// Unknown count of the compiled topology.
    pub fn num_unknowns(&self) -> usize {
        self.num_unknowns
    }

    /// Whether `circuit` is admissible for [`StampProgram::apply`]:
    /// element-for-element structural match with the donor plus the value
    /// and waveform gates. Callers priming replay buffers through the
    /// full build path use this to decide whether those buffers can later
    /// take the fast path.
    pub fn check(&self, circuit: &Circuit) -> bool {
        if circuit.num_nodes() != self.num_nodes {
            return false;
        }
        let elems = circuit.elements();
        elems.len() == self.elems.len() && self.elems.iter().zip(elems).all(|(p, el)| p.admits(el))
    }

    /// Restamps a primed system and its sparse images with `circuit`'s
    /// values, bit-identically to a fresh `build` + `from_dense`.
    /// `sys`/`g_img`/`c_img` must come from a circuit this program
    /// previously admitted (their structure is the donor's); the dense
    /// `g`, `g_tilde` and `c` are left stale, which the admission gates
    /// guarantee no replay stage reads. Returns `false` — touching
    /// nothing — when the member or the primed buffers are out of
    /// contract.
    pub fn apply(
        &self,
        circuit: &Circuit,
        sys: &mut MnaSystem,
        g_img: &mut SparseMatrix,
        c_img: &mut SparseMatrix,
    ) -> bool {
        if !self.check(circuit)
            || sys.num_unknowns() != self.num_unknowns
            || !sys.floating.is_empty()
            || sys.caps.len() != self.num_caps
            || sys.inductors.len() != self.num_inds
            || sys.sources.len() != self.num_srcs
            || g_img.nnz() != self.g_nnz
            || c_img.nnz() != self.c_nnz
        {
            return false;
        }
        let elems = circuit.elements();
        let gv = g_img.values_mut();
        for w in &self.g_writes {
            gv[w.slot as usize] = self.fold(elems, w.start, w.len);
        }
        let cv = c_img.values_mut();
        for w in &self.c_writes {
            let v = self.fold(elems, w.start, w.len);
            cv[w.slot as usize] = v;
            sys.c_tilde[(w.row as usize, w.col as usize)] = v;
        }
        for (plan, el) in self.elems.iter().zip(elems) {
            match (&plan.check, el) {
                (ElemCheck::Capacitor { entry, .. }, Element::Capacitor { farads, .. }) => {
                    let cap = &mut sys.caps[*entry as usize];
                    cap.farads = *farads;
                    cap.initial_voltage = None;
                }
                (ElemCheck::Inductor { entry, .. }, Element::Inductor { henries, .. }) => {
                    let ind = &mut sys.inductors[*entry as usize];
                    ind.henries = *henries;
                    ind.initial_current = None;
                }
                (
                    ElemCheck::VoltageSource { source, .. },
                    Element::VoltageSource { name, waveform, .. },
                )
                | (
                    ElemCheck::CurrentSource { source, .. },
                    Element::CurrentSource { name, waveform, .. },
                ) => {
                    let src = &mut sys.sources[*source as usize];
                    src.waveform.clone_from(waveform);
                    if src.name != *name {
                        src.name.clone_from(name);
                    }
                }
                _ => {}
            }
        }
        true
    }

    /// Accumulates one slot's contributions in element order — the exact
    /// order (and hence bits) of the dense assembly's `+=`/`-=` sequence.
    fn fold(&self, elems: &[Element], start: u32, len: u32) -> f64 {
        let mut acc = 0.0;
        for &(sign, e) in &self.terms[start as usize..(start + len) as usize] {
            acc += sign * stamp_value(&elems[e as usize]);
        }
        acc
    }

    /// Replays the program against the donor's own values and compares
    /// every produced slot bit-for-bit with the donor's actual images —
    /// any divergence between the compiled plan and the real assembly
    /// rejects the program at compile time.
    fn self_check(
        &self,
        circuit: &Circuit,
        sys: &MnaSystem,
        g_img: &SparseMatrix,
        c_img: &SparseMatrix,
    ) -> bool {
        let elems = circuit.elements();
        self.g_writes.iter().all(|w| {
            self.fold(elems, w.start, w.len).to_bits() == g_img.values()[w.slot as usize].to_bits()
        }) && self.c_writes.iter().all(|w| {
            let v = self.fold(elems, w.start, w.len);
            v.to_bits() == c_img.values()[w.slot as usize].to_bits()
                && v.to_bits() == sys.c_tilde[(w.row as usize, w.col as usize)].to_bits()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::{generators::rc_line, GROUND};

    /// The member builds the tape-replay Stamp path exercises: same
    /// topology as the donor, different values.
    fn jitter(base: &Circuit, factor: f64) -> Circuit {
        let mut out = base.clone();
        let edits: Vec<(String, f64)> = base
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::Resistor { name, ohms, .. } => Some((name.clone(), *ohms)),
                Element::Capacitor { name, farads, .. } => Some((name.clone(), *farads)),
                Element::Inductor { name, henries, .. } => Some((name.clone(), *henries)),
                _ => None,
            })
            .collect();
        for (i, (name, v)) in edits.iter().enumerate() {
            out.set_value(name, v * (factor + 1e-3 * i as f64)).unwrap();
        }
        out
    }

    /// Applying the program to a primed system must equal a fresh build
    /// bit-for-bit on every field the replay path reads.
    fn assert_apply_matches_build(donor: &Circuit, member: &Circuit) {
        let prog = StampProgram::compile(donor).expect("donor compiles");
        // Prime from the donor (the replay path primes from whichever
        // member last went through the full build).
        let mut sys = MnaSystem::build(donor).unwrap();
        let mut g_img = SparseMatrix::from_dense(&sys.g_tilde);
        let mut c_img = SparseMatrix::from_dense(&sys.c_tilde);
        assert!(prog.apply(member, &mut sys, &mut g_img, &mut c_img));

        let fresh = MnaSystem::build(member).unwrap();
        let fg = SparseMatrix::from_dense(&fresh.g_tilde);
        let fc = SparseMatrix::from_dense(&fresh.c_tilde);
        assert_eq!(g_img, fg, "sparse G-tilde image");
        assert_eq!(c_img, fc, "sparse C-tilde image");
        assert_eq!(sys.c_tilde, fresh.c_tilde, "dense C-tilde");
        assert_eq!(sys.b, fresh.b, "B is topology-only");
        for (a, b) in sys.caps.iter().zip(&fresh.caps) {
            assert_eq!(a.farads.to_bits(), b.farads.to_bits());
            assert_eq!(a.initial_voltage, b.initial_voltage);
        }
        for (a, b) in sys.inductors.iter().zip(&fresh.inductors) {
            assert_eq!(a.henries.to_bits(), b.henries.to_bits());
        }
        for (a, b) in sys.sources.iter().zip(&fresh.sources) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.waveform, b.waveform);
        }
    }

    #[test]
    fn rc_chain_apply_is_bitwise_build() {
        let donor = rc_line(40, 100.0, 1e-12, Waveform::step(0.0, 5.0));
        let member = jitter(&donor.circuit, 1.37);
        assert_apply_matches_build(&donor.circuit, &member);
    }

    #[test]
    fn rlc_with_current_source_applies() {
        let mut donor = Circuit::new();
        let n1 = donor.node("n1");
        let n2 = donor.node("n2");
        let n3 = donor.node("n3");
        donor
            .add_isource("I1", GROUND, n1, Waveform::step(0.0, 1e-3))
            .unwrap();
        donor.add_resistor("R1", n1, n2, 50.0).unwrap();
        donor.add_inductor("L1", n2, n3, 1e-9).unwrap();
        donor.add_resistor("R2", n3, GROUND, 75.0).unwrap();
        donor.add_capacitor("C1", n3, GROUND, 2e-12).unwrap();
        let member = jitter(&donor, 0.8);
        assert_apply_matches_build(&donor, &member);
    }

    #[test]
    fn parallel_resistors_share_slots_in_element_order() {
        // Two resistors between the same nodes: their conductances sum in
        // element order into shared CSC slots.
        let mut donor = Circuit::new();
        let n1 = donor.node("n1");
        donor
            .add_vsource("V1", n1, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        let n2 = donor.node("n2");
        donor.add_resistor("Ra", n1, n2, 100.0).unwrap();
        donor.add_resistor("Rb", n1, n2, 300.0).unwrap();
        donor.add_resistor("Rc", n2, GROUND, 200.0).unwrap();
        donor.add_capacitor("C1", n2, GROUND, 1e-12).unwrap();
        let member = jitter(&donor, 1.09);
        assert_apply_matches_build(&donor, &member);
    }

    #[test]
    fn gates_decline_out_of_contract_members() {
        let donor = rc_line(10, 100.0, 1e-12, Waveform::step(0.0, 5.0));
        let prog = StampProgram::compile(&donor.circuit).expect("compiles");
        let prime = || {
            let sys = MnaSystem::build(&donor.circuit).unwrap();
            let g = SparseMatrix::from_dense(&sys.g_tilde);
            let c = SparseMatrix::from_dense(&sys.c_tilde);
            (sys, g, c)
        };

        // Ramp waveform: instantaneous() would read the stale dense g.
        let mut ramp = donor.circuit.clone();
        ramp.set_source("V1", Waveform::rising_step(0.0, 5.0, 1e-9))
            .unwrap();
        let (mut s, mut g, mut c) = prime();
        assert!(!prog.apply(&ramp, &mut s, &mut g, &mut c));

        // Non-finite value (slips past the netlist's positivity check,
        // which NaN's unordered comparison defeats): the CSC pattern is
        // no longer guaranteed, so the program must decline.
        let mut neg = donor.circuit.clone();
        neg.set_value("R1", f64::NAN).unwrap();
        let (mut s, mut g, mut c) = prime();
        assert!(!prog.apply(&neg, &mut s, &mut g, &mut c));

        // Topology change: different structure entirely.
        let other = rc_line(11, 100.0, 1e-12, Waveform::step(0.0, 5.0));
        let (mut s, mut g, mut c) = prime();
        assert!(!prog.apply(&other.circuit, &mut s, &mut g, &mut c));
        assert!(!prog.check(&other.circuit));
    }

    #[test]
    fn explicit_initial_condition_declines() {
        let mut donor = Circuit::new();
        let n1 = donor.node("n1");
        donor
            .add_vsource("V1", n1, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        let n2 = donor.node("n2");
        donor.add_resistor("R1", n1, n2, 100.0).unwrap();
        donor.add_capacitor("C1", n2, GROUND, 1e-12).unwrap();
        let prog = StampProgram::compile(&donor).expect("compiles");

        let mut ic = Circuit::new();
        let m1 = ic.node("n1");
        ic.add_vsource("V1", m1, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        let m2 = ic.node("n2");
        ic.add_resistor("R1", m1, m2, 100.0).unwrap();
        ic.add_capacitor_ic("C1", m2, GROUND, 1e-12, Some(0.5))
            .unwrap();
        assert!(!prog.check(&ic));
    }

    #[test]
    fn controlled_sources_do_not_compile() {
        let mut donor = Circuit::new();
        let n1 = donor.node("n1");
        let n2 = donor.node("n2");
        donor
            .add_vsource("V1", n1, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        donor.add_vccs("G1", GROUND, n2, n1, GROUND, 1e-3).unwrap();
        donor.add_resistor("R1", n2, GROUND, 1e3).unwrap();
        donor.add_capacitor("C1", n2, GROUND, 1e-12).unwrap();
        assert!(StampProgram::compile(&donor).is_none());
    }

    #[test]
    fn floating_group_does_not_compile() {
        let mut donor = Circuit::new();
        let n1 = donor.node("n1");
        let n2 = donor.node("n2");
        donor
            .add_vsource("V1", n1, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        donor.add_capacitor("C1", n1, n2, 1e-12).unwrap();
        donor.add_capacitor("C2", n2, GROUND, 1e-12).unwrap();
        assert!(StampProgram::compile(&donor).is_none());
    }
}
