//! Property-based tests for the RC-chain reduction pre-pass: the
//! invariants the rewrite promises for *every* input, not just the
//! hand-picked unit cases — idempotence, node-map fidelity, conservation
//! of ground capacitance and Elmore delay, and the never-reduce guards.

use proptest::prelude::*;

use awe_circuit::generators::random_rc_tree;
use awe_circuit::{reduce, Circuit, Element, NodeId, ReduceOptions, Waveform, GROUND};

fn opts(tolerance: f64) -> ReduceOptions {
    ReduceOptions {
        enabled: true,
        tolerance,
    }
}

/// A chain with per-stage jittered values, deterministic in the inputs.
/// Returns the circuit, the sink node, and the (r, c) sequence.
fn jittered_chain(stages: &[(f64, f64)]) -> (Circuit, NodeId) {
    let mut c = Circuit::new();
    let n_in = c.node("in");
    c.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
        .unwrap();
    let mut prev = n_in;
    for (i, &(r, cap)) in stages.iter().enumerate() {
        let node = c.node(&format!("n{}", i + 1));
        c.add_resistor(&format!("R{}", i + 1), prev, node, r)
            .unwrap();
        c.add_capacitor(&format!("C{}", i + 1), node, GROUND, cap)
            .unwrap();
        prev = node;
    }
    (c, prev)
}

/// Total capacitance to ground (grounded caps only; the generators used
/// here produce no floating caps).
fn ground_cap(c: &Circuit) -> f64 {
    c.elements()
        .iter()
        .filter_map(|e| match e {
            Element::Capacitor { a, b, farads, .. } if *a == GROUND || *b == GROUND => {
                Some(*farads)
            }
            _ => None,
        })
        .sum()
}

/// Elmore delay at the far end of a pure chain: walk the resistor path
/// from `start`, accumulating `Σ C_k · R(cumulative)`.
fn chain_elmore(c: &Circuit, start: NodeId, sink: NodeId) -> f64 {
    let cap_at = |n: NodeId| -> f64 {
        c.elements()
            .iter()
            .filter_map(|e| match e {
                Element::Capacitor { a, b, farads, .. }
                    if (*a == n && *b == GROUND) || (*b == n && *a == GROUND) =>
                {
                    Some(*farads)
                }
                _ => None,
            })
            .sum()
    };
    let mut at = start;
    let mut seen = vec![at];
    let mut cum = 0.0;
    let mut delay = cap_at(at) * cum;
    while at != sink {
        let (next, ohms) = c
            .elements()
            .iter()
            .find_map(|e| match e {
                Element::Resistor { a, b, ohms, .. } => {
                    if *a == at && !seen.contains(b) {
                        Some((*b, *ohms))
                    } else if *b == at && !seen.contains(a) {
                        Some((*a, *ohms))
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .expect("chain stays a connected resistor path");
        cum += ohms;
        delay += cap_at(next) * cum;
        at = next;
        seen.push(at);
    }
    delay
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reduction_is_idempotent(
        n in 2usize..40,
        seed in 0u64..1000,
        tol_i in 0usize..5,
    ) {
        let tol = [0.0, 0.01, 0.05, 0.5, 1e6][tol_i];
        let g = random_rc_tree(n, (1.0, 1e3), (1e-15, 1e-11), seed, Waveform::step(0.0, 1.0));
        let first = reduce(&g.circuit, &[g.output], &opts(tol));
        let out1 = first.map_node(g.output).expect("preserved node survives");
        let second = reduce(&first.circuit, &[out1], &opts(tol));
        prop_assert!(!second.report.changed(), "second reduce must be a no-op");
        prop_assert_eq!(second.report.passes, 1);
        prop_assert_eq!(
            second.circuit.to_deck(),
            first.circuit.to_deck(),
            "fixpoint is byte-identical"
        );
    }

    #[test]
    fn node_map_round_trips_surviving_names(n in 2usize..40, seed in 0u64..1000) {
        let g = random_rc_tree(n, (1.0, 1e3), (1e-15, 1e-11), seed, Waveform::step(0.0, 1.0));
        let red = reduce(&g.circuit, &[g.output], &opts(0.05));
        // The preserved observation node survives under its own name.
        let mapped = red.map_node(g.output).expect("preserved node survives");
        prop_assert_eq!(
            red.circuit.node_name(mapped),
            g.circuit.node_name(g.output)
        );
        // Every mapped node keeps its original name, and every name the
        // map claims is actually in the reduced circuit.
        for id in 0..g.circuit.num_nodes() {
            if let Some(j) = red.map_node(id) {
                let name = g.circuit.node_name(id);
                prop_assert_eq!(red.circuit.node_name(j), name);
                prop_assert_eq!(red.circuit.find_node(name), Some(j));
            }
        }
        // Ground always maps to ground.
        prop_assert_eq!(red.map_node(GROUND), Some(GROUND));
    }

    #[test]
    fn ground_capacitance_and_elmore_are_conserved(
        stages in proptest::collection::vec((1.0f64..500.0, 1e-14f64..5e-12), 3..48),
        tol_i in 0usize..3,
    ) {
        let tol = [0.02, 0.2, 1e9][tol_i];
        let (c, sink) = jittered_chain(&stages);
        let n_in = c.find_node("in").unwrap();
        let before_cap = ground_cap(&c);
        let before_elmore = chain_elmore(&c, n_in, sink);

        let red = reduce(&c, &[sink], &opts(tol));
        let after_cap = ground_cap(&red.circuit);
        prop_assert!(
            ((after_cap - before_cap) / before_cap).abs() < 1e-9,
            "ground capacitance drifted: {before_cap:e} -> {after_cap:e}"
        );
        let in2 = red.circuit.find_node("in").unwrap();
        let sink2 = red.map_node(sink).unwrap();
        let after_elmore = chain_elmore(&red.circuit, in2, sink2);
        prop_assert!(
            ((after_elmore - before_elmore) / before_elmore).abs() < 1e-9,
            "Elmore delay drifted: {before_elmore:e} -> {after_elmore:e}"
        );
        // And the report's measured bound respects the configured budget.
        prop_assert!(red.report.bound() <= tol + 1e-12);
    }

    #[test]
    fn guards_pin_blocked_nodes(
        stages in proptest::collection::vec((1.0f64..500.0, 1e-14f64..5e-12), 4..24),
        pin in 1usize..23,
        kind in 0u8..4,
    ) {
        prop_assume!(pin < stages.len());
        let (mut c, sink) = jittered_chain(&stages);
        let pinned = c.find_node(&format!("n{pin}")).unwrap();
        match kind {
            0 => {
                c.add_inductor("LP", pinned, GROUND, 1e-9).unwrap();
            }
            1 => {
                // Floating cap to the sink pins both terminals.
                c.add_capacitor("CP", pinned, sink, 1e-14).unwrap();
            }
            2 => {
                c.add_isource("IP", GROUND, pinned, Waveform::dc(1e-3)).unwrap();
            }
            _ => {
                c.remove_element(&format!("C{pin}")).unwrap();
                c.add_capacitor_ic(&format!("C{pin}"), pinned, GROUND, 1e-13, Some(1.0))
                    .unwrap();
            }
        }
        let red = reduce(&c, &[sink], &opts(1e9));
        prop_assert!(
            red.map_node(pinned).is_some(),
            "blocked node n{pin} (kind {kind}) must survive any tolerance"
        );
        // Explicit preservation pins an otherwise collapsible node too.
        let (c2, sink2) = jittered_chain(&stages);
        let keep = c2.find_node(&format!("n{pin}")).unwrap();
        let red2 = reduce(&c2, &[sink2, keep], &opts(1e9));
        prop_assert!(red2.map_node(keep).is_some(), "preserved node must survive");
    }
}
