//! Cache accounting through the wire protocol: the response counters
//! must *prove* the incremental claims — a value-only ECO on a warm
//! session re-analyzes with zero new symbolic analyses, and a topology
//! ECO invalidates exactly the structure group it touches.

use awe_batch::Design;
use awe_serve::json::parse;
use awe_serve::{handle_line, Json, ServeOptions, ServeState};

fn send(st: &ServeState, line: &str) -> Json {
    let reply = handle_line(st, line);
    parse(&reply).unwrap_or_else(|e| panic!("invalid response JSON ({e}): {reply}"))
}

fn num(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("field {key} in {v}"))
}

fn assert_ok(v: &Json) {
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v}");
}

/// The headline scenario: a 500-net design forming ONE structure group
/// (200-stage chains — well past the sparse-path threshold), a value
/// ECO on one net, and a re-analyze that must be a cache sweep plus one
/// numeric refactorization. `new_symbolic = solves − pattern_hits = 0`.
#[test]
fn value_eco_on_500_net_group_does_zero_symbolic_analyses() {
    let st = ServeState::new(ServeOptions::default());
    let loaded = send(
        &st,
        r#"{"id":1,"verb":"load_design","session":"big","chains":{"nets":500,"stages":200,"seed":11}}"#,
    );
    assert_ok(&loaded);
    assert_eq!(num(&loaded, "nets"), 500);
    assert_eq!(
        num(&loaded, "groups"),
        1,
        "one structure group by construction"
    );
    assert_eq!(num(&loaded, "solves"), 500);
    // Cold load: the donor presolve is the only symbolic analysis.
    assert_eq!(num(&loaded, "pattern_hits"), 499);
    assert_eq!(num(&loaded, "new_symbolic"), 1);
    assert_eq!(num(&loaded, "failures"), 0);

    let eco = send(
        &st,
        r#"{"id":2,"verb":"eco","session":"big","ops":[{"op":"resize","net":"net0250","element":"R17","value":314.0}]}"#,
    );
    assert_ok(&eco);
    assert_eq!(
        num(&eco, "invalidated_results"),
        1,
        "only the edited net's result"
    );
    assert_eq!(
        num(&eco, "invalidated_patterns"),
        0,
        "value edit keeps the pattern"
    );
    let changes = eco.get("changes").and_then(Json::as_arr).expect("changes");
    assert_eq!(changes.len(), 1);
    assert_eq!(
        changes[0].get("class").and_then(Json::as_str),
        Some("value")
    );

    let analyzed = send(&st, r#"{"id":3,"verb":"analyze","session":"big"}"#);
    assert_ok(&analyzed);
    assert_eq!(num(&analyzed, "dirty_value"), 1);
    assert_eq!(num(&analyzed, "dirty_topology"), 0);
    assert_eq!(num(&analyzed, "solves"), 1, "only the edited net re-solves");
    assert_eq!(num(&analyzed, "cache_hits"), 499);
    assert_eq!(num(&analyzed, "pattern_hits"), 1, "the solve is a refactor");
    assert_eq!(
        num(&analyzed, "new_symbolic"),
        0,
        "value-only ECO: zero new symbolic analyses"
    );

    let metrics = send(&st, r#"{"id":4,"verb":"metrics","session":"big"}"#);
    assert_ok(&metrics);
    assert_eq!(num(&metrics, "cached_patterns"), 1);
    assert_eq!(num(&metrics, "invalidated_results"), 1);
    assert_eq!(num(&metrics, "invalidated_patterns"), 0);
    assert_eq!(
        num(&metrics, "new_symbolic"),
        1,
        "lifetime total: the cold donor"
    );
}

/// Two structure groups in one design: topology-editing every member of
/// group B invalidates exactly B's cached pattern; group A's pattern
/// stays warm and still serves refactors.
#[test]
fn topology_eco_invalidates_exactly_the_touched_group() {
    // Two chain families (different stage counts ⇒ different pattern
    // keys), rendered into one multi-net deck with disjoint net names.
    let group_a = Design::synthetic_chains(3, 200, 1)
        .to_multi_deck()
        .replace("* NET net", "* NET a");
    let group_b = Design::synthetic_chains(2, 210, 2)
        .to_multi_deck()
        .replace("* NET net", "* NET b");
    let load = Json::obj(vec![
        ("id", Json::from(1u64)),
        ("verb", Json::str("load_design")),
        ("session", Json::str("two")),
        ("deck", Json::str(format!("{group_a}{group_b}"))),
    ]);

    let st = ServeState::new(ServeOptions::default());
    let loaded = send(&st, &load.to_string());
    assert_ok(&loaded);
    assert_eq!(num(&loaded, "nets"), 5);
    assert_eq!(num(&loaded, "groups"), 2);
    // Each group pays exactly one symbolic analysis (its donor).
    assert_eq!(num(&loaded, "new_symbolic"), 2);
    assert_eq!(num(&loaded, "pattern_hits"), 3);

    // Topology-edit both members of group B with the *same* card: they
    // leave B together (emptying it) and land in one new shared group.
    let eco = send(
        &st,
        r#"{"id":2,"verb":"eco","session":"two","ops":[{"op":"add","net":"b0001","card":"CX n5 0 0.4p"},{"op":"add","net":"b0002","card":"CX n5 0 0.4p"}]}"#,
    );
    assert_ok(&eco);
    assert_eq!(num(&eco, "invalidated_results"), 2);
    assert_eq!(
        num(&eco, "invalidated_patterns"),
        1,
        "exactly group B's pattern — A's untouched"
    );

    let analyzed = send(&st, r#"{"id":3,"verb":"analyze","session":"two"}"#);
    assert_ok(&analyzed);
    assert_eq!(num(&analyzed, "dirty_topology"), 2);
    assert_eq!(num(&analyzed, "solves"), 2);
    // The edited pair forms a fresh group: one donor analysis, one
    // refactor against it.
    assert_eq!(num(&analyzed, "new_symbolic"), 1);
    assert_eq!(num(&analyzed, "pattern_hits"), 1);

    // Group A's pattern survived: a value edit there is still pure
    // refactor.
    let eco = send(
        &st,
        r#"{"id":4,"verb":"eco","session":"two","ops":[{"op":"resize","net":"a0002","element":"R9","value":777.0}]}"#,
    );
    assert_ok(&eco);
    let analyzed = send(&st, r#"{"id":5,"verb":"analyze","session":"two"}"#);
    assert_eq!(num(&analyzed, "solves"), 1);
    assert_eq!(num(&analyzed, "pattern_hits"), 1);
    assert_eq!(
        num(&analyzed, "new_symbolic"),
        0,
        "A's group pattern still warm"
    );

    let metrics = send(&st, r#"{"id":6,"verb":"metrics","session":"two"}"#);
    assert_eq!(
        num(&metrics, "structure_groups"),
        2,
        "A and edited-B, nothing else"
    );
    assert_eq!(num(&metrics, "topology_nets"), 2);
    assert_eq!(num(&metrics, "value_nets"), 1);
}
